"""Multi-core, multi-level cache + DRAM hierarchy.

Per-core private L1 data caches with MSHRs, a shared banked L2, and the GDDR
DRAM model behind it — the paper's validated "SIMT-aware multi-core,
multi-level cache and memory simulator" substrate (section 5): the cache
layer follows CMP$im's trace-driven approach, the memory layer Ramulator's
bank/row/channel timing.

All latencies are in core cycles.  Writebacks and prefetch fetches are
*posted* (they consume bandwidth and affect state, but the issuing warp does
not wait on them); demand accesses return the latency the warp is delayed by,
which feeds the warp-queue scheduling model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gpu.memspace import MemorySpace, space_of
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import SimConfig
from repro.memsim.dram import DramModel
from repro.memsim.mshr import MshrFile
from repro.memsim.prefetcher import StridePrefetcher, StreamPrefetcher, make_prefetcher
from repro.memsim.stats import CacheStats, DramStats


class MemoryHierarchy:
    """One instantiated memory system shared by ``num_cores`` cores."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.l1s = [
            SetAssociativeCache(config.l1, name=f"L1[{core}]")
            for core in range(config.num_cores)
        ]
        self.l1_mshrs = [MshrFile(config.l1.mshrs) for _ in range(config.num_cores)]
        self.l2 = SetAssociativeCache(config.l2, name="L2")
        self.l2_mshr = MshrFile(max(config.l2.mshrs, config.num_cores * 8))
        self.dram = DramModel(
            config.dram,
            txn_size=config.l2.line_size,
            core_clock_mhz=config.core_clock_mhz,
        )
        self._l2_bank_busy = [0.0] * config.l2.banks
        self._l2_bank_shift = config.l2.line_size.bit_length() - 1
        self._l2_bank_mask = config.l2.banks - 1
        self.l1_prefetchers: List[Optional[StridePrefetcher]] = [
            make_prefetcher(config.l1_prefetcher, config.l1.line_size)
            if config.l1_prefetcher
            else None
            for _ in range(config.num_cores)
        ]
        self.l2_prefetcher: Optional[StreamPrefetcher] = (
            make_prefetcher(config.l2_prefetcher, config.l2.line_size)
            if config.l2_prefetcher
            else None
        )
        self.texture_caches = [
            SetAssociativeCache(config.texture_cache, name=f"TEX[{core}]")
            if config.texture_cache else None
            for core in range(config.num_cores)
        ]
        self.constant_caches = [
            SetAssociativeCache(config.constant_cache, name=f"CONST[{core}]")
            if config.constant_cache else None
            for core in range(config.num_cores)
        ]
        self.shared_accesses = 0

    # -- public entry ---------------------------------------------------------

    def access(
        self,
        core: int,
        now: float,
        pc: int,
        address: int,
        size: int,
        is_store: bool,
    ) -> float:
        """Demand access from one warp; returns the warp's stall latency.

        The address's memory space selects the path: shared memory is a
        fixed-latency scratchpad (bank conflicts already serialised into
        extra trace records by the front end), texture/constant go through
        their per-SM read-only caches and fall back to the L2, and global
        accesses take the L1 path.  Transactions wider than the L1 line are
        split into line-sized sectors issued in parallel; the warp waits
        for the slowest.
        """
        space = space_of(address)
        if space is MemorySpace.SHARED:
            self.shared_accesses += 1
            return self.config.shared_latency
        if space is MemorySpace.TEXTURE:
            cache = self.texture_caches[core]
            if cache is not None:
                return self._read_only_access(cache, now, address)
        elif space is MemorySpace.CONSTANT:
            cache = self.constant_caches[core]
            if cache is not None:
                return self._read_only_access(cache, now, address)
        line_size = self.config.l1.line_size
        if size <= line_size:
            return self._access_l1(core, now, pc, address, is_store)
        latency = 0.0
        end = address + size
        sector = (address // line_size) * line_size
        while sector < end:
            latency = max(
                latency, self._access_l1(core, now, pc, sector, is_store)
            )
            sector += line_size
        return latency

    # -- L1 level ---------------------------------------------------------------

    def _access_l1(
        self, core: int, now: float, pc: int, address: int, is_store: bool
    ) -> float:
        l1 = self.l1s[core]
        l1_config = self.config.l1
        hit_latency = float(l1_config.hit_latency)
        hit, victim = l1.access(address, is_store)
        write_through = is_store and l1_config.write_policy == "write-through"
        if write_through:
            # Stores forward downstream immediately (posted); a no-allocate
            # miss does not fetch the line at all.
            self._writeback_to_l2(now, l1.line_address(address))
        if hit:
            latency = hit_latency
        elif write_through and not l1_config.write_allocate:
            latency = hit_latency  # buffered store, nothing to wait for
        else:
            line = l1.line_address(address)
            mshr = self.l1_mshrs[core]
            inflight = mshr.lookup(line, now)
            if inflight is not None:
                l1.stats.mshr_merges += 1
                latency = max(hit_latency, inflight - now)
            else:
                # An L1 line narrower than the L2 line fits in one L2 access;
                # a wider one (the paper's 64B-L2 / 128B-L1 points) is fetched
                # as parallel L2-line-sized chunks and waits for the slowest.
                l2_line = self.config.l2.line_size
                l2_latency = 0.0
                chunk = line
                while chunk < line + self.config.l1.line_size:
                    l2_latency = max(
                        l2_latency,
                        self._access_l2(now + hit_latency, chunk, is_store=False),
                    )
                    chunk += l2_line
                stall, completion = mshr.allocate(
                    line, now, hit_latency + l2_latency
                )
                if stall > 0:
                    l1.stats.mshr_stalls += 1
                latency = completion - now
            if victim is not None and victim.dirty:
                self._writeback_to_l2(now, victim.address)
        prefetcher = self.l1_prefetchers[core]
        if prefetcher is not None:
            for candidate in prefetcher.observe(pc, address, hit):
                self._l1_prefetch(core, now, candidate)
        return latency

    def _l1_prefetch(self, core: int, now: float, address: int) -> None:
        l1 = self.l1s[core]
        l1.stats.prefetch_issued += 1
        if l1.contains(address):
            return
        # Fetch through L2 untimed (posted): state and bandwidth effects only.
        line = self.l2.line_address(address)
        if not self.l2.contains(line):
            victim = self.l2.prefetch_fill(line)
            self.dram.access(now, line, is_write=False)
            self._handle_l2_victim(now, victim)
        victim = l1.prefetch_fill(address)
        if victim is not None and victim.dirty:
            self._writeback_to_l2(now, victim.address)

    def _read_only_access(
        self, cache: SetAssociativeCache, now: float, address: int
    ) -> float:
        """Texture/constant path: per-SM read-only cache, L2 behind it."""
        hit, _ = cache.access(address, is_store=False)
        if hit:
            return float(cache.config.hit_latency)
        l2_latency = self._access_l2(
            now + cache.config.hit_latency, address, is_store=False
        )
        return cache.config.hit_latency + l2_latency

    # -- L2 level ---------------------------------------------------------------

    def _l2_bank(self, address: int) -> int:
        return (address >> self._l2_bank_shift) & self._l2_bank_mask

    def _handle_l2_victim(self, now: float, victim) -> None:
        """Writeback a dirty L2 victim; back-invalidate L1s if inclusive."""
        if victim is None:
            return
        if victim.dirty:
            self.dram.access(now, victim.address, is_write=True)
        if self.config.l2_inclusion == "inclusive":
            l1_line = self.config.l1.line_size
            end = victim.address + max(self.config.l2.line_size, l1_line)
            for l1 in self.l1s:
                address = victim.address
                while address < end:
                    invalidated = l1.invalidate(address)
                    if invalidated is not None and invalidated.dirty:
                        # The L1's fresher copy can no longer retire via the
                        # L2; flush it straight to memory.
                        self.dram.access(now, invalidated.address, is_write=True)
                    address += l1_line

    def _access_l2(self, now: float, address: int, is_store: bool) -> float:
        l2 = self.l2
        noc = self.config.noc_latency  # SM -> L2 partition traversal
        now = now + noc
        hit_latency = float(self.config.l2.hit_latency)
        bank = self._l2_bank(address)
        start = max(now, self._l2_bank_busy[bank])
        self._l2_bank_busy[bank] = start + hit_latency
        hit, victim = l2.access(address, is_store)
        if hit:
            service = hit_latency
        else:
            line = l2.line_address(address)
            inflight = self.l2_mshr.lookup(line, start)
            if inflight is not None:
                l2.stats.mshr_merges += 1
                service = max(hit_latency, inflight - start)
            else:
                dram_latency = self.dram.access(
                    start + hit_latency, line, is_write=False
                )
                service = hit_latency + dram_latency
                self.l2_mshr.allocate(line, start, service)
            self._handle_l2_victim(start, victim)
        if self.l2_prefetcher is not None:
            for candidate in self.l2_prefetcher.observe(address, hit):
                self._l2_prefetch(start, candidate)
        return noc + (start - now) + service

    def _l2_prefetch(self, now: float, address: int) -> None:
        l2 = self.l2
        l2.stats.prefetch_issued += 1
        if l2.contains(address):
            return
        victim = l2.prefetch_fill(address)
        self.dram.access(now, l2.line_address(address), is_write=False)
        self._handle_l2_victim(now, victim)

    def _writeback_to_l2(self, now: float, address: int) -> None:
        """Posted write of a dirty L1 victim into the L2 (chunked if the
        L2 line is narrower than the L1 line)."""
        l2_line = self.config.l2.line_size
        l2_write_through = self.config.l2.write_policy == "write-through"
        chunk = address
        end = address + max(self.config.l1.line_size, l2_line)
        while chunk < end:
            hit, victim = self.l2.access(chunk, is_store=True)
            if not hit:
                self._handle_l2_victim(now, victim)
            if l2_write_through:
                self.dram.access(now, self.l2.line_address(chunk), is_write=True)
            chunk += l2_line

    # -- aggregation ------------------------------------------------------------

    def l1_stats(self) -> CacheStats:
        total = CacheStats()
        for l1 in self.l1s:
            total.merge(l1.stats)
        return total

    def texture_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self.texture_caches:
            if cache is not None:
                total.merge(cache.stats)
        return total

    def constant_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self.constant_caches:
            if cache is not None:
                total.merge(cache.stats)
        return total

    def l2_stats(self) -> CacheStats:
        return self.l2.stats

    def dram_stats(self) -> DramStats:
        return self.dram.stats
