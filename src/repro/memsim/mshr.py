"""Miss Status Holding Registers.

GPU caches sustain many outstanding misses per core (64 MSHRs/core in the
paper's Table 2 baseline).  The model tracks in-flight line fills by their
completion time:

* a second miss to an in-flight line *merges* — it completes when the
  primary fill does, without issuing new downstream traffic;
* when all entries are busy, the requester *stalls* until the earliest
  in-flight fill retires (the paper notes GPU cache performance is often
  "sub-optimal due to limited per-thread cache capacity, MSHRs etc.").
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple


class MshrFile:
    """In-flight miss tracking for one cache.

    Completions live in a lazy-deletion min-heap alongside the authoritative
    ``{line: completion}`` map, so the per-access prune is a single peek
    until something can actually retire.
    """

    __slots__ = ("entries", "_in_flight", "_heap")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"MSHR count must be >= 1, got {entries}")
        self.entries = entries
        self._in_flight: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []

    def _prune(self, now: float) -> None:
        heap = self._heap
        if not heap or heap[0][0] > now:
            return
        in_flight = self._in_flight
        pop = heapq.heappop
        while heap and heap[0][0] <= now:
            completion, line = pop(heap)
            if in_flight.get(line) == completion:
                del in_flight[line]

    def lookup(self, line: int, now: float) -> Optional[float]:
        """Completion time of an in-flight fill of ``line``, if any."""
        self._prune(now)
        return self._in_flight.get(line)

    def allocate(self, line: int, now: float, service_latency: float) -> Tuple[float, float]:
        """Reserve an entry for a new miss.

        Returns ``(stall, completion_time)``: ``stall`` is the extra delay
        spent waiting for a free entry (0 if one was available), and the fill
        completes at ``now + stall + service_latency``.
        """
        self._prune(now)
        stall = 0.0
        if len(self._in_flight) >= self.entries:
            earliest = min(self._in_flight.values())
            stall = max(0.0, earliest - now)
            self._prune(now + stall)
        completion = now + stall + service_latency
        self._in_flight[line] = completion
        heapq.heappush(self._heap, (completion, line))
        return stall, completion

    @property
    def outstanding(self) -> int:
        return len(self._in_flight)
