"""Hardware prefetcher models.

Two prefetchers mirror the paper's evaluation:

* :class:`StridePrefetcher` — a PC-indexed stride prefetcher in the spirit
  of the many-thread-aware L1 prefetcher of Lee et al. [MICRO'10] the paper
  attaches to the L1 (Figure 6c).  Each table entry tracks the last address
  and stride of one static instruction; two consecutive confirmations arm
  the entry, after which ``degree`` lines ahead are prefetched.
* :class:`StreamPrefetcher` — the L2 stream prefetcher of Figure 6d: miss
  addresses within ``stream_window`` lines of a tracked stream extend it and
  pull the next ``degree`` lines; the paper sweeps window 8/16/32 and degree
  1/2/4/8.

Prefetchers return candidate *addresses*; the hierarchy decides whether each
is already resident, fetches it, and attributes the fill.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.memsim.config import PrefetcherConfig


class StridePrefetcher:
    """PC-indexed stride prefetcher (L1, after Lee et al. [12])."""

    def __init__(self, config: PrefetcherConfig, line_size: int) -> None:
        if config.kind != "stride":
            raise ValueError(f"expected a stride config, got {config.kind!r}")
        self.config = config
        self.line_size = line_size
        # pc -> [last_addr, stride, confidence]
        self._table: OrderedDict[int, list] = OrderedDict()

    def observe(self, pc: int, address: int, hit: bool) -> List[int]:
        """Train on a demand access; returns addresses to prefetch."""
        if self.config.train_on_miss_only and hit:
            return []
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.config.table_size:
                table.popitem(last=False)
            table[pc] = [address, 0, 0]
            return []
        last_addr, last_stride, confidence = entry
        stride = address - last_addr
        if stride == 0:
            entry[0] = address
            return []
        if stride == last_stride:
            confidence += 1
        else:
            confidence = 1
        entry[0] = address
        entry[1] = stride
        entry[2] = confidence
        table.move_to_end(pc)
        if confidence < 2:
            return []
        line = self.line_size
        seen = set()
        out = []
        for k in range(1, self.config.degree + 1):
            target = (address + stride * k) // line * line
            if target not in seen and target >= 0:
                seen.add(target)
                out.append(target)
        return out


class StreamPrefetcher:
    """Sequential stream prefetcher (L2)."""

    def __init__(self, config: PrefetcherConfig, line_size: int) -> None:
        if config.kind != "stream":
            raise ValueError(f"expected a stream config, got {config.kind!r}")
        self.config = config
        self.line_size = line_size
        # Each stream: [last_line, direction, confirmed]
        self._streams: List[list] = []

    def observe(self, address: int, hit: bool) -> List[int]:
        """Train on an access (typically L2 misses); returns prefetch addrs."""
        if self.config.train_on_miss_only and hit:
            return []
        line = address // self.line_size
        window = self.config.stream_window
        for stream in self._streams:
            delta = line - stream[0]
            if delta == 0:
                return []
            if 0 < delta <= window and stream[1] >= 0:
                stream[0] = line
                stream[1] = 1
                stream[2] = True
                return self._issue(line, 1)
            if -window <= delta < 0 and stream[1] <= 0:
                stream[0] = line
                stream[1] = -1
                stream[2] = True
                return self._issue(line, -1)
        if len(self._streams) >= self.config.table_size:
            self._streams.pop(0)
        self._streams.append([line, 0, False])
        return []

    def _issue(self, line: int, direction: int) -> List[int]:
        size = self.line_size
        out = []
        for k in range(1, self.config.degree + 1):
            target = line + direction * k
            if target >= 0:
                out.append(target * size)
        return out


def make_prefetcher(config: PrefetcherConfig, line_size: int):
    """Factory over the configured prefetcher kinds."""
    if config.kind == "stride":
        return StridePrefetcher(config, line_size)
    return StreamPrefetcher(config, line_size)
