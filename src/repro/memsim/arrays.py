"""Columnar array views of trace artifacts (the binary ``.npz`` format).

Text trace files (``gmap-trace v1`` / ``gmap-ttrace v1``) cost one Python
string parse per record — the dominant cold-start cost once the compute
kernels are vectorized.  This module defines the binary columnar layout
both :mod:`repro.io.trace_io` and :mod:`repro.io.thread_trace_io` dispatch
to for ``.npz`` paths:

* one NumPy column per field (``txn_pc``, ``txn_address``, ``txn_store``,
  …) plus CSR-style ``*_start`` offset columns delimiting each warp's or
  thread's slice;
* a ``_meta`` member (UTF-8 JSON in a ``uint8`` array) carrying the format
  name, schema version, the declared dtype of every column, a SHA-256
  checksum over the column bytes, and format-specific extras (launch
  geometry, profile payloads);
* members are stored uncompressed, so :func:`load_columns` can memory-map
  them straight out of the zip container — loading a trace costs a handful
  of page faults instead of a per-record parse loop.

Integrity mirrors the text formats: the checksum is verified on load
(:class:`~repro.core.integrity.CorruptArtifactError` on mismatch); with
``mmap=True`` only the header/schema is validated eagerly and callers opt
out of the full-byte verification they would otherwise get.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.integrity import CorruptArtifactError
from repro.gpu.executor import WarpTrace
from repro.gpu.instructions import AccessTuple

PathLike = Union[str, Path]

#: Binary trace container schema.  Bump on any layout change; loaders
#: reject versions they do not understand instead of misreading columns.
TRACE_SCHEMA_VERSION = 1

#: ``format`` tag of a warp-trace container (coalesced transactions).
FORMAT_WARP = "gmap-trace-npz"
#: ``format`` tag of a per-thread trace container (pre-coalescing).
FORMAT_THREAD = "gmap-ttrace-npz"
#: ``format`` tag of a cached pipeline artifact (profile + assignments).
FORMAT_PIPELINE = "gmap-pipeline-npz"

#: Zip member holding the JSON header.
META_MEMBER = "_meta"

#: Upper bound on the ``_meta`` header, checked against the zip directory's
#: *declared* size before any byte of the member is read.  A legitimate
#: header is a few KiB of JSON; a multi-megabyte one is a corrupt or hostile
#: container, and loading it eagerly would let a small file commandeer an
#: unbounded allocation.
MAX_META_BYTES = 1 << 20

#: Declared dtypes of the warp-trace columns (``<prefix>`` stripped).
WARP_COLUMNS: Dict[str, str] = {
    "warp_id": "<i8",
    "warp_block": "<i8",
    "warp_active": "<i8",
    "txn_start": "<i8",
    "instr_start": "<i8",
    "txn_pc": "<i8",
    "txn_address": "<i8",
    "txn_size": "<i4",
    "txn_store": "|i1",
    "instr_pc": "<i8",
    "instr_ntxns": "<i4",
}

#: Declared dtypes of the per-thread trace columns.
THREAD_COLUMNS: Dict[str, str] = {
    "thread_start": "<i8",
    "acc_pc": "<i8",
    "acc_address": "<i8",
    "acc_size": "<i4",
    "acc_store": "|i1",
}


def columns_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over all column bytes, in sorted column-name order."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------
# Warp traces <-> columns


def pack_warp_traces(
    traces: Sequence[WarpTrace], prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten warp traces into the columnar layout.

    ``prefix`` namespaces the columns (the pipeline cache stores an
    original and a proxy trace set side by side in one container).
    """
    n = len(traces)
    txn_start = np.zeros(n + 1, dtype=np.int64)
    instr_start = np.zeros(n + 1, dtype=np.int64)
    for i, trace in enumerate(traces):
        txn_start[i + 1] = txn_start[i] + len(trace.transactions)
        instr_start[i + 1] = instr_start[i] + len(trace.instructions)
    total_txn = int(txn_start[-1])
    total_instr = int(instr_start[-1])
    txn_pc = np.empty(total_txn, dtype=np.int64)
    txn_address = np.empty(total_txn, dtype=np.int64)
    txn_size = np.empty(total_txn, dtype=np.int32)
    txn_store = np.empty(total_txn, dtype=np.int8)
    instr_pc = np.empty(total_instr, dtype=np.int64)
    instr_ntxns = np.empty(total_instr, dtype=np.int32)
    for i, trace in enumerate(traces):
        lo = int(txn_start[i])
        if trace.transactions:
            block = np.asarray(trace.transactions, dtype=np.int64)
            hi = lo + len(block)
            txn_pc[lo:hi] = block[:, 0]
            txn_address[lo:hi] = block[:, 1]
            txn_size[lo:hi] = block[:, 2]
            txn_store[lo:hi] = block[:, 3]
        lo = int(instr_start[i])
        if trace.instructions:
            block = np.asarray(trace.instructions, dtype=np.int64)
            hi = lo + len(block)
            instr_pc[lo:hi] = block[:, 0]
            instr_ntxns[lo:hi] = block[:, 1]
    columns = {
        "warp_id": np.array([t.warp_id for t in traces], dtype=np.int64),
        "warp_block": np.array([t.block for t in traces], dtype=np.int64),
        "warp_active": np.array(
            [t.active_lanes for t in traces], dtype=np.int64
        ),
        "txn_start": txn_start,
        "instr_start": instr_start,
        "txn_pc": txn_pc,
        "txn_address": txn_address,
        "txn_size": txn_size,
        "txn_store": txn_store,
        "instr_pc": instr_pc,
        "instr_ntxns": instr_ntxns,
    }
    return {prefix + name: arr for name, arr in columns.items()}


def unpack_warp_traces(
    arrays: Dict[str, np.ndarray], prefix: str = ""
) -> List[WarpTrace]:
    """Rebuild :class:`WarpTrace` objects from the columnar layout."""
    def col(name: str) -> np.ndarray:
        return arrays[prefix + name]

    txn_rows = list(
        zip(
            col("txn_pc").tolist(),
            col("txn_address").tolist(),
            col("txn_size").tolist(),
            col("txn_store").tolist(),
        )
    )
    instr_rows = list(
        zip(col("instr_pc").tolist(), col("instr_ntxns").tolist())
    )
    txn_start = col("txn_start").tolist()
    instr_start = col("instr_start").tolist()
    traces = []
    for i, (warp_id, block, active) in enumerate(
        zip(
            col("warp_id").tolist(),
            col("warp_block").tolist(),
            col("warp_active").tolist(),
        )
    ):
        traces.append(
            WarpTrace(
                warp_id=warp_id,
                block=block,
                transactions=txn_rows[txn_start[i]:txn_start[i + 1]],
                instructions=instr_rows[instr_start[i]:instr_start[i + 1]],
                active_lanes=active,
            )
        )
    return traces


# --------------------------------------------------------------------------
# Core assignments <-> columns


def pack_assignments(assignments, prefix: str = "") -> Dict[str, np.ndarray]:
    """Flatten per-core warp queues (``CoreAssignment`` list) into columns.

    Wave structure is preserved exactly — ``wave_counts[c]`` waves per core,
    ``wave_sizes`` warps per wave (empty waves included) — with the flat
    trace list ordered core → wave → warp and packed via
    :func:`pack_warp_traces` under the same prefix.
    """
    flat: List[WarpTrace] = []
    wave_sizes: List[int] = []
    wave_counts = np.empty(len(assignments), dtype=np.int64)
    core_id = np.empty(len(assignments), dtype=np.int64)
    for i, assignment in enumerate(assignments):
        core_id[i] = assignment.core_id
        wave_counts[i] = len(assignment.waves)
        for wave in assignment.waves:
            wave_sizes.append(len(wave))
            flat.extend(wave)
    columns = pack_warp_traces(flat, prefix)
    columns[prefix + "core_id"] = core_id
    columns[prefix + "wave_counts"] = wave_counts
    columns[prefix + "wave_sizes"] = np.asarray(wave_sizes, dtype=np.int64)
    return columns


def unpack_assignments(arrays: Dict[str, np.ndarray], prefix: str = ""):
    """Rebuild ``CoreAssignment`` objects packed by :func:`pack_assignments`."""
    from repro.gpu.executor import CoreAssignment

    flat = unpack_warp_traces(arrays, prefix)
    wave_sizes = arrays[prefix + "wave_sizes"].tolist()
    assignments = []
    cursor = 0
    wave_cursor = 0
    for core_id, n_waves in zip(
        arrays[prefix + "core_id"].tolist(),
        arrays[prefix + "wave_counts"].tolist(),
    ):
        waves = []
        for size in wave_sizes[wave_cursor:wave_cursor + n_waves]:
            waves.append(flat[cursor:cursor + size])
            cursor += size
        wave_cursor += n_waves
        assignments.append(CoreAssignment(core_id=core_id, waves=waves))
    return assignments


# --------------------------------------------------------------------------
# Per-thread traces <-> columns


def pack_thread_traces(
    thread_traces: Sequence[Sequence[AccessTuple]],
) -> Dict[str, np.ndarray]:
    """Flatten per-thread access streams (barriers keep their ``pc < 0``)."""
    n = len(thread_traces)
    start = np.zeros(n + 1, dtype=np.int64)
    for i, trace in enumerate(thread_traces):
        start[i + 1] = start[i] + len(trace)
    total = int(start[-1])
    pc = np.empty(total, dtype=np.int64)
    address = np.empty(total, dtype=np.int64)
    size = np.empty(total, dtype=np.int32)
    store = np.empty(total, dtype=np.int8)
    for i, trace in enumerate(thread_traces):
        if not trace:
            continue
        lo = int(start[i])
        block = np.asarray(trace, dtype=np.int64)
        hi = lo + len(block)
        pc[lo:hi] = block[:, 0]
        address[lo:hi] = block[:, 1]
        size[lo:hi] = block[:, 2]
        store[lo:hi] = block[:, 3]
    return {
        "thread_start": start,
        "acc_pc": pc,
        "acc_address": address,
        "acc_size": size,
        "acc_store": store,
    }


def unpack_thread_traces(
    arrays: Dict[str, np.ndarray],
) -> List[List[AccessTuple]]:
    """Rebuild per-thread access streams from the columnar layout."""
    rows = list(
        zip(
            arrays["acc_pc"].tolist(),
            arrays["acc_address"].tolist(),
            arrays["acc_size"].tolist(),
            arrays["acc_store"].tolist(),
        )
    )
    start = arrays["thread_start"].tolist()
    return [rows[start[i]:start[i + 1]] for i in range(len(start) - 1)]


# --------------------------------------------------------------------------
# Container I/O


def save_columns(
    path: PathLike,
    arrays: Dict[str, np.ndarray],
    fmt: str,
    extra_meta: Optional[Dict] = None,
) -> None:
    """Write a columnar container atomically (tempfile + rename).

    Members are stored uncompressed (``np.savez``) so loads can memory-map
    straight out of the zip; the ``_meta`` member records the schema and a
    checksum over every column.
    """
    meta = dict(extra_meta or {})
    meta.update(
        {
            "format": fmt,
            "schema_version": TRACE_SCHEMA_VERSION,
            "columns": {
                name: arrays[name].dtype.str for name in sorted(arrays)
            },
            "checksum": columns_checksum(arrays),
        }
    )
    meta_blob = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **{META_MEMBER: meta_blob}, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_meta(raw: np.ndarray, path: Path) -> Dict:
    if raw.nbytes > MAX_META_BYTES:
        raise CorruptArtifactError(
            f"{path}: _meta header is {raw.nbytes} bytes "
            f"(limit {MAX_META_BYTES}); container is corrupt or hostile"
        )
    try:
        meta = json.loads(bytes(raw.astype(np.uint8).tobytes()).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptArtifactError(
            f"{path}: unreadable _meta header in binary trace container"
        ) from exc
    if not isinstance(meta, dict):
        raise CorruptArtifactError(
            f"{path}: _meta header is not a JSON object"
        )
    return meta


def _check_meta_bounded(path: Path) -> None:
    """Reject an oversized ``_meta`` from the zip directory alone.

    Reads only the central directory — the member's declared size — so a
    corrupt or adversarial container is refused before any allocation of
    its claimed payload.  Structural zip problems surface as
    :class:`CorruptArtifactError` here rather than deeper in ``np.load``.
    """
    try:
        with zipfile.ZipFile(path) as zf:
            for info in zf.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[:-4]
                if name == META_MEMBER and info.file_size > MAX_META_BYTES + 1024:
                    # +1KiB slop for the .npy array header around the JSON.
                    raise CorruptArtifactError(
                        f"{path}: _meta member declares {info.file_size} "
                        f"bytes (limit {MAX_META_BYTES}); refusing to load"
                    )
    except zipfile.BadZipFile as exc:
        raise CorruptArtifactError(
            f"{path}: cannot read binary trace container: {exc}"
        ) from exc
    except OSError as exc:
        raise CorruptArtifactError(
            f"{path}: cannot read binary trace container: {exc}"
        ) from exc


def _mmap_npz_members(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Memory-map every ``.npy`` member of an uncompressed ``.npz``.

    ``np.savez`` writes members with ``ZIP_STORED``, so each array's bytes
    sit contiguously in the file at a computable offset: local zip header,
    then the ``.npy`` header, then raw data.  Returns ``None`` whenever the
    layout is not mappable (compressed members, Fortran order, unexpected
    header version) — the caller falls back to a buffered ``np.load``.
    """
    arrays: Dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as zf:
            infos = zf.infolist()
            if any(i.compress_type != zipfile.ZIP_STORED for i in infos):
                return None
            with open(path, "rb") as fh:
                for info in infos:
                    fh.seek(info.header_offset)
                    local = fh.read(30)
                    if len(local) < 30 or local[:4] != b"PK\x03\x04":
                        return None
                    name_len = int.from_bytes(local[26:28], "little")
                    extra_len = int.from_bytes(local[28:30], "little")
                    fh.seek(info.header_offset + 30 + name_len + extra_len)
                    version = np.lib.format.read_magic(fh)
                    if version == (1, 0):
                        shape, fortran, dtype = (
                            np.lib.format.read_array_header_1_0(fh)
                        )
                    elif version == (2, 0):
                        shape, fortran, dtype = (
                            np.lib.format.read_array_header_2_0(fh)
                        )
                    else:
                        return None
                    if fortran or dtype.hasobject:
                        return None
                    name = info.filename
                    if name.endswith(".npy"):
                        name = name[:-4]
                    arrays[name] = np.memmap(
                        path,
                        dtype=dtype,
                        mode="r",
                        offset=fh.tell(),
                        shape=shape,
                    )
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    return arrays


def load_columns(
    path: PathLike,
    expect_format: str,
    mmap: bool = False,
    verify: bool = True,
) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Load a columnar container; returns ``(columns, meta)``.

    Always validates the format tag, schema version, and that every
    declared column is present with its declared dtype.  ``verify=True``
    additionally recomputes the byte checksum (skipped under ``mmap`` —
    touching every page would defeat the mapping; corrupt data still fails
    the schema checks or the text checksum of derived artifacts).
    """
    path = Path(path)
    _check_meta_bounded(path)
    arrays: Optional[Dict[str, np.ndarray]] = None
    if mmap:
        arrays = _mmap_npz_members(path)
    if arrays is None:
        mmap = False
        try:
            with np.load(path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise CorruptArtifactError(
                f"{path}: cannot read binary trace container: {exc}"
            ) from exc
    if META_MEMBER not in arrays:
        raise CorruptArtifactError(
            f"{path}: binary trace container has no _meta header"
        )
    meta = _read_meta(arrays.pop(META_MEMBER), path)
    fmt = meta.get("format")
    if fmt != expect_format:
        raise ValueError(
            f"{path}: expected a {expect_format!r} container, got {fmt!r}"
        )
    version = meta.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version {version!r} "
            f"(this build reads {TRACE_SCHEMA_VERSION})"
        )
    declared = meta.get("columns")
    if not isinstance(declared, dict):
        raise CorruptArtifactError(f"{path}: _meta lacks a columns table")
    for name, dtype_str in declared.items():
        member = arrays.get(name)
        if member is None:
            raise CorruptArtifactError(
                f"{path}: declared column {name!r} is missing"
            )
        if member.dtype.str != dtype_str:
            raise CorruptArtifactError(
                f"{path}: column {name!r} has dtype {member.dtype.str}, "
                f"header declares {dtype_str}"
            )
    if verify and not mmap:
        stored = meta.get("checksum")
        if stored != columns_checksum(arrays):
            raise CorruptArtifactError(
                f"{path}: binary trace checksum mismatch — file is "
                f"truncated or corrupted; re-export it from its source"
            )
    return arrays, meta
