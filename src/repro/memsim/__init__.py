"""memsim subpackage of the G-MAP reproduction."""
