"""DRAM address mapping schemes.

The paper's Figure 7 sweeps two interleaving schemes (named MSB-to-LSB, as in
Ramulator):

* ``RoBaRaCoCh`` — Row | Bank | Rank | Column | **Channel**: channel bits are
  the lowest, so consecutive transactions stripe across channels (high
  memory-level parallelism, rows shared by distant addresses);
* ``ChRaBaRoCo`` — **Channel** | Rank | Bank | Row | Column: column bits are
  the lowest, so consecutive transactions stay within one row of one bank of
  one channel (high row-buffer locality, low parallelism).

Addresses are decomposed at transaction granularity: the low
``log2(txn_size)`` bits are the within-transaction offset and carry no
mapping information.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.memsim.config import DramConfig


@dataclass(frozen=True)
class DramCoordinates:
    """Physical location of one transaction."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


def _log2(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


class AddressMapping:
    """Bit-slice address decomposition for a DRAM geometry."""

    def __init__(self, config: DramConfig, txn_size: int = 128) -> None:
        self.config = config
        self.txn_size = txn_size
        self._offset_bits = _log2(txn_size, "txn_size")
        self._ch_bits = _log2(config.channels, "channels")
        self._ra_bits = _log2(config.ranks, "ranks")
        self._ba_bits = _log2(config.banks, "banks")
        columns = max(1, config.row_bytes // txn_size)
        self._co_bits = _log2(columns, "columns per row")

    def decompose(self, address: int) -> DramCoordinates:
        """Map a byte address to (channel, rank, bank, row, column)."""
        bits = address >> self._offset_bits
        scheme = self.config.mapping
        if scheme == "RoBaRaCoCh":
            fields = ("channel", "column", "rank", "bank")
            widths = (self._ch_bits, self._co_bits, self._ra_bits, self._ba_bits)
        else:  # ChRaBaRoCo: Column lowest, Channel highest.
            fields = ("column",)
            widths = (self._co_bits,)
        values = {}
        for field, width in zip(fields, widths):
            values[field] = bits & ((1 << width) - 1) if width else 0
            bits >>= width
        if scheme == "RoBaRaCoCh":
            values["row"] = bits
        else:
            # Remaining bits: Row, then Bank, Rank, Channel at the top.  The
            # row field takes whatever is left below the fixed-top fields;
            # cap it at 16 bits like a real device's row address.
            row_bits = 16
            values["row"] = bits & ((1 << row_bits) - 1)
            bits >>= row_bits
            for field, width in (
                ("bank", self._ba_bits),
                ("rank", self._ra_bits),
                ("channel", self._ch_bits),
            ):
                values[field] = bits & ((1 << width) - 1) if width else 0
                bits >>= width
        return DramCoordinates(
            channel=values["channel"],
            rank=values["rank"],
            bank=values["bank"],
            row=values["row"],
            column=values["column"],
        )

    def channel_of(self, address: int) -> int:
        return self.decompose(address).channel
