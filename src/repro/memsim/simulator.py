"""SIMT-aware trace-driven simulation loop.

Drives per-core warp queues against the memory hierarchy with latency
feedback (paper sections 4.5/4.6): each core issues one coalesced memory
transaction per cycle from a warp chosen by the scheduling policy; the
issuing warp is then *delayed in proportion to the request's latency* before
it is eligible again, which is what lets thread-level parallelism hide (or
fail to hide) memory latency in the model.

The same loop simulates original applications and G-MAP proxies — both are
just lists of :class:`~repro.gpu.executor.CoreAssignment`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from repro.gpu.executor import CoreAssignment, WarpTrace
from repro.gpu.instructions import AccessTuple
from repro.gpu.scheduler import WarpQueue, WarpScheduler, make_scheduler
from repro.memsim.config import SimConfig
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.stats import SimResult


#: Warps parked at a barrier are delayed to this time; they re-enter the
#: ready set only through an explicit barrier release.
_BARRIER_PARK = float("inf")


class _CoreState:
    """Scheduling state of one simulated core.

    Besides the warp queue, the core tracks TB-level barriers (paper
    section 4.5): a warp reaching a ``SYNC_PC`` record parks until every
    still-active warp of its threadblock has arrived, then the whole block
    crosses together.  A block's barrier also releases when its remaining
    non-parked warps retire, so clones whose warps drew π profiles with
    differing barrier counts cannot deadlock.
    """

    __slots__ = (
        "core_id", "now", "queue", "scheduler", "traces", "cursors",
        "waves", "wave_index", "last_warp", "issued", "same_issues",
        "block_active", "barrier_wait", "syncs_crossed",
    )

    def __init__(
        self, core_id: int, waves: List[List[WarpTrace]], scheduler: WarpScheduler
    ) -> None:
        self.core_id = core_id
        self.now = 0.0
        self.queue = WarpQueue()
        self.scheduler = scheduler
        self.traces: Dict[int, WarpTrace] = {}
        self.cursors: Dict[int, int] = {}
        self.waves = waves
        self.wave_index = 0
        self.last_warp: Optional[int] = None
        self.issued = 0
        self.same_issues = 0
        self.block_active: Dict[int, int] = {}
        self.barrier_wait: Dict[int, List[int]] = {}
        self.syncs_crossed = 0
        self._load_next_wave()

    def _load_next_wave(self) -> bool:
        """Fill the warp queue with the next resident wave of threadblocks."""
        while self.wave_index < len(self.waves):
            wave = self.waves[self.wave_index]
            self.wave_index += 1
            loaded = False
            self.block_active = {}
            self.barrier_wait = {}
            for trace in wave:
                if trace.transactions:
                    self.queue.add(trace.warp_id, self.now)
                    self.traces[trace.warp_id] = trace
                    self.cursors[trace.warp_id] = 0
                    self.block_active[trace.block] = (
                        self.block_active.get(trace.block, 0) + 1
                    )
                    loaded = True
            if loaded:
                return True
        return False

    @property
    def active(self) -> bool:
        return len(self.queue) > 0

    def _retire(self, warp: int) -> None:
        block = self.traces[warp].block
        self.queue.retire(warp)
        del self.traces[warp]
        del self.cursors[warp]
        self.block_active[block] -= 1
        self._maybe_release_barrier(block)
        if not self.queue:
            self._load_next_wave()

    def _maybe_release_barrier(self, block: int) -> None:
        waiting = self.barrier_wait.get(block)
        if not waiting or len(waiting) < self.block_active.get(block, 0):
            return
        self.barrier_wait[block] = []
        self.syncs_crossed += 1
        for warp in waiting:
            cursor = self.cursors[warp] + 1  # step past the SYNC record
            if cursor >= len(self.traces[warp].transactions):
                self.cursors[warp] = cursor
                self._retire(warp)
            else:
                self.cursors[warp] = cursor
                self.queue.delay(warp, self.now + 1.0)

    def step(self, hierarchy: MemoryHierarchy) -> bool:
        """Issue at most one transaction; returns False when the core idles."""
        ready = self.queue.ready_at(self.now)
        if not ready:
            next_ready = self.queue.next_event()
            if next_ready is None:
                return self._load_next_wave()
            if next_ready == _BARRIER_PARK:
                raise RuntimeError(
                    f"core {self.core_id}: all warps parked at barriers — "
                    "barrier bookkeeping is inconsistent"
                )
            self.now = max(self.now, next_ready)
            ready = self.queue.ready_at(self.now)
        warp = self.scheduler.select(ready, self.last_warp)
        trace = self.traces[warp]
        cursor = self.cursors[warp]
        pc, address, size, is_store = trace.transactions[cursor]
        if pc < 0:  # SYNC_PC: park at the TB barrier (no memory request)
            block = trace.block
            self.barrier_wait.setdefault(block, []).append(warp)
            self.queue.delay(warp, _BARRIER_PARK)
            self.last_warp = warp
            self._maybe_release_barrier(block)
            self.now += 1.0
            return True
        latency = hierarchy.access(
            self.core_id, self.now, pc, address, size, bool(is_store)
        )
        if self.last_warp == warp:
            self.same_issues += 1
        self.last_warp = warp
        self.issued += 1
        cursor += 1
        if cursor >= len(trace.transactions):
            self.cursors[warp] = cursor
            self._retire(warp)
        else:
            self.cursors[warp] = cursor
            self.queue.delay(warp, self.now + latency)
        self.now += 1.0
        return True


class SimtSimulator:
    """Runs core assignments through a fresh memory hierarchy.

    ``backend`` selects the memsim implementation for the *fixed-order*
    replay path (:meth:`replay_flat`): ``"numpy"`` uses the array-resident
    engine in :mod:`repro.memsim.vectorized` where the configuration
    permits, ``"python"`` (the default) the scalar oracle.  The
    latency-feedback loop (:meth:`run`) is inherently order-dependent and
    always runs the scalar oracle regardless of backend.
    """

    def __init__(self, config: SimConfig, backend: Optional[str] = None) -> None:
        from repro.core.backend import resolve_backend

        self.config = config
        self.backend = resolve_backend(backend)
        self.hierarchy = MemoryHierarchy(config)

    def replay_flat(
        self, per_core_traces: Sequence[Sequence[AccessTuple]]
    ) -> SimResult:
        """Replay pre-interleaved per-core traces on this config.

        Unlike :meth:`run` this uses a fresh hierarchy per call (flat
        replay has no warp-queue state to carry over) and honours the
        simulator's backend selection.
        """
        return simulate_flat_trace(
            per_core_traces, self.config, backend=self.backend
        )

    def run(
        self,
        assignments: Sequence[CoreAssignment],
        max_requests: Optional[int] = None,
    ) -> SimResult:
        """Simulate until every warp drains (or ``max_requests`` issue).

        Cores interleave in global time order so the shared L2/DRAM sees a
        realistic merged request stream.  The interleave is driven by an
        event heap keyed on ``(now, core index)``: the earliest core issues
        a burst of transactions until the next core's timestamp overtakes
        it, then re-enters the heap.  Ties on ``now`` resolve to the lowest
        core index — the same order the previous ``min()`` scan produced —
        so results are bit-identical to the linear-scan implementation.
        """
        scheduler_proto = make_scheduler(
            self.config.scheduler,
            self.config.sched_p_self,
            self.config.scheduler_seed,
        )
        cores = [
            _CoreState(a.core_id, a.waves, scheduler_proto.clone())
            for a in assignments
        ]
        issued_total = 0
        budget = max_requests if max_requests is not None else float("inf")
        hierarchy = self.hierarchy
        heap = [(core.now, index) for index, core in enumerate(cores)
                if core.active]
        heapq.heapify(heap)
        while heap and issued_total < budget:
            _, index = heapq.heappop(heap)
            core = cores[index]
            while True:
                before = core.issued
                alive = core.step(hierarchy)
                issued_total += core.issued - before
                if not alive or not core.active:
                    break  # drained: the core leaves the event heap
                if issued_total >= budget:
                    break
                if heap and heap[0] < (core.now, index):
                    heapq.heappush(heap, (core.now, index))
                    break

        result = SimResult(
            l1=hierarchy.l1_stats(),
            l2=hierarchy.l2_stats(),
            dram=hierarchy.dram_stats(),
            texture=hierarchy.texture_stats(),
            constant=hierarchy.constant_stats(),
            shared_accesses=hierarchy.shared_accesses,
            requests_issued=issued_total,
            cycles=max((c.now for c in cores), default=0.0),
            barriers_crossed=sum(c.syncs_crossed for c in cores),
            per_core_l1=[l1.stats for l1 in hierarchy.l1s],
        )
        total_issues = sum(c.issued for c in cores)
        same = sum(c.same_issues for c in cores)
        result.measured_p_self = same / total_issues if total_issues else 0.0
        return result


def simulate(
    assignments: Sequence[CoreAssignment],
    config: SimConfig,
    max_requests: Optional[int] = None,
) -> SimResult:
    """One-shot convenience wrapper: fresh simulator, one run."""
    return SimtSimulator(config).run(assignments, max_requests=max_requests)


def simulate_flat_trace(
    per_core_traces: Sequence[Sequence[AccessTuple]],
    config: SimConfig,
    backend: Optional[str] = None,
) -> SimResult:
    """Simulate pre-interleaved per-core traces (no scheduling feedback).

    Used for trace-file replay and for the fixed-order interleavings that
    Algorithm 2's simplest round-robin drain produces.

    Cores merge in global time order via the same ``(clock, core index)``
    event heap as :meth:`SimtSimulator.run`.  SYNC records (``pc < 0``)
    carry no memory semantics here, but they still consume one issue slot:
    the core's clock advances past them, so a barrier-heavy core does not
    unfairly win every interleaving tie against cores doing real work.

    With ``backend="numpy"`` the replay runs on the array-resident engine
    (:mod:`repro.memsim.vectorized`), bit-identical for supported
    configurations; configurations outside its matrix (prefetchers,
    non-LRU replacement, ...) transparently replay on this scalar oracle.
    """
    from repro.core.backend import resolve_backend

    if resolve_backend(backend) == "numpy":
        from repro.memsim import vectorized

        if vectorized.np is not None:
            try:
                return vectorized.simulate_flat_numpy(per_core_traces, config)
            except vectorized.UnsupportedConfigError:
                pass  # out-of-matrix config: replay the oracle below
    hierarchy = MemoryHierarchy(config)
    clocks = [0.0] * len(per_core_traces)
    cursors = [0] * len(per_core_traces)
    issued = 0
    heap = [(0.0, core) for core, trace in enumerate(per_core_traces) if trace]
    heapq.heapify(heap)
    while heap:
        _, core = heapq.heappop(heap)
        trace = per_core_traces[core]
        length = len(trace)
        cursor = cursors[core]
        clock = clocks[core]
        while True:
            pc, address, size, is_store = trace[cursor]
            cursor += 1
            if pc >= 0:
                hierarchy.access(core, clock, pc, address, size, bool(is_store))
                issued += 1
            clock += 1.0
            if cursor >= length:
                break
            if heap and heap[0] < (clock, core):
                heapq.heappush(heap, (clock, core))
                break
        cursors[core] = cursor
        clocks[core] = clock
    return SimResult(
        l1=hierarchy.l1_stats(),
        l2=hierarchy.l2_stats(),
        dram=hierarchy.dram_stats(),
        requests_issued=issued,
        cycles=max(clocks, default=0.0),
    )


#: Artifact format tag and schema version of one-pass multi-config reports.
MULTI_CONFIG_FORMAT = "gmap-multi-config"
MULTI_CONFIG_SCHEMA_VERSION = 1


def multi_config_report(
    per_core_traces: Sequence[Sequence[AccessTuple]],
    configs: Sequence[SimConfig],
    backend: Optional[str] = None,
    target: str = "<trace>",
) -> dict:
    """One-pass multi-config flat replay, as a JSON-serialisable report.

    The report is the artifact form of :func:`simulate_flat_multi`'s
    per-config stat blocks; ``gmap check`` validates it with
    :func:`repro.analysis.verify.verify_multi_config_report` (config count
    matches, trace-level totals identical across configs).
    ``oracle_fallbacks`` lists, per config index, the configuration-level
    reasons the array backend declined (empty when every config ran on the
    requested backend's fast path).
    """
    from repro.core.backend import resolve_backend
    from repro.core.cache import config_fingerprint
    from repro.memsim.vectorized import (
        memsim_fallback_reasons,
        simulate_flat_multi,
    )

    resolved = resolve_backend(backend)
    results = simulate_flat_multi(per_core_traces, configs, backend=resolved)
    fallbacks = []
    if resolved == "numpy":
        for index, config in enumerate(configs):
            reasons = memsim_fallback_reasons(config)
            if reasons:
                fallbacks.append({"index": index, "reasons": reasons})
    return {
        "format": MULTI_CONFIG_FORMAT,
        "schema_version": MULTI_CONFIG_SCHEMA_VERSION,
        "target": target,
        "backend": resolved,
        "num_configs": len(configs),
        "results": [
            {"config": config_fingerprint(config), "result": result.to_dict()}
            for config, result in zip(configs, results)
        ],
        "oracle_fallbacks": fallbacks,
    }
