"""GDDR DRAM model (the Ramulator-like substrate).

A trace-driven timing model of a multi-channel GDDR memory system with
per-bank row buffers, FR-FCFS scheduling, and the Figure 7 metrics: row
buffer locality, memory-controller queue length, and read/write latency.

Requests arrive in global time order (the SIMT simulator issues them from a
monotonic clock).  Each request is mapped to (channel, rank, bank, row); the
row-buffer outcome decides its access timing:

* row **hit** — the open row matches: tCAS;
* row **empty** — bank closed: tRCD + tCAS (activate then read);
* row **conflict** — another row open: tRP + tRCD + tCAS (precharge first,
  and no earlier than tRAS after that row's activation).

FR-FCFS is approximated by letting row-hit requests bypass the channel's
command-queue backlog within a bounded window: a hit starts as soon as its
bank is free, while non-hits queue behind the channel's outstanding work.
This reproduces FR-FCFS's signature effects — hits observe lower latency and
streams keep rows open — without a full event-driven command scheduler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.memsim.address_mapping import AddressMapping
from repro.memsim.config import DramConfig
from repro.memsim.stats import DramStats


@dataclass
class _Bank:
    open_row: int = -1          # -1 = closed (precharged)
    busy_until: float = 0.0     # earliest next command start, core cycles
    activated_at: float = 0.0   # last ACT time, for tRAS enforcement


class _Channel:
    __slots__ = ("bus_busy_until", "pending")

    def __init__(self) -> None:
        self.bus_busy_until = 0.0
        self.pending: Deque[float] = deque()  # completion times of queued reqs


class _Rank:
    """Rank-level constraints: tFAW activation window, tWTR turnaround."""

    __slots__ = ("recent_acts", "last_write_end")

    def __init__(self) -> None:
        self.recent_acts: Deque[float] = deque(maxlen=4)
        self.last_write_end = float("-inf")  # no write issued yet


class DramModel:
    """One memory system instance; shared by all cores via the L2."""

    def __init__(
        self,
        config: DramConfig,
        txn_size: int = 128,
        core_clock_mhz: float = 1400.0,
    ) -> None:
        self.config = config
        self.mapping = AddressMapping(config, txn_size)
        self.stats = DramStats()
        # All timing is kept in core cycles; DRAM-clock parameters scale by
        # the clock ratio.
        self._scale = core_clock_mhz / config.clock_mhz
        t = config.timings
        self.t_rcd = t.t_rcd * self._scale
        self.t_cas = t.t_cas * self._scale
        self.t_rp = t.t_rp * self._scale
        self.t_ras = t.t_ras * self._scale
        self.t_faw = t.t_faw * self._scale
        self.t_wtr = t.t_wtr * self._scale
        self.t_refi = t.t_refi * self._scale
        self.t_rfc = t.t_rfc * self._scale
        # Burst: txn_size bytes over a double-data-rate bus of bus_width
        # bytes per edge -> txn/(2*width) DRAM cycles.
        self.t_burst = max(1.0, txn_size / (2 * config.bus_width)) * self._scale
        self._banks: List[List[List[_Bank]]] = [
            [[_Bank() for _ in range(config.banks)] for _ in range(config.ranks)]
            for _ in range(config.channels)
        ]
        self._channels = [_Channel() for _ in range(config.channels)]
        self._ranks: List[List[_Rank]] = [
            [_Rank() for _ in range(config.ranks)]
            for _ in range(config.channels)
        ]

    def access(self, now: float, address: int, is_write: bool = False) -> float:
        """Service one transaction arriving at ``now``; returns its latency."""
        coord = self.mapping.decompose(address)
        bank = self._banks[coord.channel][coord.rank][coord.bank]
        channel = self._channels[coord.channel]
        stats = self.stats

        pending = channel.pending
        while pending and pending[0] <= now:
            pending.popleft()
        stats.queue_len_sum += len(pending)
        stats.queue_samples += 1

        if bank.open_row == coord.row:
            kind_latency = self.t_cas
            stats.row_hits += 1
            row_hit = True
        elif bank.open_row < 0:
            kind_latency = self.t_rcd + self.t_cas
            stats.row_empties += 1
            row_hit = False
        else:
            # Precharge may not begin before tRAS after the activation.
            ras_ready = bank.activated_at + self.t_ras
            kind_latency = self.t_rp + self.t_rcd + self.t_cas
            kind_latency += max(0.0, ras_ready - max(now, bank.busy_until))
            stats.row_conflicts += 1
            row_hit = False

        start = max(now, bank.busy_until)
        if row_hit:
            # FR-FCFS: promote row hits past the backlog, bounded by the
            # reorder window (older requests beyond it still block the bus).
            window = self.config.frfcfs_window
            if len(pending) > window:
                backlog_release = sorted(pending)[len(pending) - window - 1]
                start = max(start, backlog_release)
        else:
            start = max(start, channel.bus_busy_until)

        rank = self._ranks[coord.channel][coord.rank]
        if not row_hit and self.t_faw > 0 and len(rank.recent_acts) == 4:
            # Four-activate window: a fifth ACT waits for the oldest + tFAW.
            start = max(start, rank.recent_acts[0] + self.t_faw)
        if not is_write and self.t_wtr > 0:
            # Write-to-read turnaround on the rank's shared data path.
            start = max(start, rank.last_write_end + self.t_wtr)
        if self.t_refi > 0 and self.t_rfc > 0:
            # Periodic all-bank refresh: commands inside the blackout slide
            # to its end.
            phase = start % self.t_refi
            if phase < self.t_rfc:
                start += self.t_rfc - phase

        if bank.open_row != coord.row:
            bank.activated_at = start + (self.t_rp if bank.open_row >= 0 else 0.0)
            rank.recent_acts.append(bank.activated_at)
        finish = start + kind_latency + self.t_burst
        if is_write:
            rank.last_write_end = max(rank.last_write_end, finish)
        bank.open_row = coord.row
        bank.busy_until = finish
        channel.bus_busy_until = max(channel.bus_busy_until, finish)
        pending.append(finish)

        latency = finish - now
        if is_write:
            stats.writes += 1
            stats.write_latency_sum += latency
        else:
            stats.reads += 1
            stats.read_latency_sum += latency
        return latency

    # -- diagnostics -----------------------------------------------------------

    @property
    def open_rows(self) -> int:
        return sum(
            1
            for channel in self._banks
            for rank in channel
            for bank in rank
            if bank.open_row >= 0
        )

    def describe(self) -> str:
        return self.config.describe()
