"""Named memory-system presets for design-space exploration.

The paper profiles on a GDDR3-class part (Table 2) and sweeps GDDR5-class
configurations in Figure 7.  These presets bundle the geometry/timing
combinations a user would otherwise assemble by hand, including an HBM-like
point (many narrow channels) to explore the bandwidth-vs-locality trade-off
beyond the paper's sweep.

Timings are in DRAM-clock cycles of each standard's own clock.
"""

from __future__ import annotations

from typing import Dict

from repro.memsim.config import DramConfig, DramTimings

#: Table 2's profiled part: GDDR3, 8 channels, 924 MHz, 11-11-11-28.
GDDR3_PAPER = DramConfig(
    channels=8,
    ranks=1,
    banks=8,
    row_bytes=2048,
    bus_width=8,
    clock_mhz=924.0,
    timings=DramTimings(t_rcd=11, t_cas=11, t_rp=11, t_ras=28),
)

#: A GDDR5-class point (Figure 7's sweep family): faster clock, deeper
#: timing in cycles, 16 banks.
GDDR5 = DramConfig(
    channels=8,
    ranks=1,
    banks=16,
    row_bytes=2048,
    bus_width=8,
    clock_mhz=1750.0,
    timings=DramTimings(t_rcd=18, t_cas=18, t_rp=18, t_ras=42,
                        t_faw=46, t_wtr=8, t_refi=6825, t_rfc=280),
)

#: An HBM2-like point: many narrow channels at a slow clock — high
#: parallelism, low per-channel bandwidth.
HBM2_LIKE = DramConfig(
    channels=16,
    ranks=1,
    banks=16,
    row_bytes=1024,
    bus_width=16,
    clock_mhz=500.0,
    timings=DramTimings(t_rcd=7, t_cas=7, t_rp=7, t_ras=17,
                        t_faw=15, t_wtr=3, t_refi=1950, t_rfc=130),
)

PRESETS: Dict[str, DramConfig] = {
    "gddr3-paper": GDDR3_PAPER,
    "gddr5": GDDR5,
    "hbm2-like": HBM2_LIKE,
}


def dram_preset(name: str) -> DramConfig:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown DRAM preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
