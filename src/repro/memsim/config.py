"""Configuration types for the SIMT-aware cache/memory simulator.

``PAPER_BASELINE`` reproduces the paper's Table 2 profiled system
configuration: 15 SMs, 16KB 4-way L1 with 128B lines, 1MB 8-way 8-bank L2,
64 MSHRs/core, LRR scheduling, GDDR with 8 channels and
tRCD-tCAS-tRP-tRAS = 11-11-11-28 at 924 MHz (core clock 1400 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


def _require_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry, latency, and policies of one cache level.

    ``write_policy`` is "write-back" (dirty lines, writebacks on eviction —
    the CMP$im default) or "write-through" (stores forward downstream
    immediately; lines never dirty).  ``write_allocate`` controls whether a
    store miss fills the line; write-through + no-allocate models the
    GPU-typical write-evict L1.  ``replacement`` is "lru", "fifo", or
    "random" (deterministic, seeded per cache).
    """

    size: int              # bytes
    assoc: int
    line_size: int         # bytes
    hit_latency: int = 1   # core cycles
    mshrs: int = 64
    banks: int = 1
    write_policy: str = "write-back"
    write_allocate: bool = True
    replacement: str = "lru"

    def __post_init__(self) -> None:
        # The size itself need not be a power of two (e.g. Fermi's 12KB
        # 24-way texture cache); the number of sets must be, for indexing.
        _require_power_of_two("line size", self.line_size)
        _require_power_of_two("banks", self.banks)
        if self.size <= 0:
            raise ValueError(f"cache size must be positive, got {self.size}")
        if self.assoc < 1:
            raise ValueError(f"associativity must be >= 1, got {self.assoc}")
        if self.size % (self.line_size * self.assoc):
            raise ValueError(
                f"size {self.size} not divisible by line*assoc "
                f"({self.line_size}x{self.assoc})"
            )
        # Catch impossible runtime parameters at construction, not mid-sweep:
        # MshrFile rejects entries < 1 only when the hierarchy is built, and
        # a negative hit latency would silently warp simulated time.
        if self.mshrs < 1:
            raise ValueError(f"MSHR count must be >= 1, got {self.mshrs}")
        if self.hit_latency < 0:
            raise ValueError(
                f"hit latency must be >= 0, got {self.hit_latency}"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )
        if self.write_policy not in ("write-back", "write-through"):
            raise ValueError(
                f"write_policy must be write-back|write-through, "
                f"got {self.write_policy!r}"
            )
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(
                f"replacement must be lru|fifo|random, got {self.replacement!r}"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)

    def describe(self) -> str:
        kb = self.size // 1024
        return f"{kb}KB {self.assoc}-way {self.line_size}B"


@dataclass(frozen=True)
class PrefetcherConfig:
    """A prefetcher attached to one cache level.

    ``kind`` is "stride" (PC-indexed, many-thread aware — the paper's L1
    prefetcher after Lee et al. [12]) or "stream" (sequential stream
    detector — the paper's L2 prefetcher).  ``degree`` is how many lines are
    prefetched per trigger; ``stream_window`` the allocation window of the
    stream detector (the paper sweeps 8/16/32); ``table_size`` the number of
    tracked PCs or concurrent streams.
    """

    kind: str
    degree: int = 2
    table_size: int = 64
    stream_window: int = 16
    train_on_miss_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("stride", "stream"):
            raise ValueError(f"prefetcher kind must be stride|stream, got {self.kind!r}")
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.table_size < 1:
            raise ValueError(f"table_size must be >= 1, got {self.table_size}")
        if self.stream_window < 1:
            raise ValueError(f"stream_window must be >= 1, got {self.stream_window}")


@dataclass(frozen=True)
class DramTimings:
    """Key DRAM timing parameters, in DRAM-clock cycles.

    Beyond the paper's headline tRCD-tCAS-tRP-tRAS quad (Table 2:
    11-11-11-28), the model honours the secondary constraints that shape
    GDDR behaviour under real traffic: the four-activate window ``t_faw``,
    the write-to-read turnaround ``t_wtr``, and periodic refresh
    (``t_refi`` interval, ``t_rfc`` blackout).  Setting ``t_faw=0`` /
    ``t_wtr=0`` / ``t_refi=0`` disables the respective constraint.
    """

    t_rcd: int = 11
    t_cas: int = 11
    t_rp: int = 11
    t_ras: int = 28
    t_faw: int = 32
    t_wtr: int = 6
    t_refi: int = 3900
    t_rfc: int = 160

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_cas", "t_rp", "t_ras"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("t_faw", "t_wtr", "t_refi", "t_rfc"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class DramConfig:
    """GDDR memory system geometry and timing."""

    channels: int = 8
    ranks: int = 1
    banks: int = 8
    row_bytes: int = 2048
    bus_width: int = 8          # bytes per DRAM clock edge per channel
    clock_mhz: float = 924.0
    timings: DramTimings = field(default_factory=DramTimings)
    mapping: str = "RoBaRaCoCh"
    frfcfs_window: int = 16

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "banks"):
            _require_power_of_two(name, getattr(self, name))
        _require_power_of_two("row_bytes", self.row_bytes)
        _require_power_of_two("bus_width", self.bus_width)
        if self.mapping not in ("RoBaRaCoCh", "ChRaBaRoCo"):
            raise ValueError(
                f"mapping must be RoBaRaCoCh|ChRaBaRoCo, got {self.mapping!r}"
            )
        if self.frfcfs_window < 1:
            raise ValueError("frfcfs_window must be >= 1")

    def describe(self) -> str:
        return (
            f"{self.channels}ch x{self.ranks}rank x{self.banks}bank "
            f"{self.bus_width}B bus, {self.mapping}"
        )


@dataclass(frozen=True)
class SimConfig:
    """Complete system configuration for one simulation run."""

    num_cores: int = 15
    core_clock_mhz: float = 1400.0
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=16 * 1024, assoc=4, line_size=128)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=1024 * 1024, assoc=8, line_size=128, hit_latency=30, banks=8
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    l1_prefetcher: Optional[PrefetcherConfig] = None
    l2_prefetcher: Optional[PrefetcherConfig] = None
    scheduler: str = "lrr"
    sched_p_self: float = 0.5
    scheduler_seed: int = 0
    max_blocks_per_core: int = 8
    # Per-SM specialised paths (section 2.1: "Each SM is associated with a
    # private L1 data cache, texture cache, constant cache and shared
    # memory").  Fermi-class defaults; set to None to model their absence.
    texture_cache: Optional[CacheConfig] = field(
        default_factory=lambda: CacheConfig(
            size=12 * 1024, assoc=24, line_size=128, hit_latency=4
        )
    )
    constant_cache: Optional[CacheConfig] = field(
        default_factory=lambda: CacheConfig(
            size=8 * 1024, assoc=4, line_size=64, hit_latency=1
        )
    )
    shared_latency: float = 1.0
    #: SM <-> L2-partition interconnect traversal (section 2.1: "all SMs
    #: are connected to the memory modules by an interconnection network").
    #: Applied once per L2-bound request; 0 disables.
    noc_latency: float = 8.0
    #: L2 inclusion policy: "non-inclusive" (default — L1 and L2 contents
    #: evolve independently, the common GPU arrangement) or "inclusive"
    #: (an L2 eviction back-invalidates every core's L1 copy).
    l2_inclusion: str = "non-inclusive"

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.l2_inclusion not in ("non-inclusive", "inclusive"):
            raise ValueError(
                f"l2_inclusion must be non-inclusive|inclusive, "
                f"got {self.l2_inclusion!r}"
            )

    def with_(self, **changes) -> "SimConfig":
        """Functional update, for sweep construction."""
        return replace(self, **changes)

    @property
    def dram_cycle_in_core_cycles(self) -> float:
        return self.core_clock_mhz / self.dram.clock_mhz


#: Table 2 of the paper: the profiled system configuration.
PAPER_BASELINE = SimConfig()
