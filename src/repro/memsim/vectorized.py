"""Array-resident memsim: vectorized flat-trace cache simulation.

The scalar event loops in :mod:`repro.memsim.simulator` are the repo's
bit-exact oracles.  This module is the numpy backend for the *fixed-order*
replay path (:func:`~repro.memsim.simulator.simulate_flat_trace`): when the
interleaving of requests does not depend on simulated latency — trace-file
replay and Algorithm 2's round-robin drain — the global access order is
statically computable, and the cache layer becomes a batch problem instead
of a per-access python call chain.

The hybrid scheme splits one simulation into three array phases plus one
bounded scalar window:

1. **decode** (:class:`FlatTraceArrays`) — one-shot columnar extraction of
   every per-core record plus the global replay order (a single lexsort
   reproduces the oracle's ``(clock, core)`` event-heap merge exactly);
2. **route + sector split** — memory-space routing and the L1 sector
   expansion for transactions wider than a line, vectorized over the whole
   trace with one set-index/tag extraction;
3. **per-set grouped LRU** (:func:`_lru_rounds`) — all ``(core, set)``
   units advance in lockstep rounds; each round is a handful of array ops
   over an ``(active_units, assoc)`` state matrix, so hits, misses, victim
   identity and victim dirtiness come out bit-identical to the dict-based
   cache model without any per-access python;
4. **scalar downstream window** — everything whose semantics depend on
   exact event ordering (L1/L2 MSHR merge windows, banked-L2 busy times,
   the FR-FCFS DRAM model) replays scalar, but only over the compact L1
   *miss* stream the array phases produced — the part of the trace where
   ordering actually matters.

Configurations outside the supported matrix (prefetchers, non-LRU
replacement, write-through/no-allocate policies, inclusive L2, or traffic
into a configured texture/constant cache) fall back to the python oracle —
detected from :class:`~repro.memsim.config.SimConfig` and the decoded
trace, never guessed.  See ``docs/performance.md`` for the full matrix.

On top of the shared phases, :func:`simulate_flat_multi` runs **one-pass
multi-config sweeps**: a single decode + order resolution fans out to N
configurations that reuse the tag/set arrays, so a 6-config sweep costs
one trace pass plus six cheap array phases.

Bit-exactness contract: for supported configurations every
:class:`~repro.memsim.stats.SimResult` field — including MSHR merge/stall
counters and DRAM timing stats — equals the oracle's, because the scalar
window replays the identical arithmetic in the identical order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.gpu.instructions import AccessTuple
from repro.gpu.memspace import (
    CONSTANT_BASE,
    CONSTANT_SIZE,
    SHARED_BASE,
    SHARED_SIZE,
    TEXTURE_BASE,
    TEXTURE_SIZE,
)
from repro.memsim.config import SimConfig
from repro.memsim.dram import DramModel
from repro.memsim.stats import CacheStats, SimResult

try:  # numpy is optional; the python oracle never needs it.
    import numpy as np
except ImportError:  # pragma: no cover - depends on the environment
    np = None  # type: ignore[assignment]


class UnsupportedConfigError(ValueError):
    """The configuration (or trace) needs the scalar oracle.

    Carries the fallback reasons so callers can report *why* the array
    path declined — the service degradation layer and ``gmap check``
    surface these verbatim.
    """

    def __init__(self, reasons: Sequence[str]) -> None:
        super().__init__(
            "array memsim backend cannot simulate this configuration: "
            + "; ".join(reasons)
        )
        self.reasons = list(reasons)


def memsim_fallback_reasons(config: SimConfig) -> List[str]:
    """Configuration features that force the scalar oracle.

    This is the hybrid fallback matrix: each entry names a ``SimConfig``
    feature whose semantics depend on exact event ordering (or on state
    the array phases do not model).  An empty list means the array path
    can run — subject to the *trace-level* check in
    :meth:`FlatTraceArrays.fallback_reasons` (texture/constant traffic).
    """
    reasons: List[str] = []
    if config.l1_prefetcher is not None or config.l2_prefetcher is not None:
        reasons.append("prefetchers require exact event ordering")
    for level, cache in (("l1", config.l1), ("l2", config.l2)):
        if cache.replacement != "lru":
            reasons.append(
                f"{level} replacement {cache.replacement!r} is not "
                f"vectorized (process-seeded RNG / FIFO stamps)"
            )
        if cache.write_policy != "write-back" or not cache.write_allocate:
            reasons.append(
                f"{level} write policy "
                f"{cache.write_policy}/allocate={cache.write_allocate} "
                f"is not vectorized"
            )
    if config.l2_inclusion != "non-inclusive":
        reasons.append("inclusive L2 back-invalidation requires the oracle")
    return reasons


class FlatTraceArrays:
    """Columnar view of per-core flat traces, in global replay order.

    The oracle merges cores through a ``(clock, core)`` event heap where
    every record advances its core's clock by exactly one — so the global
    order is the stable lexicographic sort by (record index, core), and
    one ``np.lexsort`` replaces the whole heap dance.  The decode is
    configuration-independent: one instance fans out to any number of
    ``SimConfig`` evaluations (the one-pass multi-config path).
    """

    __slots__ = (
        "pc", "address", "size", "store", "core", "clock",
        "num_cores", "requests_issued", "cycles", "_l1_mask",
        "_stream_cache",
    )

    def __init__(self, per_core_traces: Sequence[Sequence[AccessTuple]]) -> None:
        if np is None:  # pragma: no cover - depends on the environment
            raise RuntimeError("FlatTraceArrays requires numpy")
        chunks = []
        cores = []
        clocks = []
        for core, trace in enumerate(per_core_traces):
            if not trace:
                continue
            try:
                # Flattened fromiter beats np.asarray-of-tuples ~2x on the
                # python-tuple traces this decode normally sees.
                block = np.fromiter(
                    itertools.chain.from_iterable(trace),
                    dtype=np.int64, count=len(trace) * 4,
                ).reshape(-1, 4)
            except (TypeError, ValueError):
                block = np.asarray(trace, dtype=np.int64)
            if block.ndim != 2 or block.shape[1] != 4:
                raise ValueError(
                    f"core {core}: flat trace records must be "
                    f"(pc, address, size, is_store) tuples"
                )
            chunks.append(block)
            cores.append(np.full(len(block), core, dtype=np.int64))
            clocks.append(np.arange(len(block), dtype=np.int64))
        self.num_cores = len(per_core_traces)
        self._stream_cache = {}
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            self.pc = self.address = self.size = self.store = empty
            self.core = self.clock = empty
            self.requests_issued = 0
            self.cycles = 0.0
            self._l1_mask = np.empty(0, dtype=bool)
            return
        records = np.concatenate(chunks)
        core_arr = np.concatenate(cores)
        clock_arr = np.concatenate(clocks)
        order = np.lexsort((core_arr, clock_arr))
        records = records[order]
        self.pc = records[:, 0]
        self.address = records[:, 1]
        self.size = records[:, 2]
        self.store = records[:, 3] != 0
        self.core = core_arr[order]
        self.clock = clock_arr[order]
        self.requests_issued = int(np.count_nonzero(self.pc >= 0))
        self.cycles = float(max(len(t) for t in per_core_traces))
        address = self.address
        shared = (address >= SHARED_BASE) & (address < SHARED_BASE + SHARED_SIZE)
        # Memory records outside the shared window take the L1 data path;
        # texture/constant windows only divert when the config instantiates
        # those caches (checked per config in fallback_reasons).
        self._l1_mask = (self.pc >= 0) & ~shared

    def fallback_reasons(self, config: SimConfig) -> List[str]:
        """Config + trace features that force the scalar oracle."""
        reasons = memsim_fallback_reasons(config)
        address = self.address
        if config.texture_cache is not None and len(address):
            tex = (address >= TEXTURE_BASE) & (
                address < TEXTURE_BASE + TEXTURE_SIZE)
            if bool(tex.any()):
                reasons.append(
                    "texture-cache traffic requires the read-only-cache "
                    "scalar path")
        if config.constant_cache is not None and len(address):
            const = (address >= CONSTANT_BASE) & (
                address < CONSTANT_BASE + CONSTANT_SIZE)
            if bool(const.any()):
                reasons.append(
                    "constant-cache traffic requires the read-only-cache "
                    "scalar path")
        return reasons

    # -- phase 2: routing + sector expansion ---------------------------------

    def l1_stream(self, config: SimConfig):
        """The L1-bound access stream for one config, sector-expanded.

        Returns ``(line, store, now, core)`` arrays in global replay
        order: one entry per L1 cache access, with transactions wider than
        the L1 line split into aligned line-sized sectors exactly as
        ``MemoryHierarchy.access`` does.

        The result depends on the config only through the L1 line size, so
        it is memoized per line size — in a one-pass multi-config sweep
        every config sharing a line size reuses one expansion.
        """
        cached = self._stream_cache.get(config.l1.line_size)
        if cached is not None:
            return cached
        shift = config.l1.line_size.bit_length() - 1
        mask = self._l1_mask
        address = self.address[mask]
        size = self.size[mask]
        store = self.store[mask]
        now = self.clock[mask].astype(np.float64)
        core = self.core[mask]
        first = address >> shift
        last = (address + size - 1) >> shift
        sectors = np.where(size <= config.l1.line_size, 1, last - first + 1)
        if bool((sectors == 1).all()):
            result = (first, store, now, core)
        else:
            rep = np.repeat(np.arange(len(address)), sectors)
            offsets = np.concatenate(([0], np.cumsum(sectors)[:-1]))
            within = (
                np.arange(int(sectors.sum()), dtype=np.int64) - offsets[rep]
            )
            result = (first[rep] + within, store[rep], now[rep], core[rep])
        self._stream_cache[config.l1.line_size] = result
        return result


def _lru_rounds(
    unit: "np.ndarray", line: "np.ndarray", store: "np.ndarray", assoc: int
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Per-set grouped LRU over independent units, in lockstep rounds.

    ``unit`` maps each access to its (cache instance, set) pair; units are
    mutually independent, so round ``r`` advances every unit's ``r``-th
    access with a few array ops over an ``(active_units, assoc)`` state
    matrix.  Stamps are the access's global stream index — monotone within
    every unit, so LRU/victim selection orders identically to the oracle's
    per-cache clock.

    Returns ``(hit, victim_line, victim_dirty)`` per access (original
    order); ``victim_line`` is -1 where no line was evicted.
    """
    n = len(unit)
    hit = np.zeros(n, dtype=bool)
    victim_line = np.full(n, -1, dtype=np.int64)
    victim_dirty = np.zeros(n, dtype=bool)
    if n == 0:
        return hit, victim_line, victim_dirty
    order = np.argsort(unit, kind="stable")
    sorted_unit = unit[order]
    if assoc == 1:
        # Direct-mapped: one resident line per unit, so the whole LRU
        # collapses to run-length logic over the unit-sorted stream — a
        # hit is a repeat of the unit's previous line, the victim is that
        # previous line, and victim dirtiness is "any store in the
        # previous residency run".  No rounds loop at all.
        sorted_line = line[order]
        sorted_store = store[order]
        same_unit = np.empty(n, dtype=bool)
        same_unit[0] = False
        same_unit[1:] = sorted_unit[1:] == sorted_unit[:-1]
        hit_s = np.empty(n, dtype=bool)
        hit_s[0] = False
        hit_s[1:] = same_unit[1:] & (sorted_line[1:] == sorted_line[:-1])
        hit[order] = hit_s
        miss_s = ~hit_s
        # Residency runs: every miss starts one.  The evicting miss's
        # victim run is the immediately preceding run of the same unit.
        run_starts = np.nonzero(miss_s)[0]
        run_dirty = np.logical_or.reduceat(sorted_store, run_starts)
        run_id = np.cumsum(miss_s) - 1
        evict = np.nonzero(miss_s & same_unit)[0]
        evict_index = order[evict]
        victim_line[evict_index] = sorted_line[evict - 1]
        victim_dirty[evict_index] = run_dirty[run_id[evict] - 1]
        return hit, victim_line, victim_dirty
    if assoc == 2:
        # Two-way LRU also collapses to run-compressed logic: after the
        # first access of a unit's run k the resident pair is exactly
        # {v_k, v_(k-1)}, so that access hits iff k >= 2 and
        # v_k == v_(k-2), a full miss evicts v_(k-2), and a victim's
        # dirtiness is the OR of stores over its residency chain — the
        # maximal stretch of equal-valued *same-parity* runs (k-2, k-4,
        # ...) back to the fill.  No rounds loop at all.
        sorted_line = line[order]
        sorted_store = store[order]
        new_unit = np.empty(n, dtype=bool)
        new_unit[0] = True
        new_unit[1:] = sorted_unit[1:] != sorted_unit[:-1]
        new_run = new_unit.copy()
        new_run[1:] |= sorted_line[1:] != sorted_line[:-1]
        run_starts = np.nonzero(new_run)[0]
        num_runs = len(run_starts)
        run_val = sorted_line[run_starts]
        run_store = np.logical_or.reduceat(sorted_store, run_starts)
        run_new_unit = new_unit[run_starts]
        unit_first = np.nonzero(run_new_unit)[0]
        runs_per_unit = np.diff(np.append(unit_first, num_runs))
        k = (np.arange(num_runs, dtype=np.int64)
             - np.repeat(unit_first, runs_per_unit))
        hit2 = np.zeros(num_runs, dtype=bool)
        deep = np.nonzero(k >= 2)[0]
        hit2[deep] = run_val[deep] == run_val[deep - 2]
        hit_s = np.ones(n, dtype=bool)
        hit_s[run_starts] = hit2
        hit[order] = hit_s
        # Residency segments, per (unit, parity) subsequence: every
        # non-hit first access is a fill that starts a new segment;
        # cumulative OR of per-run stores within the segment gives the
        # way's dirty bit after each run.
        run_unit_id = np.cumsum(run_new_unit) - 1
        pkey = run_unit_id * 2 + (k & 1)
        porder = np.argsort(pkey, kind="stable")
        pk = pkey[porder]
        p_store = run_store[porder].astype(np.int64)
        seg_start = np.empty(num_runs, dtype=bool)
        seg_start[0] = True
        seg_start[1:] = pk[1:] != pk[:-1]
        seg_start |= ~hit2[porder]
        seg_first = np.nonzero(seg_start)[0]
        seg_len = np.diff(np.append(seg_first, num_runs))
        cs = np.cumsum(p_store)
        base = np.repeat(cs[seg_first] - p_store[seg_first], seg_len)
        dirty_cum = (cs - base) > 0
        pos_of = np.empty(num_runs, dtype=np.int64)
        pos_of[porder] = np.arange(num_runs, dtype=np.int64)
        evict_runs = deep[~hit2[deep]]
        evict_index = order[run_starts[evict_runs]]
        victim_line[evict_index] = run_val[evict_runs - 2]
        victim_dirty[evict_index] = dirty_cum[pos_of[evict_runs - 2]]
        return hit, victim_line, victim_dirty
    starts = np.nonzero(
        np.concatenate(([True], sorted_unit[1:] != sorted_unit[:-1]))
    )[0]
    counts = np.diff(np.append(starts, n))
    # Sort groups by descending depth so each round's active units are a
    # prefix — state updates become contiguous views, not fancy indexing.
    by_depth = np.argsort(-counts, kind="stable")
    counts = counts[by_depth]
    num_units = len(counts)
    # Row of each access = its unit's depth rank; round = its position
    # within the unit.  Sorting by (round, row) lays the whole stream out
    # round-major with rows as prefixes, so the rounds loop below indexes
    # by cheap contiguous slices instead of per-round gathers.
    rank = np.empty(num_units, dtype=np.int64)
    rank[by_depth] = np.arange(num_units, dtype=np.int64)
    lengths = np.diff(np.append(starts, n))
    depth = np.arange(n, dtype=np.int64) - np.repeat(starts, lengths)
    row = np.repeat(rank, lengths)
    perm = np.argsort(depth * num_units + row, kind="stable")
    rm = order[perm]
    lines_rm = line[rm]
    store_rm = store[rm]
    tags = np.full((num_units, assoc), -1, dtype=np.int64)
    stamps = np.zeros((num_units, assoc), dtype=np.int64)
    dirty = np.zeros((num_units, assoc), dtype=bool)
    occupancy = np.zeros(num_units, dtype=np.int64)
    rounds = int(counts[0])
    # Active-unit count of every round in one shot: unit `u` participates
    # in round r iff counts[u] > r, and counts are descending.
    active_per_round = np.searchsorted(
        -counts, -np.arange(rounds, dtype=np.int64), side="left"
    )
    pos = 0
    for r in range(rounds):
        active = int(active_per_round[r])
        stop = pos + active
        index = rm[pos:stop]
        lines_r = lines_rm[pos:stop]
        store_r = store_rm[pos:stop]
        pos = stop
        equal = tags[:active] == lines_r[:, None]
        hit_r = equal.any(axis=1)
        hit_rows = np.nonzero(hit_r)[0]
        if hit_rows.size:
            ways = equal[hit_rows].argmax(axis=1)
            stamps[hit_rows, ways] = index[hit_rows]
            dirty[hit_rows, ways] |= store_r[hit_rows]
            hit[index[hit_rows]] = True
        miss_rows = np.nonzero(~hit_r)[0]
        if miss_rows.size:
            # One unified fill: cold rows take way=occupancy, full rows
            # the LRU way.  A cold way still holds tag -1 / dirty False,
            # so reading the victim columns before the fill yields the
            # "no eviction" sentinel for cold rows automatically.
            occ = occupancy[miss_rows]
            cold = occ < assoc
            ways = stamps[miss_rows].argmin(axis=1)
            ways[cold] = occ[cold]
            miss_index = index[miss_rows]
            victim_line[miss_index] = tags[miss_rows, ways]
            victim_dirty[miss_index] = dirty[miss_rows, ways]
            tags[miss_rows, ways] = lines_r[miss_rows]
            stamps[miss_rows, ways] = miss_index
            dirty[miss_rows, ways] = store_r[miss_rows]
            occupancy[miss_rows] += cold
    return hit, victim_line, victim_dirty


def _downstream_nomerge(
    config: SimConfig,
    miss_now: "np.ndarray",
    miss_core: "np.ndarray",
    miss_line_addr: "np.ndarray",
    writeback_addr: "np.ndarray",
) -> Optional[Tuple[int, int, CacheStats, "DramModel"]]:
    """Optimistic downstream pass for merge-free L1 MSHR behaviour.

    The L2's hit/miss/victim outcomes depend only on its access *order*,
    never on timing — and with zero L1 MSHR merges that order is fully
    known up front: every L1 miss issues one demand access followed by
    one writeback access when it evicted a dirty victim.  So the whole
    banked-L2 cache behaviour collapses into one more :func:`_lru_rounds`
    pass over that interleaved stream, and the remaining scalar loop only
    tracks timing (bank busy, L1/L2 MSHR occupancy, DRAM) — no per-event
    set dicts.

    An L1 MSHR merge would *remove* a demand access from the stream and
    invalidate the precomputed columns, so the loop still runs the exact
    merge test and returns ``None`` at the first hit; the caller then
    replays the exact dict-based loop from scratch.  Merges are the only
    escape hatch: misses, victims and writebacks all come from the L1
    array phase, which is order-exact.  Only valid when an L1 line spans
    a single L2 access (``l2_line >= l1_line``).
    """
    n = len(miss_now)
    if n == 0:
        return None
    l1_cfg = config.l1
    l2_cfg = config.l2
    l1_hit = float(l1_cfg.hit_latency)
    l2_hit = float(l2_cfg.hit_latency)
    noc = config.noc_latency
    # Merge prescreen: a fill is in flight for at least
    # ``l1_hit + noc + l2_hit`` cycles, so a same-(core, line) re-miss
    # inside that window merges unless a stall prune killed the entry.
    # Treat any such repeat as a certain merge and skip the optimistic
    # pass before paying for the L2 precompute; a kill that would have
    # saved it only costs the fast path, never correctness.
    if n > 1:
        key = miss_line_addr * np.int64(config.num_cores) + miss_core
        order = np.lexsort((miss_now, key))
        k_sorted = key[order]
        t_sorted = miss_now[order]
        repeat = (k_sorted[1:] == k_sorted[:-1]) & (
            t_sorted[1:] - t_sorted[:-1] < l1_hit + noc + l2_hit
        )
        if bool(repeat.any()):
            return None
    l2_line = l2_cfg.line_size
    l2_shift = l2_line.bit_length() - 1
    l2_set_mask = l2_cfg.num_sets - 1
    bank_shift = l2_shift
    bank_mask = l2_cfg.banks - 1
    bank_busy = [0.0] * l2_cfg.banks

    dram = DramModel(
        config.dram, txn_size=l2_line, core_clock_mhz=config.core_clock_mhz
    )
    dram_access = dram.access

    # The L2 access stream, in oracle order: demand access per miss, then
    # the dirty-victim writeback access when there is one.
    demand_line = miss_line_addr >> np.int64(l2_shift)
    has_wb = writeback_addr >= 0
    wb_events = np.nonzero(has_wb)[0]
    total = n + len(wb_events)
    demand_pos = np.arange(n, dtype=np.int64)
    demand_pos[1:] += np.cumsum(has_wb[:-1])
    wb_pos = demand_pos[wb_events] + 1
    stream_line = np.empty(total, dtype=np.int64)
    stream_line[demand_pos] = demand_line
    stream_line[wb_pos] = writeback_addr[wb_events] >> np.int64(l2_shift)
    stream_store = np.zeros(total, dtype=bool)
    stream_store[wb_pos] = True
    l2_hit_col, l2_victim_line, l2_victim_dirty = _lru_rounds(
        stream_line & np.int64(l2_set_mask), stream_line, stream_store,
        l2_cfg.assoc,
    )
    demand_hit = l2_hit_col[demand_pos]
    demand_victim_line = l2_victim_line[demand_pos]
    demand_victim_dirty = l2_victim_dirty[demand_pos]
    # Per-event DRAM-writeback address of the L2 store-miss path (-1 when
    # the writeback hit L2 or evicted a clean line).
    wb_dram_addr = np.full(n, -1, dtype=np.int64)
    wb_victim_dirty = l2_victim_dirty[wb_pos]
    dirty_wb = wb_events[wb_victim_dirty]
    wb_dram_addr[dirty_wb] = (
        l2_victim_line[wb_pos][wb_victim_dirty] << np.int64(l2_shift)
    )

    l1_entries = l1_cfg.mshrs
    l1_inflight: List[dict] = [dict() for _ in range(config.num_cores)]
    l1_heaps: List[list] = [[] for _ in range(config.num_cores)]
    l1_kills: List[dict] = [dict() for _ in range(config.num_cores)]
    l2_entries = max(l2_cfg.mshrs, config.num_cores * 8)
    l2_inflight: dict = {}
    l2_heap: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    l1_stalls = 0
    l2_merges = 0

    def miss_latency(i: int, now2: float, start: float) -> float:
        """L2 demand-miss continuation against precomputed victim columns
        (same arithmetic and DRAM call order as ``access_l2_miss``)."""
        nonlocal l2_merges
        line_addr2 = int(demand_line[i]) << l2_shift
        while l2_heap and l2_heap[0][0] <= start:
            del l2_inflight[heappop(l2_heap)[1]]
        inflight = l2_inflight.get(line_addr2)
        if inflight is not None:
            l2_merges += 1
            waited = inflight - start
            service = l2_hit if l2_hit > waited else waited
        else:
            service = l2_hit + dram_access(start + l2_hit, line_addr2, False)
            stall = 0.0
            if len(l2_inflight) >= l2_entries:
                stall = l2_heap[0][0] - start
                if stall < 0.0:
                    stall = 0.0
                prune_to = start + stall
                while l2_heap and l2_heap[0][0] <= prune_to:
                    del l2_inflight[heappop(l2_heap)[1]]
            completion = start + stall + service
            l2_inflight[line_addr2] = completion
            heappush(l2_heap, (completion, line_addr2))
        if demand_victim_dirty[i]:
            dram_access(start, int(demand_victim_line[i]) << l2_shift, True)
        return noc + (start - now2) + service

    bank_list = ((miss_line_addr >> np.int64(bank_shift))
                 & np.int64(bank_mask)).tolist()
    noc_l2_hit = noc + l2_hit
    l1_noc = l1_hit + noc
    heapreplace = heapq.heapreplace
    seq = 0
    for now, core, line_addr, bank, d_hit, wb_addr in zip(
        miss_now.tolist(), miss_core.tolist(),
        miss_line_addr.tolist(), bank_list, demand_hit.tolist(),
        wb_dram_addr.tolist(),
    ):
        heap = l1_heaps[core]
        while heap and heap[0] <= now:
            heappop(heap)
        inflight_map = l1_inflight[core]
        entry = inflight_map.get(line_addr)
        if (entry is not None and entry[0] > now
                and l1_kills[core].get(entry[0], -1) <= entry[1]):
            return None  # an L1 merge invalidates the precomputed stream
        now2 = now + l1_noc
        busy = bank_busy[bank]
        start = busy if busy > now2 else now2
        bank_busy[bank] = start + l2_hit
        if d_hit:
            l2_latency = noc_l2_hit + (start - now2)
        else:
            l2_latency = miss_latency(seq, now2, start)
        seq += 1
        if len(heap) >= l1_entries:
            # The natural prune left heap[0] > now, so the stall prune's
            # threshold now + stall *is* heap[0]: replace the minimum in
            # one sift, then clear the rare float ties.
            m = heap[0]
            kills = l1_kills[core]
            completion = m + l1_hit + l2_latency
            if completion > m:
                kills[m] = seq
                heapreplace(heap, completion)
                while heap[0] <= m:
                    kills[heappop(heap)] = seq
            else:  # degenerate all-zero-latency config
                while heap and heap[0] <= m:
                    kills[heappop(heap)] = seq
                heappush(heap, completion)
            l1_stalls += 1
        else:
            completion = now + l1_hit + l2_latency
            heappush(heap, completion)
        inflight_map[line_addr] = (completion, seq)
        if wb_addr >= 0:
            dram_access(now, wb_addr, True)

    hits = int(np.count_nonzero(l2_hit_col))
    l2_stats = CacheStats(
        accesses=total, hits=hits, misses=total - hits,
        evictions=int(np.count_nonzero(l2_victim_line >= 0)),
        writebacks=int(np.count_nonzero(l2_victim_dirty)),
        mshr_merges=l2_merges, mshr_stalls=0,
    )
    return 0, l1_stalls, l2_stats, dram


def _downstream_window(
    config: SimConfig,
    miss_now: "np.ndarray",
    miss_core: "np.ndarray",
    miss_line_addr: "np.ndarray",
    writeback_addr: "np.ndarray",
) -> Tuple[int, int, CacheStats, "DramModel"]:
    """Scalar replay of the ordering-sensitive machinery, misses only.

    This is the hybrid scheme's scalar window: the L1 MSHR files (merge
    windows depend on fill completion times), the banked L2 with its own
    MSHR, and the FR-FCFS DRAM model replay the oracle's arithmetic in the
    oracle's order — but only over the L1 miss stream, which the array
    phases already reduced the trace to.  Inputs are aligned numpy
    columns of that miss stream (``float64`` timestamps, ``int64`` the
    rest); ``writeback_addr[i]`` is the dirty L1 victim of miss ``i``
    (-1 when none).

    The loop bodies deliberately inline the oracle's
    ``SetAssociativeCache.access`` / ``MshrFile`` hot paths (local
    counters, no method calls); the cold paths — L2 miss continuation and
    L2 store-miss fill — live in the closures below.  Equivalence is
    enforced by the batched-vs-scalar property suite.

    Returns ``(l1_mshr_merges, l1_mshr_stalls, l2_stats, dram_model)``.
    """
    if config.l2.line_size >= config.l1.line_size:
        # Optimistic merge-free pass first: it precomputes the whole L2
        # behaviour vectorized and aborts (None) at the first L1 merge.
        fast = _downstream_nomerge(
            config, miss_now, miss_core, miss_line_addr, writeback_addr
        )
        if fast is not None:
            return fast
    l1_cfg = config.l1
    l2_cfg = config.l2
    l1_hit = float(l1_cfg.hit_latency)
    l2_hit = float(l2_cfg.hit_latency)
    noc = config.noc_latency
    l1_line = l1_cfg.line_size
    l2_line = l2_cfg.line_size
    l2_shift = l2_line.bit_length() - 1
    l2_set_mask = l2_cfg.num_sets - 1
    l2_assoc = l2_cfg.assoc
    bank_shift = l2_shift
    bank_mask = l2_cfg.banks - 1
    bank_busy = [0.0] * l2_cfg.banks

    dram = DramModel(
        config.dram, txn_size=l2_line, core_clock_mhz=config.core_clock_mhz
    )
    dram_access = dram.access

    # Inlined SetAssociativeCache (lru, write-back, write-allocate): the
    # per-set dicts map line-number -> [use_stamp, dirty]; stamps come
    # from the same per-cache monotone clock as the oracle's.
    l2_sets: List[dict] = [dict() for _ in range(l2_cfg.num_sets)]
    l2_clock = 0
    l2_accesses = l2_hits = 0
    l2_misses = l2_evictions = l2_writebacks = 0
    l2_merges = 0

    # Inlined MshrFile state: per-core L1 files plus the shared L2 file.
    # Each L1 file is a floats-only heap of outstanding completions plus a
    # dict (line address -> (completion, insert time)) that is *never*
    # pruned.  The per-core clock is strictly monotone, so an entry is
    # naturally expired iff `completion <= now`, and after the prune loop
    # the heap length *is* the live occupancy — the oracle's full test and
    # `min(in_flight.values())` both read straight off the heap.  The one
    # wrinkle is the stall prune, which prunes *ahead* of the clock (to
    # ``now + stall``) and so kills entries that are still live by
    # timestamp: those are recorded in a per-core kills dict (completion
    # value -> kill sequence number), and the merge test checks that no
    # kill of the entry's completion happened after its insertion.  The
    # ordering key is the loop's event counter, not ``now``: sector-split
    # accesses issue several events at the *same* per-core ``now``, so the
    # clock cannot order a kill against an insert, but the global event
    # order (and hence its per-core subsequence) is strict.  Tuples-in-heap
    # and eager dict deletes stay off this per-event path entirely.
    l1_entries = l1_cfg.mshrs
    l1_inflight: List[dict] = [dict() for _ in range(config.num_cores)]
    l1_heaps: List[list] = [[] for _ in range(config.num_cores)]
    l1_kills: List[dict] = [dict() for _ in range(config.num_cores)]
    l2_entries = max(l2_cfg.mshrs, config.num_cores * 8)
    l2_inflight: dict = {}
    l2_heap: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    l1_merges = l1_stalls = 0

    def choose_victim(lines: dict) -> int:
        """Oracle LRU scan: first strictly-smaller use stamp wins."""
        victim_tag = -1
        best = None
        for tag, cand in lines.items():
            stamp = cand[0]
            if best is None or stamp < best:
                best = stamp
                victim_tag = tag
        return victim_tag

    def access_l2_miss(
        now2: float, start: float, line: int, lines: dict, clock: int
    ) -> float:
        """L2 demand-miss continuation of ``MemoryHierarchy._access_l2``.

        The caller already did the bank/clock/hit bookkeeping (the hot
        path, inlined at each call site); this handles victim eviction,
        the L2-MSHR merge-or-allocate, and the DRAM fetch.  The oracle
        discards the L2 MSHR's stall (allocate's return is unused there),
        so the stall only shifts the recorded completion — replicated.
        """
        nonlocal l2_misses, l2_evictions, l2_writebacks, l2_merges
        l2_misses += 1
        victim_dirty = False
        victim_addr = -1
        if len(lines) >= l2_assoc:
            victim_tag = choose_victim(lines)
            victim_dirty = lines.pop(victim_tag)[1]
            l2_evictions += 1
            if victim_dirty:
                l2_writebacks += 1
                victim_addr = victim_tag << l2_shift
        lines[line] = [clock, False]
        line_addr = line << l2_shift
        # L2 MSHR: prune, merge-or-allocate.  Entries enter the dict and
        # the heap together and leave only here, so the heap never holds
        # a stale key — each popped completion deletes its entry.  (The
        # L2's `start` clock is not monotone across banks, so the cheap
        # completion-vs-clock liveness test the L1 file uses is not exact
        # here; this path only runs on L2 demand misses, so the dict
        # bookkeeping is off the hot loop anyway.)
        while l2_heap and l2_heap[0][0] <= start:
            del l2_inflight[heappop(l2_heap)[1]]
        inflight = l2_inflight.get(line_addr)
        if inflight is not None:
            l2_merges += 1
            waited = inflight - start
            service = l2_hit if l2_hit > waited else waited
        else:
            service = l2_hit + dram_access(start + l2_hit, line_addr, False)
            stall = 0.0
            if len(l2_inflight) >= l2_entries:
                # min(in_flight.values()) == the heap top (never stale).
                stall = l2_heap[0][0] - start
                if stall < 0.0:
                    stall = 0.0
                prune_to = start + stall
                while l2_heap and l2_heap[0][0] <= prune_to:
                    del l2_inflight[heappop(l2_heap)[1]]
            completion = start + stall + service
            l2_inflight[line_addr] = completion
            heappush(l2_heap, (completion, line_addr))
        if victim_dirty:
            dram_access(start, victim_addr, True)
        return noc + (start - now2) + service

    def writeback_miss(now: float, line: int, lines: dict, clock: int) -> None:
        """L2 store-miss continuation of ``_writeback_to_l2``: fill the
        victim line dirty (write-allocate, no fetch), evicting if full —
        no NoC/bank/MSHR involvement, as in the oracle's direct
        ``l2.access(chunk, is_store=True)`` call."""
        nonlocal l2_misses, l2_evictions, l2_writebacks
        l2_misses += 1
        if len(lines) >= l2_assoc:
            victim_tag = choose_victim(lines)
            victim_dirty = lines.pop(victim_tag)[1]
            l2_evictions += 1
            if victim_dirty:
                l2_writebacks += 1
                dram_access(now, victim_tag << l2_shift, True)
        lines[line] = [clock, True]

    wb_span = l1_line if l1_line > l2_line else l2_line
    if l2_line >= l1_line:
        # Single-chunk fast loop: an L1 line fits in one L2 access (and a
        # victim writeback is exactly one L2 store), so the per-event L2
        # timestamp (now + L1 hit + NoC), L2 line number and bank are
        # loop-invariant columns — precompute them vectorized and inline
        # the L2 hit paths.
        now2_list = (miss_now + (l1_hit + noc)).tolist()
        l2_line_num = (miss_line_addr >> np.int64(l2_shift)).tolist()
        bank_list = ((miss_line_addr >> np.int64(bank_shift))
                     & np.int64(bank_mask)).tolist()
        noc_l2_hit = noc + l2_hit
        seq = 0
        for now, now2, core, line_addr, line, bank, victim_addr in zip(
            miss_now.tolist(), now2_list, miss_core.tolist(),
            miss_line_addr.tolist(), l2_line_num, bank_list,
            writeback_addr.tolist(),
        ):
            seq += 1
            inflight_map = l1_inflight[core]
            heap = l1_heaps[core]
            while heap and heap[0] <= now:
                heappop(heap)
            entry = inflight_map.get(line_addr)
            if (entry is not None and entry[0] > now
                    and l1_kills[core].get(entry[0], -1) <= entry[1]):
                l1_merges += 1
            else:
                busy = bank_busy[bank]
                start = busy if busy > now2 else now2
                bank_busy[bank] = start + l2_hit
                lines = l2_sets[line & l2_set_mask]
                l2_clock += 1
                l2_accesses += 1
                entry = lines.get(line)
                if entry is not None:
                    l2_hits += 1
                    entry[0] = l2_clock
                    l2_latency = noc_l2_hit + (start - now2)
                else:
                    l2_latency = access_l2_miss(
                        now2, start, line, lines, l2_clock)
                stall = 0.0
                if len(heap) >= l1_entries:
                    # live-entry count == len(heap); min == the heap top.
                    stall = heap[0] - now
                    if stall < 0.0:
                        stall = 0.0
                    prune_to = now + stall
                    kills = l1_kills[core]
                    while heap and heap[0] <= prune_to:
                        kills[heappop(heap)] = seq
                    l1_stalls += 1
                completion = now + stall + l1_hit + l2_latency
                inflight_map[line_addr] = (completion, seq)
                heappush(heap, completion)
            if victim_addr >= 0:
                wb_line = victim_addr >> l2_shift
                lines = l2_sets[wb_line & l2_set_mask]
                l2_clock += 1
                l2_accesses += 1
                entry = lines.get(wb_line)
                if entry is not None:
                    l2_hits += 1
                    entry[0] = l2_clock
                    entry[1] = True
                else:
                    writeback_miss(now, wb_line, lines, l2_clock)
    else:
        # Generic loop: L1 lines wider than L2 lines fetch (and write
        # back) as several L2-line-sized chunks (the paper's 64B-L2 /
        # 128B-L1 points).
        seq = 0
        for now, core, line_addr, victim_addr in zip(
            miss_now.tolist(), miss_core.tolist(),
            miss_line_addr.tolist(), writeback_addr.tolist(),
        ):
            seq += 1
            inflight_map = l1_inflight[core]
            heap = l1_heaps[core]
            while heap and heap[0] <= now:
                heappop(heap)
            entry = inflight_map.get(line_addr)
            if (entry is not None and entry[0] > now
                    and l1_kills[core].get(entry[0], -1) <= entry[1]):
                l1_merges += 1
            else:
                now2 = now + l1_hit + noc
                l2_latency = 0.0
                chunk = line_addr
                chunk_end = line_addr + l1_line
                while chunk < chunk_end:
                    bank = (chunk >> bank_shift) & bank_mask
                    busy = bank_busy[bank]
                    start = busy if busy > now2 else now2
                    bank_busy[bank] = start + l2_hit
                    line = chunk >> l2_shift
                    lines = l2_sets[line & l2_set_mask]
                    l2_clock += 1
                    l2_accesses += 1
                    entry = lines.get(line)
                    if entry is not None:
                        l2_hits += 1
                        entry[0] = l2_clock
                        latency = noc + (start - now2) + l2_hit
                    else:
                        latency = access_l2_miss(
                            now2, start, line, lines, l2_clock)
                    if latency > l2_latency:
                        l2_latency = latency
                    chunk += l2_line
                stall = 0.0
                if len(heap) >= l1_entries:
                    # live-entry count == len(heap); min == the heap top.
                    stall = heap[0] - now
                    if stall < 0.0:
                        stall = 0.0
                    prune_to = now + stall
                    kills = l1_kills[core]
                    while heap and heap[0] <= prune_to:
                        kills[heappop(heap)] = seq
                    l1_stalls += 1
                completion = now + stall + l1_hit + l2_latency
                inflight_map[line_addr] = (completion, seq)
                heappush(heap, completion)
            if victim_addr >= 0:
                chunk = victim_addr
                chunk_end = victim_addr + wb_span
                while chunk < chunk_end:
                    wb_line = chunk >> l2_shift
                    lines = l2_sets[wb_line & l2_set_mask]
                    l2_clock += 1
                    l2_accesses += 1
                    entry = lines.get(wb_line)
                    if entry is not None:
                        l2_hits += 1
                        entry[0] = l2_clock
                        entry[1] = True
                    else:
                        writeback_miss(now, wb_line, lines, l2_clock)
                    chunk += l2_line

    l2_stats = CacheStats(
        accesses=l2_accesses, hits=l2_hits, misses=l2_misses,
        evictions=l2_evictions, writebacks=l2_writebacks,
        mshr_merges=l2_merges, mshr_stalls=0,
    )
    return l1_merges, l1_stalls, l2_stats, dram


def simulate_flat_arrays(
    arrays: FlatTraceArrays, config: SimConfig
) -> SimResult:
    """Array-phase simulation of one decoded trace under one config.

    Raises :class:`UnsupportedConfigError` when the config or trace needs
    the scalar oracle (see :func:`memsim_fallback_reasons`).
    """
    if np is None:  # pragma: no cover - depends on the environment
        raise RuntimeError("simulate_flat_arrays requires numpy")
    reasons = arrays.fallback_reasons(config)
    if reasons:
        raise UnsupportedConfigError(reasons)
    line, store, now, core = arrays.l1_stream(config)
    num_sets = config.l1.num_sets
    unit = core * num_sets + (line & (num_sets - 1))
    hit, victim_line, victim_dirty = _lru_rounds(
        unit, line, store, config.l1.assoc
    )
    accesses = len(line)
    hits = int(np.count_nonzero(hit))
    evictions = int(np.count_nonzero(victim_line >= 0))
    writebacks = int(np.count_nonzero(victim_dirty))

    miss = ~hit
    shift = config.l1.line_size.bit_length() - 1
    miss_line_addr = line[miss] << shift
    wb_addr = np.where(victim_dirty[miss], victim_line[miss] << shift, -1)
    l1_merges, l1_stalls, l2_stats, dram = _downstream_window(
        config, now[miss], core[miss], miss_line_addr, wb_addr
    )
    l1_stats = CacheStats(
        accesses=accesses, hits=hits, misses=accesses - hits,
        evictions=evictions, writebacks=writebacks,
        mshr_merges=l1_merges, mshr_stalls=l1_stalls,
    )
    return SimResult(
        l1=l1_stats,
        l2=l2_stats,
        dram=dram.stats,
        requests_issued=arrays.requests_issued,
        cycles=arrays.cycles,
    )


def simulate_flat_numpy(
    per_core_traces: Sequence[Sequence[AccessTuple]], config: SimConfig
) -> SimResult:
    """Decode + simulate one flat trace with the array backend.

    Raises :class:`UnsupportedConfigError` for out-of-matrix configs —
    callers that want silent degradation go through
    :func:`repro.memsim.simulator.simulate_flat_trace` with
    ``backend="numpy"``, which catches it and replays the oracle.
    """
    return simulate_flat_arrays(FlatTraceArrays(per_core_traces), config)


def simulate_flat_multi(
    per_core_traces: Sequence[Sequence[AccessTuple]],
    configs: Sequence[SimConfig],
    backend: Optional[str] = None,
) -> List[SimResult]:
    """One-pass multi-config sweep of one flat trace.

    With the numpy backend the trace is decoded and order-resolved once
    (:class:`FlatTraceArrays`); every configuration then reuses the shared
    tag/set source arrays, so N configs cost one trace pass plus N array
    phases.  Configurations outside the supported matrix transparently
    fall back to the scalar oracle for that config only; with the python
    backend every config replays the oracle (the reference behaviour).
    """
    from repro.core.backend import resolve_backend
    from repro.memsim.simulator import simulate_flat_trace

    resolved = resolve_backend(backend)
    if resolved != "numpy" or np is None:
        return [
            simulate_flat_trace(per_core_traces, config)
            for config in configs
        ]
    arrays = FlatTraceArrays(per_core_traces)
    results: List[SimResult] = []
    for config in configs:
        try:
            results.append(simulate_flat_arrays(arrays, config))
        except UnsupportedConfigError:
            results.append(simulate_flat_trace(per_core_traces, config))
    return results
