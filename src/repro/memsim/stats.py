"""Statistics containers for the memory-system simulator.

Every metric the paper's evaluation reports lives here: L1/L2 miss rates
(Figures 6a-6e), prefetcher usefulness (6c/6d), and the DRAM metrics of
Figure 7 — row buffer locality (RBL), average memory-controller queue length
and average read/write latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class CacheStats:
    """Demand/prefetch access counters of one cache (or a sum of caches)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_issued: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0       # demand hits on prefetched lines
    mshr_merges: int = 0
    mshr_stalls: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched lines that served a demand hit."""
        return (
            self.prefetch_hits / self.prefetch_fills if self.prefetch_fills else 0.0
        )

    _FIELDS = (
        "accesses", "hits", "misses", "evictions", "writebacks",
        "prefetch_issued", "prefetch_fills", "prefetch_hits",
        "mshr_merges", "mshr_stalls",
    )

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters (e.g. summing per-core L1s)."""
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def copy(self) -> "CacheStats":
        return CacheStats(**{name: getattr(self, name) for name in self._FIELDS})

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return CacheStats(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in self._FIELDS
        })

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in (
            "accesses", "hits", "misses", "evictions", "writebacks",
            "prefetch_issued", "prefetch_fills", "prefetch_hits",
            "mshr_merges", "mshr_stalls",
        )}


@dataclass
class DramStats:
    """Figure 7 metrics: RBL, queue length, read/write latency."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empties: int = 0
    row_conflicts: int = 0
    read_latency_sum: float = 0.0
    write_latency_sum: float = 0.0
    queue_len_sum: float = 0.0
    queue_samples: int = 0

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def row_buffer_locality(self) -> float:
        """RBL: fraction of requests served from an open row."""
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def avg_queue_length(self) -> float:
        return self.queue_len_sum / self.queue_samples if self.queue_samples else 0.0

    @property
    def avg_read_latency(self) -> float:
        return self.read_latency_sum / self.reads if self.reads else 0.0

    @property
    def avg_write_latency(self) -> float:
        return self.write_latency_sum / self.writes if self.writes else 0.0

    @property
    def avg_rw_latency(self) -> float:
        total = self.reads + self.writes
        if not total:
            return 0.0
        return (self.read_latency_sum + self.write_latency_sum) / total

    def achieved_bandwidth(self, txn_bytes: int, elapsed_cycles: float) -> float:
        """Mean delivered bytes per core cycle over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.requests * txn_bytes / elapsed_cycles

    _FIELDS = (
        "reads", "writes", "row_hits", "row_empties", "row_conflicts",
        "read_latency_sum", "write_latency_sum", "queue_len_sum",
        "queue_samples",
    )

    def copy(self) -> "DramStats":
        return DramStats(**{name: getattr(self, name) for name in self._FIELDS})

    def diff(self, earlier: "DramStats") -> "DramStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return DramStats(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in self._FIELDS
        })

    def to_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_empties": self.row_empties,
            "row_conflicts": self.row_conflicts,
            "row_buffer_locality": self.row_buffer_locality,
            "avg_queue_length": self.avg_queue_length,
            "avg_read_latency": self.avg_read_latency,
            "avg_write_latency": self.avg_write_latency,
        }


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    dram: DramStats = field(default_factory=DramStats)
    texture: CacheStats = field(default_factory=CacheStats)
    constant: CacheStats = field(default_factory=CacheStats)
    shared_accesses: int = 0
    requests_issued: int = 0
    cycles: float = 0.0
    measured_p_self: float = 0.0
    barriers_crossed: int = 0
    per_core_l1: List[CacheStats] = field(default_factory=list)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate

    def metric(self, name: str) -> float:
        """Look up a metric by the names the validation harness sweeps."""
        table = {
            "l1_miss_rate": self.l1.miss_rate,
            "l2_miss_rate": self.l2.miss_rate,
            "texture_miss_rate": self.texture.miss_rate,
            "constant_miss_rate": self.constant.miss_rate,
            "l1_prefetch_accuracy": self.l1.prefetch_accuracy,
            "l2_prefetch_accuracy": self.l2.prefetch_accuracy,
            "dram_rbl": self.dram.row_buffer_locality,
            "dram_queue_length": self.dram.avg_queue_length,
            "dram_rw_latency": self.dram.avg_rw_latency,
            "dram_read_latency": self.dram.avg_read_latency,
            "dram_write_latency": self.dram.avg_write_latency,
            "cycles": self.cycles,
        }
        try:
            return table[name]
        except KeyError:
            raise ValueError(
                f"unknown metric {name!r}; known: {sorted(table)}"
            ) from None

    def to_dict(self) -> dict:
        return {
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "dram": self.dram.to_dict(),
            "requests_issued": self.requests_issued,
            "cycles": self.cycles,
            "measured_p_self": self.measured_p_self,
        }
