"""Set-associative cache model (the CMP$im-like substrate).

Write-back, write-allocate, true-LRU set-associative cache.  The model is
trace-driven: :meth:`SetAssociativeCache.access` performs a demand lookup and,
on a miss, fills the line and reports the evicted victim so the hierarchy can
issue writebacks.  Prefetch fills are tagged so demand hits on them can be
credited to the prefetcher (Figures 6c/6d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memsim.config import CacheConfig
from repro.memsim.stats import CacheStats


@dataclass(frozen=True)
class Victim:
    """An evicted line: its base address and whether it needs writeback."""

    address: int
    dirty: bool


class SetAssociativeCache:
    """One cache array.

    Lines are stored per set as
    ``{tag: [use_stamp, dirty, prefetched, insert_stamp]}``.  A
    monotonically increasing stamp implements true LRU; FIFO evicts by
    insertion stamp; "random" uses a deterministic xorshift over the clock.
    Write policy: under "write-through" lines are never dirtied (the
    hierarchy forwards store traffic downstream); with
    ``write_allocate=False`` a store miss does not fill the line.
    """

    __slots__ = (
        "config", "name", "stats", "_sets", "_line_shift", "_set_mask",
        "_clock", "_writeback", "_rng_state",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets = [dict() for _ in range(config.num_sets)]
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._clock = 0
        self._writeback = config.write_policy == "write-back"
        self._rng_state = (hash(name) & 0xFFFF_FFFF) | 1

    # -- address helpers -----------------------------------------------------

    def line_address(self, address: int) -> int:
        """Base address of the line containing ``address``."""
        return (address >> self._line_shift) << self._line_shift

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line & self._set_mask, line

    # -- operations ----------------------------------------------------------

    def access(self, address: int, is_store: bool = False) -> Tuple[bool, Optional[Victim]]:
        """Demand access: returns ``(hit, victim)``.

        On a miss the line is filled (write-allocate); ``victim`` is the
        evicted line if the set was full, else None.
        """
        index, tag = self._index_tag(address)
        lines = self._sets[index]
        self._clock += 1
        stats = self.stats
        stats.accesses += 1
        entry = lines.get(tag)
        if entry is not None:
            stats.hits += 1
            entry[0] = self._clock
            if is_store and self._writeback:
                entry[1] = True
            if entry[2]:
                stats.prefetch_hits += 1
                entry[2] = False
            return True, None
        stats.misses += 1
        if is_store and not self.config.write_allocate:
            return False, None  # store miss bypasses the cache
        victim = self._fill(
            index, tag, dirty=is_store and self._writeback, prefetched=False
        )
        return False, victim

    def prefetch_fill(self, address: int) -> Optional[Victim]:
        """Insert a prefetched line; no-op if already present."""
        index, tag = self._index_tag(address)
        lines = self._sets[index]
        if tag in lines:
            return None
        self._clock += 1
        self.stats.prefetch_fills += 1
        return self._fill(index, tag, dirty=False, prefetched=True)

    def _fill(self, index: int, tag: int, dirty: bool, prefetched: bool) -> Optional[Victim]:
        lines = self._sets[index]
        victim = None
        if len(lines) >= self.config.assoc:
            victim_tag = self._choose_victim(lines)
            _, was_dirty, _, _ = lines.pop(victim_tag)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
            victim = Victim(
                address=victim_tag << self._line_shift, dirty=was_dirty
            )
        lines[tag] = [self._clock, dirty, prefetched, self._clock]
        return victim

    def _choose_victim(self, lines: dict) -> int:
        policy = self.config.replacement
        if policy == "lru":
            best_tag = -1
            best = float("inf")
            for tag, entry in lines.items():
                stamp = entry[0]
                if stamp < best:
                    best = stamp
                    best_tag = tag
            return best_tag
        if policy == "fifo":
            return min(lines, key=lambda t: lines[t][3])
        # Deterministic xorshift random.
        x = self._rng_state
        x ^= (x << 13) & 0xFFFF_FFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFF_FFFF
        self._rng_state = x
        tags = list(lines)
        return tags[x % len(tags)]

    def contains(self, address: int) -> bool:
        """Presence probe without touching LRU state or stats."""
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    def invalidate(self, address: int) -> Optional[Victim]:
        """Remove a line if present, returning it (for inclusion policies)."""
        index, tag = self._index_tag(address)
        entry = self._sets[index].pop(tag, None)
        if entry is None:
            return None
        return Victim(address=tag << self._line_shift, dirty=entry[1])

    @property
    def occupied_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush_dirty(self) -> int:
        """Drop all lines; returns how many were dirty (end-of-run drain)."""
        dirty = 0
        for lines in self._sets:
            dirty += sum(1 for entry in lines.values() if entry[1])
            lines.clear()
        return dirty
