"""Kernel-model framework for the synthetic GPGPU workload suite.

A :class:`KernelModel` stands in for a real CUDA/OpenCL kernel: it fixes the
launch geometry (grid and block dimensions, kept verbatim by G-MAP proxies)
and emits each thread's dynamic memory access stream.  The profiler, executor
and validation harness all consume kernels only through this interface, so
the suite in :mod:`repro.workloads.suite` is freely extensible.

Most of the paper's 18 benchmarks are *regular*: every static memory
instruction walks an affine function of the thread index and the loop
iteration (section 4.2/4.3).  :class:`RegularKernel` captures that family
declaratively via :class:`StridedInstr`; irregular kernels (hotspot, BFS,
AES) subclass :class:`KernelModel` directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.gpu import memspace
from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import AccessTuple, pack, sync_marker

#: Alignment of array allocations, matching a GDDR row-ish granularity so
#: distinct arrays never share cache lines.
_REGION_ALIGN = 4096


class Layout:
    """Allocates disjoint, aligned base addresses for a kernel's arrays.

    Real kernels receive device pointers from ``cudaMalloc`` (and
    ``__shared__`` / ``__constant__`` / texture bindings); models receive
    them from here.  Allocation order is deterministic, so a kernel model
    always produces the same addresses.  ``space`` places the array in one
    of the GPU memory-space windows (see :mod:`repro.gpu.memspace`).
    """

    def __init__(self, start: int = memspace.GLOBAL_BASE) -> None:
        self._start = start
        self._next: Dict[memspace.MemorySpace, int] = {
            memspace.MemorySpace.GLOBAL: start,
            memspace.MemorySpace.SHARED: memspace.SHARED_BASE,
            memspace.MemorySpace.TEXTURE: memspace.TEXTURE_BASE,
            memspace.MemorySpace.CONSTANT: memspace.CONSTANT_BASE,
        }
        self._regions: Dict[str, Tuple[int, int]] = {}

    def alloc(self, name: str, size_bytes: int, space: str = "global") -> int:
        """Reserve ``size_bytes`` for array ``name``; returns its base."""
        if name in self._regions:
            raise ValueError(f"array {name!r} allocated twice")
        if size_bytes <= 0:
            raise ValueError(f"array {name!r} size must be positive")
        mem_space = memspace.MemorySpace(space)
        base = self._next[mem_space]
        padded = -(-size_bytes // _REGION_ALIGN) * _REGION_ALIGN
        self._next[mem_space] = base + padded
        self._regions[name] = (base, size_bytes)
        return base

    def base(self, name: str) -> int:
        return self._regions[name][0]

    def region(self, name: str) -> Tuple[int, int]:
        """``(base, size)`` of a named array."""
        return self._regions[name]

    @property
    def footprint(self) -> int:
        """Global-space bytes spanned (including padding)."""
        return self._next[memspace.MemorySpace.GLOBAL] - self._start


class KernelModel(ABC):
    """A synthetic GPU kernel: launch geometry + per-thread access streams."""

    #: Short benchmark name (matches the paper's naming, e.g. "kmeans").
    name: str = "kernel"
    #: Originating suite: "rodinia", "sdk" or "ispass".
    suite: str = "synthetic"

    def __init__(self, launch: LaunchConfig) -> None:
        self.launch = launch

    @abstractmethod
    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        """Yield the dynamic memory accesses of global thread ``tid``.

        The order of the yielded tuples is the thread's dynamic memory
        execution order — exactly what a π profile summarises.
        """

    def trace_thread(self, tid: int) -> List[AccessTuple]:
        """Materialised per-thread trace."""
        return list(self.thread_program(tid))

    def static_pcs(self) -> List[int]:
        """Distinct static instruction PCs, discovered from thread 0.

        Subclasses with divergent paths whose extra PCs never execute on
        thread 0 should override this.
        """
        seen = dict.fromkeys(pc for pc, *_ in self.thread_program(0))
        return list(seen)

    @property
    def total_threads(self) -> int:
        return self.launch.total_threads

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"grid={self.launch.grid_dim} block={self.launch.block_dim}>"
        )


@dataclass(frozen=True)
class StridedInstr:
    """One affine static memory instruction of a :class:`RegularKernel`.

    Per iteration ``j`` of the kernel's main loop, thread ``tid`` accesses::

        array_base + tid*inter_stride + (j % reuse_period)*intra_stride + phase

    ``reuse_period`` controls temporal locality: the address pattern wraps
    every ``reuse_period`` iterations, so a small period yields the paper's
    "high reuse" class and ``reuse_period >= iters`` yields "low".
    ``every`` gates execution to iterations where ``j % every == 0``, which
    sets the instruction's relative dynamic frequency (Table 1's "%Mem Freq").
    """

    pc: int
    array: str
    inter_stride: int
    intra_stride: int = 0
    reuse_period: int = 1 << 30
    every: int = 1
    phase: int = 0
    size: int = 4
    is_store: bool = False

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.reuse_period < 1:
            raise ValueError(f"reuse_period must be >= 1, got {self.reuse_period}")

    def address(self, base: int, tid: int, iteration: int) -> int:
        return (
            base
            + tid * self.inter_stride
            + (iteration % self.reuse_period) * self.intra_stride
            + self.phase
        )


class RegularKernel(KernelModel):
    """Declarative affine kernel: a loop over :class:`StridedInstr` entries.

    ``divergent_fraction`` threads (taken as ``tid % divergent_modulo == 0``)
    additionally execute ``divergent_instrs``, creating a second dominant
    dynamic memory execution profile as in paper Figure 3b.
    """

    def __init__(
        self,
        launch: LaunchConfig,
        layout: Layout,
        instrs: Sequence[StridedInstr],
        iters: int,
        divergent_instrs: Sequence[StridedInstr] = (),
        divergent_modulo: int = 0,
        sync_every: int = 0,
    ) -> None:
        super().__init__(launch)
        if iters < 1:
            raise ValueError(f"iters must be >= 1, got {iters}")
        if not instrs:
            raise ValueError("a RegularKernel needs at least one instruction")
        if divergent_instrs and divergent_modulo < 2:
            raise ValueError("divergent_modulo must be >= 2 when divergent_instrs set")
        if sync_every < 0:
            raise ValueError(f"sync_every must be >= 0, got {sync_every}")
        self.layout = layout
        self.instrs = list(instrs)
        self.divergent_instrs = list(divergent_instrs)
        self.divergent_modulo = divergent_modulo
        self.iters = iters
        self.sync_every = sync_every
        self._bases = {i.array: layout.base(i.array) for i in self.instrs}
        self._bases.update(
            {i.array: layout.base(i.array) for i in self.divergent_instrs}
        )

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        bases = self._bases
        divergent = bool(
            self.divergent_instrs
            and self.divergent_modulo
            and tid % self.divergent_modulo == 0
        )
        for j in range(self.iters):
            for instr in self.instrs:
                if j % instr.every == 0:
                    yield pack(
                        instr.pc,
                        instr.address(bases[instr.array], tid, j),
                        instr.size,
                        instr.is_store,
                    )
            if divergent:
                for instr in self.divergent_instrs:
                    if j % instr.every == 0:
                        yield pack(
                            instr.pc,
                            instr.address(bases[instr.array], tid, j),
                            instr.size,
                            instr.is_store,
                        )
            if self.sync_every and (j + 1) % self.sync_every == 0:
                yield sync_marker()  # __syncthreads() at the iteration end

    def static_pcs(self) -> List[int]:
        pcs = [i.pc for i in self.instrs] + [i.pc for i in self.divergent_instrs]
        return list(dict.fromkeys(pcs))


@dataclass
class WorkloadScale:
    """Size knobs for a workload instance.

    ``blocks`` and ``iters_factor`` multiply the model's native geometry and
    loop count.  The named presets keep test suites fast while letting the
    benchmark harness approach paper-scale streams.
    """

    blocks: int
    iters_factor: float = 1.0

    PRESETS = ("tiny", "small", "default", "large")

    @classmethod
    def preset(cls, name: str) -> "WorkloadScale":
        table = {
            "tiny": cls(blocks=2, iters_factor=0.25),
            "small": cls(blocks=4, iters_factor=0.5),
            "default": cls(blocks=8, iters_factor=1.0),
            "large": cls(blocks=16, iters_factor=2.0),
        }
        try:
            return table[name]
        except KeyError:
            raise ValueError(
                f"unknown scale {name!r}; expected one of {cls.PRESETS}"
            ) from None

    def iters(self, native: int) -> int:
        return max(1, int(native * self.iters_factor))
