"""Synthetic models of the Rodinia benchmarks used in the paper.

Each factory returns a :class:`~repro.workloads.base.KernelModel` whose
per-thread access stream reproduces the benchmark's memory structure as
documented in the paper's Table 1 (dominant PCs, relative frequency,
inter-warp stride after coalescing, intra-warp stride, reuse class) and in
the evaluation text (hotspot irregular, nw prefetch-friendly...).

Thread-level strides translate to Table 1's coalesced inter-*warp* strides by
a factor of 32 (warp size): a 4-byte per-thread stride makes each warp cover
one 128-byte segment, so consecutive warps sit 128 bytes apart.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import AccessTuple, pack
from repro.workloads.base import (
    KernelModel,
    Layout,
    RegularKernel,
    StridedInstr,
    WorkloadScale,
)
from repro.workloads.patterns import hash_scatter, stencil_offsets_2d, zipf_index

_BLOCK = 256  # threads per block across the suite (8 warps)


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


def make_heartwall(scale: WorkloadScale) -> KernelModel:
    """Heartwall: template matching, *high* reuse.

    Table 1: PC 0x900 at 81% (inter-warp 128, intra 64), 0x4a0 at 5%
    (intra -128), 0x4a8 at 3.8% (intra 1024).  The small template window is
    re-walked every few iterations, producing the high temporal reuse that
    lets G-MAP clone it at >97% accuracy (section 5).
    """
    launch = _launch(scale)
    iters = scale.iters(64)
    layout = Layout()
    layout.alloc("image", launch.total_threads * 4 + iters * 64 + 4096)
    layout.alloc("template", launch.total_threads * 4 + 8 * 128 + 4096)
    layout.alloc("coeff", launch.total_threads * 4 + 8 * 1024 + 4096)
    instrs = [
        StridedInstr(pc=0x900, array="image", inter_stride=4,
                     intra_stride=64, reuse_period=4),
        StridedInstr(pc=0x4A0, array="template", inter_stride=4,
                     intra_stride=-128, phase=7 * 128, reuse_period=8, every=16),
        StridedInstr(pc=0x4A8, array="coeff", inter_stride=4,
                     intra_stride=1024, reuse_period=8, every=21),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "heartwall", "rodinia"
    return kernel


def make_backprop(scale: WorkloadScale) -> KernelModel:
    """Backprop (BP): layer weight updates, *medium* reuse.

    Table 1: PCs 0x3F8/0x408/0x478 each at 19.4%, inter-warp 128, intra-warp
    strides +128/-128/+128.  Five equally-hot instructions give each ~20% of
    dynamic memory traffic; the weight array wraps mid-way for medium reuse.
    """
    launch = _launch(scale)
    iters = scale.iters(48)
    layout = Layout()
    span = launch.total_threads * 4 + iters * 128 + 4096
    for array in ("in_units", "weights", "deltas", "hidden", "partial"):
        layout.alloc(array, span)
    # The three hot layer arrays stream monotonically; the per-layer hidden
    # activations and partial sums cycle over a short window, putting ~40%
    # of traffic on re-touched lines — the medium reuse class, realised
    # through short (clonable) reuse distances rather than long-period wraps.
    instrs = [
        StridedInstr(pc=0x3F8, array="in_units", inter_stride=4,
                     intra_stride=128),
        StridedInstr(pc=0x408, array="weights", inter_stride=4,
                     intra_stride=-128, phase=(iters + 1) * 128),
        StridedInstr(pc=0x478, array="deltas", inter_stride=4,
                     intra_stride=128),
        StridedInstr(pc=0x480, array="hidden", inter_stride=4,
                     intra_stride=128, reuse_period=4),
        StridedInstr(pc=0x488, array="partial", inter_stride=4,
                     intra_stride=128, reuse_period=4, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "backprop", "rodinia"
    return kernel


def make_kmeans(scale: WorkloadScale) -> KernelModel:
    """Kmeans: one dominant load (Table 1: PC 0xe8 at ~100%), *high* reuse.

    Each thread owns one 34-feature point (34 * 4B = 136B per thread, hence
    the 4352-byte inter-warp stride of Table 1) and re-walks it once per
    cluster, so after the first sweep every access is a reuse.
    """
    launch = _launch(scale)
    features = 34
    clusters = max(2, scale.iters(6))
    layout = Layout()
    layout.alloc("points", launch.total_threads * features * 4 + 4096)
    layout.alloc("centers", clusters * features * 4 + 4096)
    instrs = [
        StridedInstr(pc=0xE8, array="points", inter_stride=features * 4,
                     intra_stride=4, reuse_period=features),
        StridedInstr(pc=0xF0, array="centers", inter_stride=0,
                     intra_stride=4, reuse_period=features, every=features),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=features * clusters)
    kernel.name, kernel.suite = "kmeans", "rodinia"
    return kernel


def make_srad(scale: WorkloadScale) -> KernelModel:
    """SRAD: column-walk diffusion over a large 2D image, *low* reuse.

    Table 1: PCs 0x250/0x230/0x350 each ~31%, inter-warp stride 16384
    (512 bytes per thread — one image row of 128 floats), intra-warp stride
    -8192.  The footprint greatly exceeds L1/L2, so reuse is low.
    """
    launch = _launch(scale)
    iters = scale.iters(48)
    row_bytes = 512
    layout = Layout()
    # Lanes sit 4 cache lines apart (512B); the per-iteration jump of 65
    # lines (-8320B, the paper's -8192 rounded to the next line) is coprime
    # with that spacing, so successive warp windows interleave without
    # re-touching a single line — the low reuse class of Table 1.
    jump = 8320
    span = launch.total_threads * row_bytes + (iters + 2) * jump + 8192
    for array in ("image_n", "image_s", "image_e", "deriv"):
        layout.alloc(array, span)
    phase = (iters + 1) * jump
    instrs = [
        StridedInstr(pc=0x250, array="image_n", inter_stride=row_bytes,
                     intra_stride=-jump, phase=phase),
        StridedInstr(pc=0x230, array="image_s", inter_stride=row_bytes,
                     intra_stride=-jump, phase=phase),
        StridedInstr(pc=0x350, array="image_e", inter_stride=row_bytes,
                     intra_stride=-jump, phase=phase),
        StridedInstr(pc=0x360, array="deriv", inter_stride=row_bytes,
                     intra_stride=jump, every=5, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "srad", "rodinia"
    return kernel


class HotspotKernel(KernelModel):
    """Hotspot: thermal stencil with *non-dominant* access patterns.

    The paper singles hotspot out as its worst case: "it does not have
    significantly dominant intra-/inter-thread stride patterns or reuse
    locality" and is insensitive to prefetching.  The model mixes a weak
    stencil with hash-scattered ambient reads over a large footprint so no
    stride or reuse bucket dominates.
    """

    name = "hotspot"
    suite = "rodinia"

    def __init__(self, launch: LaunchConfig, iters: int) -> None:
        super().__init__(launch)
        self.iters = iters
        layout = Layout()
        self.row_elems = 512
        grid_bytes = (launch.total_threads + 2 * self.row_elems) * 4 * 8
        self.temp_base = layout.alloc("temp", grid_bytes)
        self.power_base = layout.alloc("power", grid_bytes)
        self.ambient_base = layout.alloc("ambient", 1 << 22)
        self.layout = layout
        self._stencil = stencil_offsets_2d(1, self.row_elems)

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        row_bytes = self.row_elems * 4
        centre = self.temp_base + row_bytes + tid * 4 + (tid % 7) * 52
        for j in range(self.iters):
            wobble = ((tid * 2654435761 + j * 40503) >> 3) % 5
            offset = self._stencil[(j + wobble) % len(self._stencil)]
            yield pack(0x610, centre + offset * 4 + j * (row_bytes // 2))
            yield pack(0x618, self.power_base + (tid * 4 + j * 396) % (1 << 21))
            if (tid + j) % 3 == 0:
                yield pack(
                    0x620,
                    hash_scatter(self.ambient_base, tid * 131071 + j, 1 << 22),
                )
            if j % 4 == 0:
                yield pack(0x628, centre + j * row_bytes, 4, True)


def make_hotspot(scale: WorkloadScale) -> KernelModel:
    """Factory for the hotspot kernel model (see class docstring)."""
    return HotspotKernel(_launch(scale), iters=scale.iters(48))


def make_nw(scale: WorkloadScale) -> KernelModel:
    """Needleman-Wunsch: diagonal wavefront, long sequential runs.

    The evaluation notes nw *benefits from prefetching*: its score-matrix
    walk is unit-stride per thread with a short reuse window, an ideal
    stride-prefetcher target.
    """
    launch = _launch(scale)
    iters = scale.iters(96)
    layout = Layout()
    layout.alloc("score", launch.total_threads * 4 + iters * 128 + 4096)
    layout.alloc("ref", launch.total_threads * 4 + iters * 128 + 4096)
    instrs = [
        StridedInstr(pc=0x150, array="score", inter_stride=4, intra_stride=128),
        StridedInstr(pc=0x158, array="ref", inter_stride=4, intra_stride=128),
        StridedInstr(pc=0x160, array="score", inter_stride=4,
                     intra_stride=128, phase=64, every=2, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "nw", "rodinia"
    return kernel


class LudKernel(KernelModel):
    """LU decomposition (Table 1 "LUL"): triangular walk, *low* reuse.

    Table 1 shows weakly dominant strides (26%): each outer step moves every
    thread to a different (shrinking) row of the matrix, so the stride
    between successive accesses keeps changing and lines are rarely
    re-touched.  PCs 0x1c85/0x1ca8/0x1cc8 each carry a share of traffic next
    to a streaming pivot-row instruction.
    """

    name = "lud"
    suite = "rodinia"

    def __init__(self, launch: LaunchConfig, iters: int) -> None:
        super().__init__(launch)
        self.iters = iters
        layout = Layout()
        self.dim = 256  # leading dimension in elements (1KB rows, 8 lines)
        self.rows = launch.total_threads * (iters + 1) + 8
        self.mat_base = layout.alloc("matrix", self.rows * self.dim * 4 + 4096)
        self.pivot_base = layout.alloc("pivot", self.rows * self.dim * 4 + 4096)
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        dim = self.dim
        total = self.launch.total_threads
        row_bytes = dim * 4
        third = dim // 3
        for j in range(self.iters):
            # Each outer step works on a fresh slab of rows, and each static
            # instruction owns a disjoint third of its row: low reuse.
            row_base = self.mat_base + (j * total + tid) * row_bytes
            width = dim - (j % (dim // 2))  # shrinking triangular width
            yield pack(0x1C85, row_base + ((j * 3) % third) * 4)
            yield pack(0x1CA8, row_base + (third + (j * 11) % third) * 4)
            yield pack(0x1CC8, row_base
                       + (2 * third + (width - 1 - j) % third) * 4)
            pivot_base = self.pivot_base + (j * total + tid) * row_bytes
            for k in range(3):  # pivot row streams ahead of the triangle
                yield pack(
                    0x1D00, pivot_base + ((k * 83 + j * 3) % dim) * 4,
                )


def make_lud(scale: WorkloadScale) -> KernelModel:
    """Factory for the lud kernel model (see class docstring)."""
    return LudKernel(_launch(scale), iters=scale.iters(48))


class BfsKernel(KernelModel):
    """BFS: CSR neighbour-list walks, irregular and divergent.

    Frontier reads are unit-stride.  Each expanding thread walks a short
    *sequential* run of its vertex's CSR edge list (row starts are
    Zipf-skewed toward hot vertices) and probes the visited bitmap at the
    hot-skewed neighbour ids.  Only 3 of 4 threads expand a node each level,
    giving a second dominant π profile (paper Figure 3b).
    """

    name = "bfs"
    suite = "rodinia"

    def __init__(self, launch: LaunchConfig, iters: int) -> None:
        super().__init__(launch)
        self.iters = iters
        layout = Layout()
        self.frontier_base = layout.alloc("frontier", launch.total_threads * 4 + 4096)
        self.nodes = 1 << 12
        self.degree = 8  # edges read per expansion
        self.edges_base = layout.alloc("edges", self.nodes * self.degree * 8 + 4096)
        self.visited_base = layout.alloc("visited", self.nodes * 4)
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        for j in range(self.iters):
            yield pack(0x710, self.frontier_base + tid * 4)
            if tid % 4 != 0:  # only expanding threads walk neighbours
                v = zipf_index(tid * 7919 + j * 104729, self.nodes)
                row = self.edges_base + v * self.degree * 8
                for e in range(self.degree):
                    yield pack(0x718, row + e * 8)
                neighbour = zipf_index(v * 31 + j, self.nodes)
                yield pack(0x720, self.visited_base + neighbour * 4)
                if j % 2 == 0:
                    yield pack(0x728, self.visited_base + neighbour * 4, 4, True)


def make_bfs(scale: WorkloadScale) -> KernelModel:
    """Factory for the bfs kernel model (see class docstring)."""
    return BfsKernel(_launch(scale), iters=scale.iters(32))


def make_pathfinder(scale: WorkloadScale) -> KernelModel:
    """Pathfinder: row-by-row dynamic programming, *medium* reuse.

    Each thread reads its three upper neighbours (re-touching the previous
    row, hence medium reuse) and writes its own cell.
    """
    launch = _launch(scale)
    iters = scale.iters(64)
    layout = Layout()
    row_bytes = launch.total_threads * 4 + 4096
    layout.alloc("wall", row_bytes * (iters + 2))
    layout.alloc("result", row_bytes * (iters + 2))
    instrs = [
        StridedInstr(pc=0x310, array="wall", inter_stride=4,
                     intra_stride=row_bytes, reuse_period=max(2, iters // 3)),
        StridedInstr(pc=0x318, array="wall", inter_stride=4, phase=-4,
                     intra_stride=row_bytes, reuse_period=max(2, iters // 3)),
        StridedInstr(pc=0x320, array="wall", inter_stride=4, phase=4,
                     intra_stride=row_bytes, reuse_period=max(2, iters // 3)),
        StridedInstr(pc=0x328, array="result", inter_stride=4,
                     intra_stride=row_bytes, is_store=True),
    ]
    # phase=-4 on thread 0 would go below the array base; shift all bases up.
    for i, instr in enumerate(instrs):
        instrs[i] = StridedInstr(
            pc=instr.pc, array=instr.array, inter_stride=instr.inter_stride,
            intra_stride=instr.intra_stride, reuse_period=instr.reuse_period,
            every=instr.every, phase=instr.phase + 64, size=instr.size,
            is_store=instr.is_store,
        )
    # The real pathfinder kernel barriers after every DP row (__syncthreads).
    kernel = RegularKernel(launch, layout, instrs, iters=iters, sync_every=1)
    kernel.name, kernel.suite = "pathfinder", "rodinia"
    return kernel


def make_streamcluster(scale: WorkloadScale) -> KernelModel:
    """Streamcluster: streaming points vs a small hot centre table.

    Point reads stream with no reuse; centre reads hit a small resident
    region every iteration (high reuse), an archetypal mixed-locality load.
    """
    launch = _launch(scale)
    iters = scale.iters(64)
    dims = 16
    layout = Layout()
    layout.alloc("points", launch.total_threads * dims * 4 + iters * 64 + 4096)
    layout.alloc("centers", 64 * dims * 4 + 4096)
    instrs = [
        StridedInstr(pc=0x510, array="points", inter_stride=dims * 4,
                     intra_stride=64),
        StridedInstr(pc=0x518, array="centers", inter_stride=0,
                     intra_stride=4, reuse_period=dims),
        StridedInstr(pc=0x520, array="centers", inter_stride=0,
                     intra_stride=64, reuse_period=8, every=4),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "streamcluster", "rodinia"
    return kernel
