"""Workloads exercising shared memory, texture and constant caches.

The paper evaluates global-memory behaviour only but notes G-MAP's
"methodology is generic enough to capture and replicate patterns in accesses
to these caches as well" (section 5).  These three models demonstrate that:
they are registered in the suite (outside the 18-app paper set) and covered
by the ``test_ext_memory_spaces`` bench, which clones them end to end.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpu.hierarchy import WARP_SIZE, LaunchConfig
from repro.gpu.instructions import AccessTuple, pack, sync_marker
from repro.workloads.base import KernelModel, Layout, WorkloadScale

_BLOCK = 256


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


class MatmulSharedKernel(KernelModel):
    """Tiled matrix multiply staging tiles through shared memory.

    The classic pattern: each iteration loads one A-tile and one B-tile
    element from global memory, stores them to shared, barriers, then reads
    a row/column of the shared tiles repeatedly.  Shared reads of B are
    column-strided — lanes hit the same bank when the tile width equals the
    bank count, producing the bank conflicts the front end serialises.
    """

    name = "matmul_shared"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, tiles: int) -> None:
        super().__init__(launch)
        self.tiles = tiles
        self.tile = 16  # 16x16 tiles
        layout = Layout()
        n = launch.total_threads
        self.a_base = layout.alloc("A", n * 4 * (tiles + 1) + 4096)
        self.b_base = layout.alloc("B", n * 4 * (tiles + 1) + 4096)
        self.c_base = layout.alloc("C", n * 4 + 4096)
        self.sa_base = layout.alloc("sA", self.tile * self.tile * 4, "shared")
        self.sb_base = layout.alloc("sB", self.tile * self.tile * 4, "shared")
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        tile = self.tile
        local = tid % (tile * tile)  # position within the 16x16 tile
        row, col = divmod(local, tile)
        for t in range(self.tiles):
            # Global loads of this tile (unit-stride, coalesced).
            yield pack(0xA10, self.a_base + tid * 4 + t * 4096)
            yield pack(0xA18, self.b_base + tid * 4 + t * 4096)
            # Stage into shared memory.
            yield pack(0xA20, self.sa_base + local * 4, 4, True)
            yield pack(0xA28, self.sb_base + local * 4, 4, True)
            yield sync_marker()
            # Inner product over the tile: row of sA (broadcast-friendly),
            # column of sB (stride 16 words -> 2-way bank conflicts).
            for k in range(tile):
                yield pack(0xA30, self.sa_base + (row * tile + k) * 4)
                yield pack(0xA38, self.sb_base + (k * tile + col) * 4)
            yield sync_marker()
        yield pack(0xA40, self.c_base + tid * 4, 4, True)


def make_matmul_shared(scale: WorkloadScale) -> KernelModel:
    """Factory for the matmul_shared kernel model (see class docstring)."""
    return MatmulSharedKernel(_launch(scale), tiles=max(2, scale.iters(6)))


class ConvolutionTextureKernel(KernelModel):
    """2D convolution sampling the image through the texture cache.

    Texture fetches walk a 3x3 neighbourhood around each thread's pixel —
    heavy 2D locality that the per-SM texture cache captures — while the
    filter weights come from the constant cache and results stream to
    global memory.
    """

    name = "convolution_texture"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, rows: int) -> None:
        super().__init__(launch)
        self.rows = rows
        self.width = 512  # image row, in pixels (4B each)
        layout = Layout()
        image_bytes = (launch.total_threads + (rows + 2) * self.width + 64) * 4
        self.tex_base = layout.alloc("image", image_bytes, "texture")
        self.weights_base = layout.alloc("weights", 64 * 4, "constant")
        self.out_base = layout.alloc(
            "out", launch.total_threads * 4 + rows * self.width * 4 + 4096
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        width = self.width
        for r in range(self.rows):
            centre = self.tex_base + (tid + r * width + width + 1) * 4
            tap = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    yield pack(0xB10, centre + (dy * width + dx) * 4)
                    yield pack(0xB18, self.weights_base + tap * 4)
                    tap += 1
            yield pack(0xB20, self.out_base + (tid + r * width) * 4, 4, True)


def make_convolution_texture(scale: WorkloadScale) -> KernelModel:
    """Factory for the convolution_texture kernel model (see class docstring)."""
    return ConvolutionTextureKernel(_launch(scale), rows=max(2, scale.iters(8)))


class HistogramSharedKernel(KernelModel):
    """Histogramming with per-block shared-memory bins.

    Input streams from global memory; bin updates scatter across a small
    shared array (data-dependent banks — conflict degrees vary), and the
    final bins are flushed to global memory after a barrier.
    """

    name = "histogram_shared"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, iters: int) -> None:
        super().__init__(launch)
        self.iters = iters
        self.bins = 64
        layout = Layout()
        self.in_base = layout.alloc(
            "input", launch.total_threads * 4 * (iters + 1) + 4096
        )
        self.bins_base = layout.alloc("bins", self.bins * 4, "shared")
        self.out_base = layout.alloc("out", self.bins * 4 * 64 + 4096)
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        from repro.workloads.patterns import splitmix64

        for j in range(self.iters):
            yield pack(0xC10, self.in_base + tid * 4 + j * 8192)
            bin_index = splitmix64(tid * 977 + j) % self.bins
            yield pack(0xC18, self.bins_base + bin_index * 4)
            yield pack(0xC20, self.bins_base + bin_index * 4, 4, True)
        yield sync_marker()
        if tid % WARP_SIZE < self.bins // WARP_SIZE * WARP_SIZE or tid % _BLOCK < self.bins:
            if tid % _BLOCK < self.bins:
                yield pack(0xC28, self.bins_base + (tid % _BLOCK) * 4)
                yield pack(0xC30, self.out_base + (tid % _BLOCK) * 4, 4, True)


def make_histogram_shared(scale: WorkloadScale) -> KernelModel:
    """Factory for the histogram_shared kernel model (see class docstring)."""
    return HistogramSharedKernel(_launch(scale), iters=scale.iters(32))
