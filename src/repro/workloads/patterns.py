"""Address-pattern primitives for synthetic GPGPU kernel models.

The paper's trace source is GPGPU-sim running real CUDA binaries; this
reproduction replaces it with kernel *models* that emit the same kind of
per-thread memory access streams (see DESIGN.md, substitution table).  The
primitives here are the vocabulary those models are written in:

* linear thread-indexed addressing (``a[tid]``, ``a[tid*K + j]``) — the
  dominant GPGPU idiom the paper's section 4.2 builds on;
* deterministic pseudo-random scatter (hash-based) for irregular kernels such
  as hotspot's non-dominant patterns or BFS's data-dependent neighbours;
* Zipf-like table lookups for AES-style substitution tables.

Everything is deterministic given its inputs — kernel models must produce the
identical trace on every run so profiling and validation are repeatable.
"""

from __future__ import annotations

from typing import List

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 hash step: a fast, well-mixed deterministic 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def linear(base: int, index: int, stride: int) -> int:
    """``base + index*stride`` — the canonical tid-linear GPU address."""
    return base + index * stride


def grid2d(base: int, row: int, col: int, row_bytes: int, elem_size: int) -> int:
    """Row-major 2D array element address."""
    return base + row * row_bytes + col * elem_size


def hash_scatter(base: int, key: int, footprint_bytes: int, align: int = 4) -> int:
    """Deterministic scattered address within ``[base, base+footprint)``.

    Used for irregular access patterns; successive keys land in unrelated
    cache lines, destroying both stride regularity and spatial locality.
    """
    if footprint_bytes <= 0:
        raise ValueError(f"footprint must be positive, got {footprint_bytes}")
    if align <= 0:
        raise ValueError(f"align must be positive, got {align}")
    slots = max(1, footprint_bytes // align)
    return base + (splitmix64(key) % slots) * align


def zipf_index(key: int, n: int, skew: float = 1.2) -> int:
    """Deterministic Zipf-distributed index in ``[0, n)``.

    Approximates a Zipf(skew) draw by inverse-transform on the hashed key.
    Small indices are heavily favoured, which models hot substitution-table
    entries (AES) and hot graph vertices (BFS frontiers).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    u = (splitmix64(key) >> 11) / float(1 << 53)  # uniform in [0, 1)
    # Inverse CDF of a continuous Zipf-like density on [1, n+1).
    if abs(skew - 1.0) < 1e-9:
        idx = int((n + 1) ** u) - 1
    else:
        power = 1.0 - skew
        idx = int(((u * ((n + 1) ** power - 1.0)) + 1.0) ** (1.0 / power)) - 1
    return min(max(idx, 0), n - 1)


def stencil_offsets_2d(radius: int, row_elems: int) -> List[int]:
    """Element offsets of a von Neumann stencil of ``radius`` on a 2D grid.

    Returned in the order centre, ±x, ±y per ring — the access order a
    typical finite-difference kernel (hotspot, srad) uses.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    offsets = [0]
    for r in range(1, radius + 1):
        offsets.extend([-r, r, -r * row_elems, r * row_elems])
    return offsets


def triangular_row_start(row: int) -> int:
    """Element index where ``row`` starts in a packed lower-triangular matrix.

    LU-style kernels walk shrinking triangles; this gives their row bases.
    """
    if row < 0:
        raise ValueError(f"row must be >= 0, got {row}")
    return row * (row + 1) // 2
