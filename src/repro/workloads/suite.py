"""Registry of the synthetic GPGPU benchmark suite.

``paper_suite()`` returns the 18 benchmarks mirroring the paper's evaluation
set (Rodinia + CUDA SDK + ISPASS-2009); ``table1_suite()`` the 10 apps whose
memory patterns the paper's Table 1 documents, in row order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.workloads import extras, ispass, memspaces, rodinia, sdk
from repro.workloads.base import KernelModel, WorkloadScale

_FACTORIES: Dict[str, Callable[[WorkloadScale], KernelModel]] = {
    # Rodinia
    "heartwall": rodinia.make_heartwall,
    "backprop": rodinia.make_backprop,
    "kmeans": rodinia.make_kmeans,
    "srad": rodinia.make_srad,
    "hotspot": rodinia.make_hotspot,
    "nw": rodinia.make_nw,
    "lud": rodinia.make_lud,
    "bfs": rodinia.make_bfs,
    "pathfinder": rodinia.make_pathfinder,
    "streamcluster": rodinia.make_streamcluster,
    # CUDA SDK
    "scalarprod": sdk.make_scalarprod,
    "blackscholes": sdk.make_blackscholes,
    "fwt": sdk.make_fwt,
    "montecarlo": sdk.make_montecarlo,
    "sortingnetworks": sdk.make_sortingnetworks,
    "vectoradd": sdk.make_vectoradd,
    # ISPASS-2009
    "cp": ispass.make_cp,
    "lib": ispass.make_lib,
    "aes": ispass.make_aes,
    # Memory-space extensions (shared/texture/constant; outside the 18-app
    # paper suite — see repro.workloads.memspaces).
    "matmul_shared": memspaces.make_matmul_shared,
    "convolution_texture": memspaces.make_convolution_texture,
    "histogram_shared": memspaces.make_histogram_shared,
    # Structural stress extensions (see repro.workloads.extras).
    "reduction": extras.make_reduction,
    "spmv_csr": extras.make_spmv_csr,
    "transpose": extras.make_transpose,
    "gaussian": extras.make_gaussian,
    "pointer_chase": extras.make_pointer_chase,
    "stencil3d": extras.make_stencil3d,
}

#: The 18 applications standing in for the paper's evaluation suite.
PAPER_SUITE: Sequence[str] = (
    "heartwall", "backprop", "kmeans", "srad", "hotspot", "nw", "lud", "bfs",
    "pathfinder", "streamcluster", "scalarprod", "blackscholes", "fwt",
    "montecarlo", "sortingnetworks", "cp", "lib", "aes",
)

#: Table 1 of the paper documents these 10, in this row order.
TABLE1_SUITE: Sequence[str] = (
    "heartwall", "backprop", "kmeans", "srad", "scalarprod", "cp",
    "blackscholes", "lud", "lib", "fwt",
)

#: Short names used in the paper's tables/figures.
PAPER_ALIASES: Dict[str, str] = {
    "backprop": "BP",
    "scalarprod": "SP",
    "cp": "CP",
    "blackscholes": "BLK",
    "lud": "LUL",
    "lib": "LIB",
    "fwt": "FWT",
}


def available() -> List[str]:
    """All registered benchmark names (19: the 18 + vectoradd demo)."""
    return sorted(_FACTORIES)


def make(name: str, scale: str | WorkloadScale = "small") -> KernelModel:
    """Instantiate one benchmark at the given scale preset or explicit scale."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {', '.join(available())}"
        ) from None
    if isinstance(scale, str):
        scale = WorkloadScale.preset(scale)
    return factory(scale)


def paper_suite(scale: str | WorkloadScale = "small") -> List[KernelModel]:
    """The 18-benchmark evaluation suite."""
    return [make(name, scale) for name in PAPER_SUITE]


def table1_suite(scale: str | WorkloadScale = "small") -> List[KernelModel]:
    """The 10 benchmarks of the paper's Table 1, in row order."""
    return [make(name, scale) for name in TABLE1_SUITE]


def register(name: str, factory: Callable[[WorkloadScale], KernelModel]) -> None:
    """Add a user-defined benchmark to the registry (for extensions/tests)."""
    if name in _FACTORIES:
        raise ValueError(f"benchmark {name!r} already registered")
    _FACTORIES[name] = factory
