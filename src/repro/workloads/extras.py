"""Additional kernel models beyond the paper's 18-app evaluation suite.

These exercise structural corners the core suite under-represents —
log-tree reductions with a barrier per level, CSR sparse matrix-vector
products with data-dependent row lengths, and a transpose with perfectly
anti-coalesced stores — and serve as regression workloads for the profiler's
π-divergence, barrier, and coalescing-degree machinery.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import AccessTuple, pack, sync_marker
from repro.workloads.base import KernelModel, Layout, WorkloadScale
from repro.workloads.patterns import splitmix64, zipf_index

_BLOCK = 256


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


class ReductionKernel(KernelModel):
    """Tree reduction: halving active threads, a barrier per level.

    Level ``s`` has only threads with ``tid % 2^(s+1) == 0`` active — each
    level is a *different* divergent subset, so thread-granularity π
    clustering sees log(block) distinct profiles while the barrier count is
    uniform.
    """

    name = "reduction"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, rounds: int) -> None:
        super().__init__(launch)
        self.rounds = rounds
        self.levels = 8  # reduce 256 elements per block
        layout = Layout()
        self.data_base = layout.alloc(
            "data", launch.total_threads * 4 * (rounds + 1) + 4096
        )
        self.partial_base = layout.alloc(
            "partial", launch.total_threads * 4 + 4096
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        lane = tid % _BLOCK
        block_base = self.partial_base + (tid - lane) * 4
        for r in range(self.rounds):
            yield pack(0xD10, self.data_base + tid * 4 + r * 8192)
            yield pack(0xD18, block_base + lane * 4, 4, True)
            yield sync_marker()
            for level in range(self.levels):
                stride = 1 << level
                if lane % (stride * 2) == 0:
                    yield pack(0xD20, block_base + lane * 4)
                    yield pack(0xD28, block_base + (lane + stride) * 4)
                    yield pack(0xD30, block_base + lane * 4, 4, True)
                yield sync_marker()


def make_reduction(scale: WorkloadScale) -> KernelModel:
    """Factory for the reduction kernel model (see class docstring)."""
    return ReductionKernel(_launch(scale), rounds=max(1, scale.iters(4)))


class SpmvCsrKernel(KernelModel):
    """CSR sparse matrix-vector product: one row per thread.

    Row lengths are Zipf-distributed (power-law graphs/matrices), so
    threads execute *different numbers* of column/value loads — a realistic
    source of many π profiles — and the x-vector gathers are scattered by
    column index while row/val streams are sequential.
    """

    name = "spmv_csr"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, max_row: int) -> None:
        super().__init__(launch)
        self.max_row = max_row
        self.cols = 1 << 14
        layout = Layout()
        n = launch.total_threads
        self.rowptr_base = layout.alloc("rowptr", (n + 1) * 4 + 4096)
        self.vals_base = layout.alloc("vals", n * max_row * 8 + 4096)
        self.colidx_base = layout.alloc("colidx", n * max_row * 4 + 4096)
        self.x_base = layout.alloc("x", self.cols * 4)
        self.y_base = layout.alloc("y", n * 4 + 4096)
        self.layout = layout

    def row_length(self, tid: int) -> int:
        return 1 + zipf_index(tid * 48611, self.max_row, skew=1.3)

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        yield pack(0xE10, self.rowptr_base + tid * 4)
        yield pack(0xE18, self.rowptr_base + (tid + 1) * 4)
        start = tid * self.max_row
        for k in range(self.row_length(tid)):
            yield pack(0xE20, self.vals_base + (start + k) * 8)
            yield pack(0xE28, self.colidx_base + (start + k) * 4)
            col = splitmix64(tid * 2718281 + k) % self.cols
            yield pack(0xE30, self.x_base + col * 4)
        yield pack(0xE38, self.y_base + tid * 4, 4, True)


def make_spmv_csr(scale: WorkloadScale) -> KernelModel:
    """Factory for the spmv_csr kernel model (see class docstring)."""
    return SpmvCsrKernel(_launch(scale), max_row=max(4, scale.iters(16)))


class TransposeKernel(KernelModel):
    """Naive matrix transpose: coalesced loads, fully scattered stores.

    The store's lanes are a column apart (row_bytes stride), so every warp
    store instruction degenerates into 32 transactions — the worst-case
    coalescing degree, stressing the txns_per_access/txn_stride statistics.
    """

    name = "transpose"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, rows: int) -> None:
        super().__init__(launch)
        self.rows = rows
        self.dim = 256  # square tile edge, elements
        layout = Layout()
        n = launch.total_threads
        matrix_bytes = (n + self.dim) * self.dim * 4 + (rows + 1) * 4096
        self.in_base = layout.alloc("in", matrix_bytes)
        self.out_base = layout.alloc("out", matrix_bytes)
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        dim = self.dim
        row, col = divmod(tid, dim)
        for r in range(self.rows):
            offset = r * dim * dim * 4
            yield pack(0xF10, self.in_base + offset + (row * dim + col) * 4)
            yield pack(
                0xF18, self.out_base + offset + (col * dim + row) * 4, 4, True
            )


def make_transpose(scale: WorkloadScale) -> KernelModel:
    """Factory for the transpose kernel model (see class docstring)."""
    return TransposeKernel(_launch(scale), rows=max(2, scale.iters(8)))


class GaussianKernel(KernelModel):
    """Gaussian elimination: shrinking active region + pivot-row broadcast.

    Outer step ``k`` updates only rows/columns beyond ``k``: threads whose
    assigned row has been eliminated drop out (divergence grows over time),
    survivors read the shared pivot row (broadcast reuse) and update their
    own shrinking row suffix.
    """

    name = "gaussian"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, steps: int) -> None:
        super().__init__(launch)
        self.steps = steps
        self.dim = 512  # matrix edge, elements (2KB rows)
        layout = Layout()
        n = launch.total_threads
        self.mat_base = layout.alloc("matrix", (n + self.dim) * self.dim * 4)
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        dim = self.dim
        row_bytes = dim * 4
        my_row = self.mat_base + tid * row_bytes
        pivot_rows = self.mat_base + self.launch.total_threads * row_bytes
        for k in range(self.steps):
            if tid % self.steps < k:
                continue  # this thread's row is already eliminated
            # Broadcast read of the pivot row's suffix (shared -> hot lines).
            yield pack(0x910, pivot_rows + (k % 8) * row_bytes + k * 4)
            yield pack(0x918, pivot_rows + (k % 8) * row_bytes + (k + 64) * 4)
            # Update this row's suffix: start moves right every step.
            for c in range(k, min(k + 4, dim // 64)):
                yield pack(0x920, my_row + (k + c * 64) * 4)
                yield pack(0x928, my_row + (k + c * 64) * 4, 4, True)


def make_gaussian(scale: WorkloadScale) -> KernelModel:
    """Factory for the gaussian kernel model (see class docstring)."""
    return GaussianKernel(_launch(scale), steps=max(4, scale.iters(16)))


class PointerChaseKernel(KernelModel):
    """MUMmer-style tree walk: serial pointer chasing per thread.

    Each thread repeatedly follows a deterministic pseudo-random pointer
    chain through a node pool — every access *depends* on the previous one,
    so there is no stride structure at all, only whatever locality the pool
    size allows.  The hardest-possible input for stride-based cloning, kept
    in the suite as an honest stress case (the paper's related work notes
    CPU cloning handles pointer chasing poorly too).
    """

    name = "pointer_chase"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, hops: int) -> None:
        super().__init__(launch)
        self.hops = hops
        self.nodes = 1 << 12  # 4096 nodes x 64B = 256KB pool
        layout = Layout()
        self.pool_base = layout.alloc("pool", self.nodes * 64)
        self.out_base = layout.alloc("out", launch.total_threads * 4 + 4096)
        self.layout = layout

    def _next(self, node: int) -> int:
        return splitmix64(node * 1099511628211 + 13) % self.nodes

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        node = splitmix64(tid) % self.nodes
        for _ in range(self.hops):
            yield pack(0xA50, self.pool_base + node * 64)
            node = self._next(node)
        yield pack(0xA58, self.out_base + tid * 4, 4, True)


def make_pointer_chase(scale: WorkloadScale) -> KernelModel:
    """Factory for the pointer_chase kernel model (see class docstring)."""
    return PointerChaseKernel(_launch(scale), hops=scale.iters(48))


class Stencil3dKernel(KernelModel):
    """3D 7-point stencil: three distinct stride scales per instruction set.

    Neighbour offsets of ±1 element, ±1 row and ±1 plane give the profiler
    three well-separated stride populations on one array — a multi-modal
    P_A exercise with genuine physical meaning.
    """

    name = "stencil3d"
    suite = "extension"

    def __init__(self, launch: LaunchConfig, sweeps: int) -> None:
        super().__init__(launch)
        self.sweeps = sweeps
        self.nx = 64           # elements per row
        self.ny = 64           # rows per plane
        layout = Layout()
        plane = self.nx * self.ny * 4
        cells = launch.total_threads + 2 * (self.nx * self.ny + self.nx + 1)
        self.in_base = layout.alloc(
            "grid_in", cells * 4 + (sweeps + 2) * plane
        )
        self.out_base = layout.alloc(
            "grid_out", cells * 4 + (sweeps + 2) * plane
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        nx, ny = self.nx, self.ny
        plane_elems = nx * ny
        centre0 = self.in_base + (tid + plane_elems + nx + 1) * 4
        for s in range(self.sweeps):
            centre = centre0 + s * plane_elems * 4
            yield pack(0xB50, centre)
            yield pack(0xB58, centre - 4)
            yield pack(0xB60, centre + 4)
            yield pack(0xB68, centre - nx * 4)
            yield pack(0xB70, centre + nx * 4)
            yield pack(0xB78, centre - plane_elems * 4)
            yield pack(0xB80, centre + plane_elems * 4)
            yield pack(0xB88, self.out_base + (tid + s * plane_elems) * 4,
                       4, True)


def make_stencil3d(scale: WorkloadScale) -> KernelModel:
    """Factory for the stencil3d kernel model (see class docstring)."""
    return Stencil3dKernel(_launch(scale), sweeps=max(2, scale.iters(12)))
