"""Synthetic models of the CUDA SDK benchmarks used in the paper."""

from __future__ import annotations

from typing import Iterator

from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import AccessTuple, pack
from repro.workloads.base import (
    KernelModel,
    Layout,
    RegularKernel,
    StridedInstr,
    WorkloadScale,
)
from repro.workloads.patterns import hash_scatter

_BLOCK = 256


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


def make_scalarprod(scale: WorkloadScale) -> KernelModel:
    """ScalarProd (SP): paired vector loads, *low* reuse.

    Table 1: PCs 0xd8/0xe0 each at 48%, inter-warp 128, intra-warp 4096.
    The evaluation notes SP is largely insensitive to L1 prefetching because
    of its large footprint and low temporal locality — each thread strides
    4 KB per iteration and never returns.
    """
    launch = _launch(scale)
    iters = scale.iters(48)
    layout = Layout()
    span = launch.total_threads * 4 + (iters + 1) * 4096 + 4096
    layout.alloc("vec_a", span)
    layout.alloc("vec_b", span)
    layout.alloc("partial", launch.total_threads * 4 + iters * 128 + 4096)
    instrs = [
        StridedInstr(pc=0xD8, array="vec_a", inter_stride=4, intra_stride=4096),
        StridedInstr(pc=0xE0, array="vec_b", inter_stride=4, intra_stride=4096),
        StridedInstr(pc=0xE8, array="partial", inter_stride=4,
                     intra_stride=128, every=24, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "scalarprod", "sdk"
    return kernel


def make_blackscholes(scale: WorkloadScale) -> KernelModel:
    """BlackScholes (BLK): option-batch streaming, *low* reuse.

    Table 1: PCs 0xF0/0xF8/0x100 each at 20%, inter-warp 128, intra-warp
    245760 — each iteration jumps to the next large option batch.  Five
    instructions (3 loads, 2 stores) split traffic evenly at 20% each.
    """
    launch = _launch(scale)
    iters = scale.iters(24)
    batch = 245760
    layout = Layout()
    span = launch.total_threads * 4 + (iters + 1) * batch + 4096
    for array in ("price", "strike", "years", "call", "put"):
        layout.alloc(array, span)
    instrs = [
        StridedInstr(pc=0x0F0, array="price", inter_stride=4, intra_stride=batch),
        StridedInstr(pc=0x0F8, array="strike", inter_stride=4, intra_stride=batch),
        StridedInstr(pc=0x100, array="years", inter_stride=4, intra_stride=batch),
        StridedInstr(pc=0x108, array="call", inter_stride=4,
                     intra_stride=batch, is_store=True),
        StridedInstr(pc=0x110, array="put", inter_stride=4,
                     intra_stride=batch, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "blackscholes", "sdk"
    return kernel


def make_fwt(scale: WorkloadScale) -> KernelModel:
    """Fast Walsh Transform (FWT): batch jumps with paired butterflies.

    Table 1: PCs 0x458/0x460/0x478 each at 12%, inter-warp 128, intra-warp
    19200, *medium* reuse.  Eight equally-hot instructions put each at 12.5%
    of traffic; the data array wraps every few batches (medium reuse).
    """
    launch = _launch(scale)
    iters = scale.iters(32)
    batch = 19200
    layout = Layout()
    period = max(3, iters // 3)  # a few wraps: medium reuse
    span = launch.total_threads * 4 + (period + 1) * batch + 4096
    for array in ("d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"):
        layout.alloc(array, span)
    pcs = (0x458, 0x460, 0x478, 0x480, 0x488, 0x490, 0x498, 0x4A0)
    instrs = [
        StridedInstr(pc=pc, array=f"d{k}", inter_stride=4,
                     intra_stride=batch, reuse_period=period,
                     is_store=(k >= 6))
        for k, pc in enumerate(pcs)
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "fwt", "sdk"
    return kernel


class MonteCarloKernel(KernelModel):
    """MonteCarlo: scattered path samples against hot pricing parameters.

    Random-number-driven path reads scatter across a large state region
    (no stride regularity) while per-option parameters are re-read every
    step (high temporal locality on a small region).
    """

    name = "montecarlo"
    suite = "sdk"

    def __init__(self, launch: LaunchConfig, iters: int) -> None:
        super().__init__(launch)
        self.iters = iters
        layout = Layout()
        self.samples_base = layout.alloc("samples", 1 << 22)
        self.params_base = layout.alloc("params", 8192)
        self.payoff_base = layout.alloc(
            "payoff", launch.total_threads * 4 + 4096
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        for j in range(self.iters):
            yield pack(
                0x210, hash_scatter(self.samples_base, tid * 65537 + j, 1 << 22)
            )
            yield pack(0x218, self.params_base + (tid % 32) * 64)
            yield pack(0x220, self.params_base + 4096 + (j % 16) * 64)
            if j % 8 == 7:
                yield pack(0x228, self.payoff_base + tid * 4, 4, True)


def make_montecarlo(scale: WorkloadScale) -> KernelModel:
    """Factory for the montecarlo kernel model (see class docstring)."""
    return MonteCarloKernel(_launch(scale), iters=scale.iters(48))


class SortingNetworksKernel(KernelModel):
    """SortingNetworks: bitonic compare-exchange with power-of-two strides.

    Stage ``s`` pairs element ``tid`` with ``tid XOR 2^s``: the stride
    doubles every stage, exercising the profiler's multi-modal intra-thread
    stride histograms.
    """

    name = "sortingnetworks"
    suite = "sdk"

    def __init__(self, launch: LaunchConfig, passes: int) -> None:
        super().__init__(launch)
        self.passes = passes
        self.stages = 8
        layout = Layout()
        self.keys_base = layout.alloc(
            "keys", (launch.total_threads + (1 << self.stages)) * 4 + 4096
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        base = self.keys_base
        for p in range(self.passes):
            for s in range(self.stages):
                partner = tid ^ (1 << s)
                yield pack(0x330, base + tid * 4)
                yield pack(0x338, base + partner * 4)
                yield pack(0x340, base + tid * 4, 4, True)


def make_sortingnetworks(scale: WorkloadScale) -> KernelModel:
    """Factory for the sortingnetworks kernel model (see class docstring)."""
    return SortingNetworksKernel(_launch(scale), passes=max(1, scale.iters(6)))


def make_vectoradd(scale: WorkloadScale) -> KernelModel:
    """VectorAdd: the paper's Figure 4 running example.

    Two unit-stride loads and one store; with ``Total_Threads`` elements per
    sweep each thread revisits stride ``Total_Threads * 4`` bytes — the
    textbook inter-thread-stride-1 / intra-thread-stride-16 example.
    """
    launch = _launch(scale)
    iters = scale.iters(64)
    sweep = launch.total_threads * 4
    layout = Layout()
    span = sweep * (iters + 1) + 4096
    layout.alloc("a", span)
    layout.alloc("b", span)
    layout.alloc("c", span)
    instrs = [
        StridedInstr(pc=0x050, array="a", inter_stride=4, intra_stride=sweep),
        StridedInstr(pc=0x058, array="b", inter_stride=4, intra_stride=sweep),
        StridedInstr(pc=0x060, array="c", inter_stride=4,
                     intra_stride=sweep, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "vectoradd", "sdk"
    return kernel
