"""Multi-kernel application models (paper section 2.2, Figure 1b).

Real GPGPU benchmarks launch kernel *sequences* over shared device arrays:
Rodinia's srad alternates a coefficient kernel and an update kernel over the
same image, and backprop runs a forward layer pass followed by a weight
adjustment over the same weight matrix.  The consumer kernel re-reads the
producer's data, so the shared L2 carries reuse *across* launches — the
behaviour :func:`repro.core.app_pipeline.simulate_application` preserves.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.gpu.application import Application
from repro.gpu.hierarchy import LaunchConfig
from repro.workloads.base import Layout, RegularKernel, StridedInstr, WorkloadScale

_BLOCK = 256


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


def make_srad_application(scale: str | WorkloadScale = "small") -> Application:
    """srad as its real two-kernel sequence over one shared image.

    Kernel 1 (srad1) reads the image and *writes* the diffusion-coefficient
    array; kernel 2 (srad2) reads those coefficients back and updates the
    image — the producer/consumer pattern whose inter-kernel L2 reuse a
    single-kernel model cannot express.
    """
    if isinstance(scale, str):
        scale = WorkloadScale.preset(scale)
    launch = _launch(scale)
    iters = scale.iters(24)
    row_bytes = 512
    jump = 8320
    layout = Layout()
    span = launch.total_threads * row_bytes + (iters + 2) * jump + 8192
    layout.alloc("image", span)
    layout.alloc("coeff", span)
    phase = (iters + 1) * jump

    srad1 = RegularKernel(
        launch, layout,
        [
            StridedInstr(pc=0x250, array="image", inter_stride=row_bytes,
                         intra_stride=-jump, phase=phase),
            StridedInstr(pc=0x258, array="coeff", inter_stride=row_bytes,
                         intra_stride=-jump, phase=phase, is_store=True),
        ],
        iters=iters,
    )
    srad1.name, srad1.suite = "srad1", "rodinia"

    srad2 = RegularKernel(
        launch, layout,
        [
            StridedInstr(pc=0x350, array="coeff", inter_stride=row_bytes,
                         intra_stride=-jump, phase=phase),
            StridedInstr(pc=0x358, array="image", inter_stride=row_bytes,
                         intra_stride=-jump, phase=phase, is_store=True),
        ],
        iters=iters,
    )
    srad2.name, srad2.suite = "srad2", "rodinia"

    return Application("srad_app", [srad1, srad2])


def make_backprop_application(scale: str | WorkloadScale = "small") -> Application:
    """backprop's forward + weight-adjust kernel pair over shared weights."""
    if isinstance(scale, str):
        scale = WorkloadScale.preset(scale)
    launch = _launch(scale)
    iters = scale.iters(32)
    layout = Layout()
    span = launch.total_threads * 4 + (iters + 2) * 128 + 4096
    layout.alloc("in_units", span)
    layout.alloc("weights", span)
    layout.alloc("hidden", span)
    layout.alloc("deltas", span)

    forward = RegularKernel(
        launch, layout,
        [
            StridedInstr(pc=0x3F8, array="in_units", inter_stride=4,
                         intra_stride=128),
            StridedInstr(pc=0x400, array="weights", inter_stride=4,
                         intra_stride=128),
            StridedInstr(pc=0x408, array="hidden", inter_stride=4,
                         intra_stride=128, reuse_period=4, is_store=True),
        ],
        iters=iters,
        sync_every=8,
    )
    forward.name, forward.suite = "bp_layerforward", "rodinia"

    adjust = RegularKernel(
        launch, layout,
        [
            StridedInstr(pc=0x470, array="deltas", inter_stride=4,
                         intra_stride=128),
            StridedInstr(pc=0x478, array="weights", inter_stride=4,
                         intra_stride=128),
            StridedInstr(pc=0x480, array="weights", inter_stride=4,
                         intra_stride=128, is_store=True),
        ],
        iters=iters,
    )
    adjust.name, adjust.suite = "bp_adjust", "rodinia"

    return Application("backprop_app", [forward, adjust])


APPLICATIONS: Dict[str, Callable[..., Application]] = {
    "srad_app": make_srad_application,
    "backprop_app": make_backprop_application,
}


def available_applications() -> List[str]:
    """Names of the registered multi-kernel applications."""
    return sorted(APPLICATIONS)


def make_application(name: str, scale: str | WorkloadScale = "small") -> Application:
    """Instantiate a registered multi-kernel application."""
    try:
        factory = APPLICATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; "
            f"available: {', '.join(available_applications())}"
        ) from None
    return factory(scale)
