"""Synthetic models of the ISPASS-2009 benchmarks used in the paper."""

from __future__ import annotations

from typing import Iterator

from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import AccessTuple, pack
from repro.workloads.base import (
    KernelModel,
    Layout,
    RegularKernel,
    StridedInstr,
    WorkloadScale,
)
from repro.workloads.patterns import zipf_index

_BLOCK = 256


def _launch(scale: WorkloadScale) -> LaunchConfig:
    return LaunchConfig(grid_dim=scale.blocks, block_dim=_BLOCK)


def make_cp(scale: WorkloadScale) -> KernelModel:
    """Coulombic Potential (CP): lattice sweeps, *medium* reuse.

    Table 1: PCs 0x208/0x218/0x220 each at 25%, inter-warp 2048 (64 bytes
    per thread), intra-warp -1024.  A fourth store instruction carries the
    remaining quarter of traffic; the atom array wraps for medium reuse.
    """
    launch = _launch(scale)
    iters = scale.iters(48)
    layout = Layout()
    # 64B per thread spreads each warp instruction over 16 segments; the
    # -1024B walk shifts that window by half, so successive iterations
    # re-touch 8 of 16 lines — the medium reuse class arises from window
    # overlap, with purely monotonic per-instruction walks.
    span = launch.total_threads * 64 + (iters + 2) * 1024 + 4096
    for array in ("atoms_x", "atoms_y", "atoms_z", "energy"):
        layout.alloc(array, span)
    phase = (iters + 1) * 1024
    instrs = [
        StridedInstr(pc=0x208, array="atoms_x", inter_stride=64,
                     intra_stride=-1024, phase=phase),
        StridedInstr(pc=0x218, array="atoms_y", inter_stride=64,
                     intra_stride=-1024, phase=phase),
        StridedInstr(pc=0x220, array="atoms_z", inter_stride=64,
                     intra_stride=-1024, phase=phase),
        StridedInstr(pc=0x228, array="energy", inter_stride=64,
                     intra_stride=1024, is_store=True),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "cp", "ispass"
    return kernel


def make_lib(scale: WorkloadScale) -> KernelModel:
    """LIBOR (LIB): two hot path loads, *high* reuse.

    Table 1: PCs 0x1c68/0x1ce0 each at 46%, PC 0x1b40 at 4%; inter-warp 128,
    intra-warp 19200.  The forward-rate path is re-walked every few
    iterations, giving the high reuse class.
    """
    launch = _launch(scale)
    iters = scale.iters(50)
    batch = 19200
    layout = Layout()
    period = 4
    span = launch.total_threads * 4 + (period + 1) * batch + 4096
    layout.alloc("rates", span)
    layout.alloc("discounts", span)
    layout.alloc("greeks", span)
    instrs = [
        StridedInstr(pc=0x1C68, array="rates", inter_stride=4,
                     intra_stride=batch, reuse_period=period),
        StridedInstr(pc=0x1CE0, array="discounts", inter_stride=4,
                     intra_stride=batch, reuse_period=period),
        StridedInstr(pc=0x1B40, array="greeks", inter_stride=4,
                     intra_stride=batch, reuse_period=period, every=12),
    ]
    kernel = RegularKernel(launch, layout, instrs, iters=iters)
    kernel.name, kernel.suite = "lib", "ispass"
    return kernel


class AesKernel(KernelModel):
    """AES: substitution-table lookups plus unit-stride state streaming.

    Four 1 KB T-tables are hit with a skewed (Zipf) index — scattered within
    a tiny, fully cache-resident region (very high reuse) — while the state
    blocks stream through with unit stride.  AES is also the normalisation
    baseline of the paper's Figure 7.
    """

    name = "aes"
    suite = "ispass"

    def __init__(self, launch: LaunchConfig, rounds: int) -> None:
        super().__init__(launch)
        self.rounds = rounds
        layout = Layout()
        self.ttable_base = layout.alloc("ttables", 4 * 1024)
        self.state_base = layout.alloc(
            "state", launch.total_threads * 16 + rounds * 128 + 4096
        )
        self.out_base = layout.alloc(
            "out", launch.total_threads * 16 + rounds * 128 + 4096
        )
        self.layout = layout

    def thread_program(self, tid: int) -> Iterator[AccessTuple]:
        for r in range(self.rounds):
            yield pack(0x810, self.state_base + tid * 16 + r * 128)
            for t in range(4):
                idx = zipf_index(tid * 2654435761 + r * 97 + t, 256, skew=1.1)
                yield pack(0x818 + 8 * t, self.ttable_base + t * 1024 + idx * 4)
            if r % 2 == 1:
                yield pack(0x840, self.out_base + tid * 16 + r * 128, 4, True)


def make_aes(scale: WorkloadScale) -> KernelModel:
    """Factory for the aes kernel model (see class docstring)."""
    return AesKernel(_launch(scale), rounds=scale.iters(40))
