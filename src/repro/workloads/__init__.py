"""workloads subpackage of the G-MAP reproduction."""
