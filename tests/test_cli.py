"""Tests for the gmap command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io.profile_io import load_profile
from repro.io.trace_io import load_warp_traces


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out
        assert "ispass" in out
        assert "18-benchmark" in out


class TestProfileCommand:
    def test_profile_benchmark(self, tmp_path, capsys):
        out_path = tmp_path / "p.json"
        assert main(["profile", "vectoradd", "--scale", "tiny",
                     "-o", str(out_path)]) == 0
        profile = load_profile(out_path)
        assert profile.name == "vectoradd"
        assert "pi profiles" in capsys.readouterr().out

    def test_profile_obfuscated(self, tmp_path):
        plain_path = tmp_path / "plain.json"
        hidden_path = tmp_path / "hidden.json"
        main(["profile", "vectoradd", "--scale", "tiny", "-o", str(plain_path)])
        main(["profile", "vectoradd", "--scale", "tiny", "--obfuscate",
              "-o", str(hidden_path)])
        plain = load_profile(plain_path)
        hidden = load_profile(hidden_path)
        assert plain.instructions[0x50].base_address != \
            hidden.instructions[0x50].base_address

    def test_profile_thread_granularity(self, tmp_path):
        out_path = tmp_path / "p.json"
        main(["profile", "vectoradd", "--scale", "tiny", "--no-coalescing",
              "-o", str(out_path)])
        assert load_profile(out_path).unit == "thread"

    def test_profile_from_trace_file(self, tmp_path):
        trace_path = tmp_path / "w.trace"
        profile_path = tmp_path / "p.json"
        main(["profile", "vectoradd", "--scale", "tiny",
              "-o", str(tmp_path / "tmp.json")])
        # Build a trace via generate, then profile it back.
        main(["generate", str(tmp_path / "tmp.json"), "-o", str(trace_path)])
        assert main(["profile", str(trace_path), "-o", str(profile_path)]) == 0
        assert load_profile(profile_path).num_instructions >= 1


class TestGenerateCommand:
    def test_generate(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        trace_path = tmp_path / "c.trace"
        main(["profile", "vectoradd", "--scale", "tiny", "-o", str(profile_path)])
        assert main(["generate", str(profile_path), "-o", str(trace_path)]) == 0
        traces = load_warp_traces(trace_path)
        assert traces
        assert "generated" in capsys.readouterr().out

    def test_generate_miniaturized(self, tmp_path):
        profile_path = tmp_path / "p.json"
        main(["profile", "vectoradd", "--scale", "tiny", "-o", str(profile_path)])
        full_path = tmp_path / "full.trace"
        small_path = tmp_path / "small.trace"
        main(["generate", str(profile_path), "-o", str(full_path)])
        main(["generate", str(profile_path), "--factor", "4",
              "-o", str(small_path)])
        full = sum(len(t.transactions) for t in load_warp_traces(full_path))
        small = sum(len(t.transactions) for t in load_warp_traces(small_path))
        assert small < full / 3


class TestSimulateCommand:
    def test_simulate_benchmark(self, capsys):
        assert main(["simulate", "vectoradd", "--scale", "tiny",
                     "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "L1 miss rate" in out
        assert "DRAM" in out

    def test_simulate_with_overrides(self, capsys):
        assert main(["simulate", "aes", "--scale", "tiny", "--cores", "4",
                     "--l1", "65536,8,128", "--scheduler", "gto",
                     "--dram-preset", "hbm2-like"]) == 0
        assert "L1 miss rate" in capsys.readouterr().out

    def test_simulate_bad_cache_spec(self):
        with pytest.raises(SystemExit, match="bad cache spec"):
            main(["simulate", "aes", "--scale", "tiny", "--l1", "banana"])

    def test_simulate_trace_file(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        trace_path = tmp_path / "c.trace"
        main(["profile", "vectoradd", "--scale", "tiny", "-o", str(profile_path)])
        main(["generate", str(profile_path), "-o", str(trace_path)])
        assert main(["simulate", str(trace_path), "--cores", "4"]) == 0
        assert "requests" in capsys.readouterr().out


class TestInspectCommand:
    def test_inspect_summarises_profile(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        main(["profile", "kmeans", "--scale", "tiny", "-o", str(profile_path)])
        capsys.readouterr()
        assert main(["inspect", str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "pi profiles: 1" in out
        assert "0xe8" in out
        assert "4352" in out     # Table 1's dominant inter-warp stride
        assert "high" in out     # reuse class

    def test_inspect_top_limits_rows(self, tmp_path, capsys):
        profile_path = tmp_path / "p.json"
        main(["profile", "blackscholes", "--scale", "tiny",
              "-o", str(profile_path)])
        capsys.readouterr()
        main(["inspect", str(profile_path), "--top", "1"])
        out = capsys.readouterr().out
        pcs = [l for l in out.splitlines() if l.strip().startswith("0x")]
        assert len(pcs) == 1


class TestDiffCommand:
    def test_self_diff_is_zero(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["profile", "kmeans", "--scale", "tiny", "-o", str(path)])
        capsys.readouterr()
        assert main(["diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "inter_stride     0.0000" in out
        assert "only in A: 0" in out

    def test_clone_round_trip_diff_small(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        trace = tmp_path / "c.trace"
        b = tmp_path / "b.json"
        main(["profile", "kmeans", "--scale", "tiny", "-o", str(a)])
        main(["generate", str(a), "-o", str(trace)])
        main(["profile", str(trace), "-o", str(b)])
        capsys.readouterr()
        main(["diff", str(a), str(b)])
        out = capsys.readouterr().out
        # Regenerated statistics must be close to the source profile's.
        import re
        values = {
            m.group(1): float(m.group(2))
            for m in re.finditer(r"(\w+)\s+(\d\.\d{4})", out)
        }
        assert values["inter_stride"] < 0.1
        assert values["txns_per_access"] < 0.1


class TestApplicationProfiles:
    def test_list_shows_applications(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "srad_app" in out
        assert "multi-kernel application" in out

    def test_profile_application(self, tmp_path, capsys):
        path = tmp_path / "app.json"
        assert main(["profile", "srad_app", "--scale", "tiny",
                     "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 kernels" in out
        from repro.io.profile_io import load_application_profile
        profile = load_application_profile(path)
        assert [p.name for p in profile.kernel_profiles] == ["srad1", "srad2"]

    def test_profile_application_obfuscated(self, tmp_path):
        plain = tmp_path / "plain.json"
        hidden = tmp_path / "hidden.json"
        main(["profile", "srad_app", "--scale", "tiny", "-o", str(plain)])
        main(["profile", "srad_app", "--scale", "tiny", "--obfuscate",
              "-o", str(hidden)])
        from repro.io.profile_io import load_application_profile
        a = load_application_profile(plain)
        b = load_application_profile(hidden)
        assert a.kernel_profiles[0].instructions[0x250].base_address != \
            b.kernel_profiles[0].instructions[0x250].base_address


class TestValidateCommand:
    def test_validate_reduced(self, capsys):
        assert main(["validate", "fig6a", "--benchmarks", "vectoradd",
                     "--scale", "tiny", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "vectoradd" in out
        assert "AVERAGE" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "fig99"])


class TestTypedErrors:
    """Operator mistakes exit code 2 with a one-line typed error — a
    traceback from ``gmap`` always means a bug, never a bad input."""

    def test_nonexistent_profile_path(self, capsys):
        assert main(["inspect", "/no/such/profile.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("gmap inspect: error [invalid_request]")
        assert "Traceback" not in err

    def test_malformed_profile_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json at all")
        assert main(["inspect", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error [invalid_request]" in err
        assert "Traceback" not in err

    def test_unknown_benchmark_name(self, capsys):
        assert main(["simulate", "definitely_not_a_benchmark"]) == 2
        err = capsys.readouterr().err
        assert "error [invalid_request]" in err
        assert "unknown benchmark" in err

    def test_corrupt_npz_trace_is_typed(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        corrupt = tmp_path / "bad.trace.npz"
        corrupt.write_bytes(b"PK\x03\x04 this is not a real zip")
        assert main(["simulate", str(corrupt)]) == 2
        err = capsys.readouterr().err
        assert "error [corrupt_artifact]" in err

    def test_generate_from_missing_profile(self, tmp_path, capsys):
        assert main(["generate", str(tmp_path / "ghost.json"),
                     "-o", str(tmp_path / "out.trace")]) == 2
        assert "error [invalid_request]" in capsys.readouterr().err

    def test_locked_journal_is_typed_rejected(self, tmp_path, capsys):
        from repro.validation.resilience import RunJournal

        holder = RunJournal("cli-lock", tmp_path)
        holder.acquire_lock()
        try:
            code = main([
                "validate", "fig6a", "--benchmarks", "vectoradd",
                "--scale", "tiny", "--no-cache",
                "--journal-dir", str(tmp_path), "--run-id", "cli-lock",
            ])
        finally:
            holder.release_lock()
        assert code == 2
        assert "error [rejected]" in capsys.readouterr().err

    def test_serve_subcommand_is_wired(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--queue-capacity" in out
        assert "--drain-timeout" in out
