"""Tests for the analytical baseline models (Tang 2011, Nugteren 2014)."""

from __future__ import annotations

import pytest

from repro.analytical import NugterenL1Model, StackDistanceProfile, TangL1Model
from repro.analytical.profile_model import (
    _conflict_probability,
    round_robin_interleave,
)
from repro.gpu.executor import execute_kernel
from repro.memsim.config import PAPER_BASELINE, CacheConfig
from repro.memsim.simulator import simulate
from repro.workloads import suite


class TestRoundRobinInterleave:
    def test_equal_streams(self):
        merged = round_robin_interleave([[1, 2], [10, 20]])
        assert merged == [1, 10, 2, 20]

    def test_unequal_streams(self):
        merged = round_robin_interleave([[1, 2, 3], [10]])
        assert merged == [1, 10, 2, 3]

    def test_empty(self):
        assert round_robin_interleave([[], []]) == []


class TestStackDistanceProfile:
    def test_line_size_validation(self):
        with pytest.raises(ValueError):
            StackDistanceProfile(line_sizes=(48,))

    def test_unknown_line_size_rejected(self):
        profile = StackDistanceProfile.from_addresses([0], line_sizes=(64,))
        with pytest.raises(ValueError, match="not collected"):
            profile.histogram(128)

    def test_cold_misses_counted(self):
        profile = StackDistanceProfile.from_addresses(
            [0, 128, 0], line_sizes=(128,)
        )
        assert profile.cold_misses(128) == 2
        assert profile.histogram(128).count(1) == 1

    def test_miss_rate_pure_streaming_is_one(self):
        addresses = [i * 128 for i in range(100)]
        profile = StackDistanceProfile.from_addresses(addresses, (128,))
        config = CacheConfig(size=16 * 1024, assoc=4, line_size=128)
        assert profile.miss_rate(config) == pytest.approx(1.0)

    def test_miss_rate_resident_working_set(self):
        addresses = [(i % 8) * 128 for i in range(800)]
        profile = StackDistanceProfile.from_addresses(addresses, (128,))
        config = CacheConfig(size=16 * 1024, assoc=4, line_size=128)
        # 8 cold misses out of 800 accesses (+ a negligible binomial
        # set-conflict correction term).
        assert profile.miss_rate(config) == pytest.approx(0.01, abs=1e-3)

    def test_miss_rate_monotone_in_capacity(self):
        addresses = [(i * 7 % 64) * 128 for i in range(2000)]
        profile = StackDistanceProfile.from_addresses(addresses, (128,))
        rates = [
            profile.miss_rate(CacheConfig(size=s, assoc=4, line_size=128))
            for s in (1024, 4096, 16 * 1024)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_empty_profile(self):
        profile = StackDistanceProfile()
        config = CacheConfig(size=1024, assoc=2, line_size=64)
        assert profile.miss_rate(config) == 0.0

    def test_matches_fa_cache_without_conflict_model(self):
        """On a 1-set cache the FA prediction is exact."""
        addresses = [(i * 13 % 20) * 64 for i in range(500)]
        profile = StackDistanceProfile.from_addresses(addresses, (64,))
        config = CacheConfig(size=64 * 8, assoc=8, line_size=64)  # 1 set
        from repro.memsim.cache import SetAssociativeCache
        cache = SetAssociativeCache(config)
        misses = 0
        for a in addresses:
            hit, _ = cache.access(a)
            misses += not hit
        assert profile.miss_rate(config, set_conflicts=False) == \
            pytest.approx(misses / len(addresses))


class TestConflictProbability:
    def test_zero_when_distance_below_assoc(self):
        assert _conflict_probability(2, num_sets=16, assoc=4) < 1e-4

    def test_one_set_always_conflicts_at_capacity(self):
        # distance >= assoc with a single set is certain.
        assert _conflict_probability(8, num_sets=1, assoc=4) == pytest.approx(1.0)

    def test_monotone_in_distance(self):
        a = _conflict_probability(8, 32, 4)
        b = _conflict_probability(64, 32, 4)
        assert b >= a

    def test_bounded(self):
        for d in (1, 10, 100, 1000):
            p = _conflict_probability(d, 32, 8)
            assert 0.0 <= p <= 1.0

    # -- log-space regression: million-line distances at high associativity.
    # The naive formulation (`math.comb(d, k) * p**k * q**(d-k)`) breaks in
    # two ways at this scale: `float(comb(10**6, 127))` overflows to raise,
    # and the `q ** d` seed term can underflow the whole head sum to zero.
    # The lgamma/log-space evaluation must stay finite, bounded and correct.

    def test_million_line_distance_high_assoc_is_finite(self):
        import math
        for assoc in (16, 32, 64, 128, 256):
            p = _conflict_probability(10**6, num_sets=4096, assoc=assoc)
            assert math.isfinite(p)
            assert 0.0 <= p <= 1.0
        # ~244 expected lines per set: assoc 16 is certain conflict, assoc
        # 256 is deep in the upper tail but must not round to exactly 0.
        assert _conflict_probability(10**6, 4096, 16) == pytest.approx(1.0)
        assert 0.0 < _conflict_probability(10**6, 4096, 256) < 1.0

    def test_million_line_distance_matches_poisson_reference(self):
        # Binomial(10^6, 1/65536) is Poisson(~15.26) to ~1e-4; the survival
        # at assoc=16 sits near 0.46, a regime where any head-term underflow
        # would snap the answer to 0 or 1.
        import math
        lam = 10**6 / 65536
        poisson_le = sum(
            math.exp(-lam + k * math.log(lam) - math.lgamma(k + 1))
            for k in range(16)
        )
        got = _conflict_probability(10**6, num_sets=65536, assoc=16)
        assert got == pytest.approx(1.0 - poisson_le, abs=1e-3)

    def test_monotone_decreasing_in_assoc(self):
        probs = [
            _conflict_probability(10**6, 4096, assoc)
            for assoc in (16, 64, 256, 512)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_miss_rate_path_with_million_line_histogram(self):
        # Drive the full expected_misses loop through the conflict branch
        # with stack distances up to 10^6 against an assoc-16 geometry
        # (capacity 2^21 lines keeps every distance below the Mattson cut).
        import math
        distances = {str(2**i): 1000 for i in range(5, 21)}
        distances[str(10**6)] = 1000
        accesses = sum(int(c) for c in distances.values()) + 1
        profile = StackDistanceProfile.from_dict({
            "line_sizes": [64],
            "records": accesses,
            "histograms": {"64": distances},
            "colds": {"64": 1},
            "counts": {"64": accesses},
        })
        config = CacheConfig(size=(2**21) * 64, assoc=16, line_size=64)
        rate = profile.miss_rate(config)
        assert math.isfinite(rate)
        assert 0.0 < rate < 1.0


class TestTangModel:
    def test_block_validation(self):
        kernel = suite.make("vectoradd", "tiny")
        with pytest.raises(ValueError):
            TangL1Model(kernel, block=99)

    def test_predicts_streaming_kernel(self):
        kernel = suite.make("vectoradd", "tiny")
        model = TangL1Model(kernel)
        config = PAPER_BASELINE.l1
        truth = simulate(execute_kernel(kernel, 15), PAPER_BASELINE).l1_miss_rate
        assert abs(model.predict_l1_miss_rate(config) - truth) < 0.05

    def test_l2_out_of_scope(self):
        model = TangL1Model(suite.make("vectoradd", "tiny"))
        with pytest.raises(NotImplementedError, match="L1 only"):
            model.predict_l2_miss_rate(PAPER_BASELINE.l2)

    def test_single_tb_blindspot(self):
        """Tang ignores inter-TB thrashing: with many TBs per core the
        true miss rate can exceed its single-TB prediction."""
        kernel = suite.make("lib", "small")
        model = TangL1Model(kernel)
        small_l1 = CacheConfig(size=8 * 1024, assoc=2, line_size=128)
        config = PAPER_BASELINE.with_(l1=small_l1, num_cores=1)
        truth = simulate(execute_kernel(kernel, 1), config).l1_miss_rate
        predicted = model.predict_l1_miss_rate(small_l1)
        assert truth >= predicted - 0.02  # never *better* than one TB alone


class TestNugterenModel:
    def test_core_validation(self):
        kernel = suite.make("vectoradd", "tiny")
        with pytest.raises(ValueError):
            NugterenL1Model(kernel, num_cores=4, core=9)

    def test_multi_tb_awareness(self):
        """Nugteren interleaves all co-resident warps (vs Tang's one TB)."""
        kernel = suite.make("kmeans", "tiny")
        tang = TangL1Model(kernel)
        nugteren = NugterenL1Model(kernel, num_cores=1)
        assert nugteren.num_warps > len(
            kernel.launch.warps_in_block(0)
        ) or kernel.launch.num_blocks == 1

    def test_prediction_within_bounds(self):
        kernel = suite.make("srad", "tiny")
        model = NugterenL1Model(kernel)
        rate = model.predict_l1_miss_rate(PAPER_BASELINE.l1)
        assert 0.0 <= rate <= 1.0

    def test_l2_out_of_scope(self):
        model = NugterenL1Model(suite.make("vectoradd", "tiny"))
        with pytest.raises(NotImplementedError):
            model.predict_l2_miss_rate(PAPER_BASELINE.l2)

    def test_reasonable_accuracy_on_regular_kernels(self):
        config = PAPER_BASELINE.l1
        for name in ("vectoradd", "nw", "srad"):
            kernel = suite.make(name, "tiny")
            model = NugterenL1Model(kernel)
            truth = simulate(
                execute_kernel(kernel, 15), PAPER_BASELINE
            ).l1_miss_rate
            assert abs(model.predict_l1_miss_rate(config) - truth) < 0.10
