"""Tests for the external per-thread trace importer."""

from __future__ import annotations

import pytest

from repro.core.profiler import GmapProfiler, unit_streams_from_warp_traces
from repro.gpu.executor import build_warp_traces, collect_thread_traces
from repro.io.thread_trace_io import (
    load_thread_traces,
    save_thread_traces,
    warp_traces_from_thread_file,
)
from repro.workloads import suite


class TestRoundTrip:
    def test_save_load(self, tiny_vectoradd, tmp_path):
        thread_traces = collect_thread_traces(tiny_vectoradd)
        path = tmp_path / "v.ttrace"
        save_thread_traces(thread_traces, tiny_vectoradd.launch, path)
        restored, launch = load_thread_traces(path)
        assert launch == tiny_vectoradd.launch
        assert restored == thread_traces

    def test_gzip_round_trip(self, tiny_vectoradd, tmp_path):
        thread_traces = collect_thread_traces(tiny_vectoradd)
        path = tmp_path / "v.ttrace.gz"
        save_thread_traces(thread_traces, tiny_vectoradd.launch, path)
        restored, _ = load_thread_traces(path)
        assert restored == thread_traces

    def test_sync_markers_survive(self, tmp_path):
        kernel = suite.make("pathfinder", "tiny")  # barriers every iteration
        thread_traces = collect_thread_traces(kernel)
        path = tmp_path / "p.ttrace"
        save_thread_traces(thread_traces, kernel.launch, path)
        restored, _ = load_thread_traces(path)
        assert restored == thread_traces


class TestValidation:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "x.ttrace"
        path.write_text("0 0x10 0x0 4 R\n")
        with pytest.raises(ValueError, match="not a gmap-ttrace"):
            load_thread_traces(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.ttrace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_thread_traces(path)

    def test_tid_out_of_range(self, tmp_path):
        path = tmp_path / "x.ttrace"
        path.write_text("# gmap-ttrace v1 grid=1 block=32\n99 0x10 0x0 4 R\n")
        with pytest.raises(ValueError, match="malformed record"):
            load_thread_traces(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "x.ttrace"
        path.write_text("# gmap-ttrace v1 grid=1 block=32\n0 what\n")
        with pytest.raises(ValueError, match="malformed record"):
            load_thread_traces(path)

    def test_threads_without_records_are_empty(self, tmp_path):
        path = tmp_path / "x.ttrace"
        path.write_text("# gmap-ttrace v1 grid=1 block=32\n5 0x10 0x80 4 W\n")
        traces, launch = load_thread_traces(path)
        assert launch.total_threads == 32
        assert traces[5] == [(0x10, 0x80, 4, 1)]
        assert traces[0] == []


class TestFrontEndIntegration:
    def test_imported_trace_matches_native_front_end(self, tiny_kmeans, tmp_path):
        """Round-tripping thread traces through the file reproduces the
        native warp traces bit for bit."""
        path = tmp_path / "k.ttrace"
        save_thread_traces(
            collect_thread_traces(tiny_kmeans), tiny_kmeans.launch, path
        )
        imported, _ = warp_traces_from_thread_file(path)
        native = build_warp_traces(tiny_kmeans)
        assert [t.transactions for t in imported] == \
            [t.transactions for t in native]
        assert [t.instructions for t in imported] == \
            [t.instructions for t in native]

    def test_profile_from_imported_trace(self, tiny_kmeans, tmp_path):
        path = tmp_path / "k.ttrace"
        save_thread_traces(
            collect_thread_traces(tiny_kmeans), tiny_kmeans.launch, path
        )
        warp_traces, launch = warp_traces_from_thread_file(path)
        profile = GmapProfiler().profile_unit_streams(
            unit_streams_from_warp_traces(warp_traces), "warp",
            name="imported",
            grid_dim=(launch.grid_dim.x, 1, 1),
            block_dim=(launch.block_dim.x, 1, 1),
        )
        assert profile.instructions[0xE8].inter_stride.dominant()[0] == 4352

    def test_cli_profiles_ttrace(self, tiny_vectoradd, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "v.ttrace"
        save_thread_traces(
            collect_thread_traces(tiny_vectoradd), tiny_vectoradd.launch,
            trace_path,
        )
        out_path = tmp_path / "p.json"
        assert main(["profile", str(trace_path), "-o", str(out_path)]) == 0
        from repro.io.profile_io import load_profile
        profile = load_profile(out_path)
        assert profile.grid_dim == (2, 1, 1)
        assert profile.num_instructions == 3