"""Tests for the GmapProfile artifact (serialisation, obfuscation)."""

from __future__ import annotations

import pytest

from repro.core.distributions import Histogram
from repro.core.profile import GmapProfile, InstructionStats, PiProfileStats


def make_profile() -> GmapProfile:
    instr = InstructionStats(
        pc=0x900,
        base_address=0x1000_0000,
        inter_stride=Histogram({128: 31}),
        intra_stride=Histogram({64: 100, -128: 10}),
        txns_per_access=Histogram({1: 90, 2: 10}),
        size=128,
        is_store=False,
        dynamic_count=100,
    )
    pi = PiProfileStats(
        sequence=(0x900, 0x900, 0x4A0),
        probability=1.0,
        reuse=Histogram({0: 50, 7: 10}),
        reuse_fraction=0.8,
    )
    return GmapProfile(
        name="demo",
        grid_dim=(4, 1, 1),
        block_dim=(256, 1, 1),
        unit="warp",
        segment_size=128,
        pi_profiles=[pi],
        instructions={0x900: instr},
        sched_p_self=0.1,
        total_transactions=3200,
    )


class TestProfileBasics:
    def test_counts(self):
        profile = make_profile()
        assert profile.num_profiles == 1
        assert profile.num_instructions == 1
        assert profile.q == [1.0]

    def test_unit_validation(self):
        with pytest.raises(ValueError, match="unit"):
            GmapProfile(name="x", grid_dim=(1, 1, 1), block_dim=(32, 1, 1),
                        unit="banana", segment_size=128)

    def test_dominant_profile(self):
        profile = make_profile()
        profile.pi_profiles.append(
            PiProfileStats(sequence=(1,), probability=0.0)
        )
        assert profile.dominant_profile().sequence == (0x900, 0x900, 0x4A0)

    def test_dominant_profile_empty_raises(self):
        profile = make_profile()
        profile.pi_profiles = []
        with pytest.raises(ValueError):
            profile.dominant_profile()

    def test_instruction_lookup(self):
        assert make_profile().instruction(0x900).dynamic_count == 100


class TestSerialisation:
    def test_round_trip(self):
        profile = make_profile()
        restored = GmapProfile.from_dict(profile.to_dict())
        assert restored.name == profile.name
        assert restored.grid_dim == profile.grid_dim
        assert restored.block_dim == profile.block_dim
        assert restored.unit == profile.unit
        assert restored.sched_p_self == profile.sched_p_self
        assert restored.total_transactions == profile.total_transactions
        assert restored.instructions[0x900].intra_stride == \
            profile.instructions[0x900].intra_stride
        assert restored.pi_profiles[0].sequence == profile.pi_profiles[0].sequence
        assert restored.pi_profiles[0].reuse == profile.pi_profiles[0].reuse

    def test_copy_is_deep(self):
        profile = make_profile()
        clone = profile.copy()
        clone.instructions[0x900].base_address = 0
        assert profile.instructions[0x900].base_address == 0x1000_0000

    def test_schema_version_enforced(self):
        data = make_profile().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            GmapProfile.from_dict(data)

    def test_pc_keys_are_ints_after_round_trip(self):
        restored = GmapProfile.from_dict(make_profile().to_dict())
        assert set(restored.instructions) == {0x900}


class TestObfuscation:
    def test_bases_change_stats_survive(self):
        profile = make_profile()
        hidden = profile.obfuscated()
        original_stats = profile.instructions[0x900]
        hidden_stats = hidden.instructions[0x900]
        assert hidden_stats.base_address != original_stats.base_address
        assert hidden_stats.intra_stride == original_stats.intra_stride
        assert hidden_stats.inter_stride == original_stats.inter_stride
        assert hidden.pi_profiles[0].reuse == profile.pi_profiles[0].reuse

    def test_original_untouched(self):
        profile = make_profile()
        profile.obfuscated()
        assert profile.instructions[0x900].base_address == 0x1000_0000

    def test_same_region_instructions_keep_relative_offset(self):
        """Two PCs 64B apart touch one array: the clone must too, or
        cross-PC line sharing would vanish from the proxy."""
        profile = make_profile()
        profile.instructions[0x4A0] = InstructionStats(
            pc=0x4A0, base_address=0x1000_0000 + 64
        )
        hidden = profile.obfuscated()
        delta = (hidden.instructions[0x4A0].base_address
                 - hidden.instructions[0x900].base_address)
        assert delta == 64

    def test_distant_regions_stay_disjoint(self):
        profile = make_profile()
        profile.instructions[0x4A0] = InstructionStats(
            pc=0x4A0, base_address=0x1000_0000 + (1 << 27)  # a far array
        )
        hidden = profile.obfuscated()
        bases = sorted(s.base_address for s in hidden.instructions.values())
        assert bases[1] - bases[0] >= 1 << 24

    def test_deterministic_given_seed(self):
        a = make_profile().obfuscated(base_seed=5)
        b = make_profile().obfuscated(base_seed=5)
        assert a.instructions[0x900].base_address == \
            b.instructions[0x900].base_address
