"""Unit tests for the lease-file ownership protocol (core.lease).

Everything time-dependent runs on an injected fake clock, so expiry and
takeover are exercised without sleeping.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.lease import (
    ACQUIRED_FRESH,
    ACQUIRED_TAKEOVER,
    LeaseFile,
    LeaseHeartbeat,
    LeaseLostError,
    default_owner_id,
)


class FakeClock:
    """A settable wall clock for driving lease expiry deterministically."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def _lease(tmp_path, clock, owner="owner-a", ttl=10.0):
    return LeaseFile(tmp_path / "build.lease", owner_id=owner, ttl=ttl,
                     clock=clock)


class TestAcquire:
    def test_fresh_acquire_writes_lease_body(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        assert lease.try_acquire() == ACQUIRED_FRESH
        assert lease.held
        body = json.loads(lease.path.read_text())
        assert body["owner"] == "owner-a"
        assert body["expires_at"] == pytest.approx(clock.now + 10.0)

    def test_live_lease_blocks_other_owners(self, tmp_path, clock):
        holder = _lease(tmp_path, clock, owner="holder")
        contender = _lease(tmp_path, clock, owner="contender")
        assert holder.try_acquire() == ACQUIRED_FRESH
        assert contender.try_acquire() is None
        assert not contender.held

    def test_expired_lease_is_taken_over(self, tmp_path, clock):
        holder = _lease(tmp_path, clock, owner="holder", ttl=5.0)
        assert holder.try_acquire() == ACQUIRED_FRESH
        clock.advance(6.0)
        contender = _lease(tmp_path, clock, owner="contender")
        assert contender.try_acquire() == ACQUIRED_TAKEOVER
        body = json.loads(contender.path.read_text())
        assert body["owner"] == "contender"

    def test_reacquiring_own_stale_lease_is_fresh_not_takeover(
            self, tmp_path, clock):
        lease = _lease(tmp_path, clock, ttl=5.0)
        assert lease.try_acquire() == ACQUIRED_FRESH
        clock.advance(6.0)
        again = _lease(tmp_path, clock)  # same owner id, new handle
        assert again.try_acquire() == ACQUIRED_FRESH

    def test_malformed_lease_file_reads_as_expired(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        lease.path.parent.mkdir(parents=True, exist_ok=True)
        lease.path.write_text("{not json", encoding="utf-8")
        body = lease.read()
        assert body is not None and body["expires_at"] == 0.0
        assert lease.try_acquire() == ACQUIRED_TAKEOVER

    def test_non_dict_lease_body_reads_as_expired(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        lease.path.parent.mkdir(parents=True, exist_ok=True)
        lease.path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert lease.try_acquire() == ACQUIRED_TAKEOVER


class TestRenewRelease:
    def test_renew_pushes_expiry_out(self, tmp_path, clock):
        lease = _lease(tmp_path, clock, ttl=10.0)
        assert lease.try_acquire() == ACQUIRED_FRESH
        clock.advance(7.0)
        lease.renew()
        body = json.loads(lease.path.read_text())
        assert body["expires_at"] == pytest.approx(clock.now + 10.0)

    def test_renew_after_takeover_raises_and_clears_held(self, tmp_path,
                                                         clock):
        holder = _lease(tmp_path, clock, owner="holder", ttl=5.0)
        assert holder.try_acquire() == ACQUIRED_FRESH
        clock.advance(6.0)
        contender = _lease(tmp_path, clock, owner="contender")
        assert contender.try_acquire() == ACQUIRED_TAKEOVER
        with pytest.raises(LeaseLostError):
            holder.renew()
        assert not holder.held

    def test_renew_of_vanished_lease_raises(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        assert lease.try_acquire() == ACQUIRED_FRESH
        lease.path.unlink()
        with pytest.raises(LeaseLostError):
            lease.renew()

    def test_release_unlinks_own_lease(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        assert lease.try_acquire() == ACQUIRED_FRESH
        lease.release()
        assert not lease.held
        assert not lease.path.exists()

    def test_release_leaves_foreign_lease_alone(self, tmp_path, clock):
        holder = _lease(tmp_path, clock, owner="holder", ttl=5.0)
        assert holder.try_acquire() == ACQUIRED_FRESH
        clock.advance(6.0)
        contender = _lease(tmp_path, clock, owner="contender")
        assert contender.try_acquire() == ACQUIRED_TAKEOVER
        holder.release()  # must not delete the contender's lease
        assert holder.path.exists()
        body = json.loads(holder.path.read_text())
        assert body["owner"] == "contender"

    def test_release_is_idempotent(self, tmp_path, clock):
        lease = _lease(tmp_path, clock)
        assert lease.try_acquire() == ACQUIRED_FRESH
        lease.release()
        lease.release()  # second release of a gone lease: no raise


class TestContention:
    def test_exactly_one_of_many_contenders_wins(self, tmp_path, clock):
        contenders = [
            _lease(tmp_path, clock, owner=f"c{i}") for i in range(8)
        ]
        outcomes = [lease.try_acquire() for lease in contenders]
        assert outcomes.count(ACQUIRED_FRESH) == 1
        assert outcomes.count(None) == len(contenders) - 1

    def test_exactly_one_takeover_of_an_expired_lease(self, tmp_path, clock):
        holder = _lease(tmp_path, clock, owner="holder", ttl=1.0)
        assert holder.try_acquire() == ACQUIRED_FRESH
        clock.advance(2.0)
        contenders = [
            _lease(tmp_path, clock, owner=f"c{i}") for i in range(8)
        ]
        barrier = threading.Barrier(len(contenders))
        results = [None] * len(contenders)

        def attempt(i):
            barrier.wait()
            results[i] = contenders[i].try_acquire()

        threads = [threading.Thread(target=attempt, args=(i,))
                   for i in range(len(contenders))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # A winner that buried the corpse reports takeover; one that found
        # the path already buried (and free) reports fresh — both valid.
        assert all(r in (ACQUIRED_TAKEOVER, ACQUIRED_FRESH)
                   for r in results if r is not None)
        winners = [c for c, r in zip(contenders, results) if r is not None]
        assert winners, "an expired lease must be taken over"
        # At most one *surviving* owner: a winner whose lease was raced
        # away discovers it on the next renew (the heartbeat's move).
        survivors = []
        for winner in winners:
            try:
                winner.renew()
            except LeaseLostError:
                continue
            survivors.append(winner)
        assert len(survivors) == 1
        body = json.loads(survivors[0].path.read_text())
        assert body["owner"] == survivors[0].owner_id


class TestHeartbeat:
    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        # Real clock here: the heartbeat thread waits on wall time.
        lease = LeaseFile(tmp_path / "hb.lease", owner_id="hb", ttl=0.4)
        assert lease.try_acquire() == ACQUIRED_FRESH
        beat = LeaseHeartbeat(lease).start()
        try:
            done = threading.Event()
            done.wait(1.2)  # several TTLs; renewals must keep it live
            body = lease.read()
            assert body is not None and body["owner"] == "hb"
            import time as _time
            assert body["expires_at"] > _time.time()
            assert not beat.lost.is_set()
        finally:
            beat.stop()

    def test_heartbeat_sets_lost_after_takeover(self, tmp_path):
        lease = LeaseFile(tmp_path / "hb.lease", owner_id="victim", ttl=0.3)
        assert lease.try_acquire() == ACQUIRED_FRESH
        beat = LeaseHeartbeat(lease, interval=0.05).start()
        try:
            # Simulate a takeover out from under the holder.
            lease.path.write_text(json.dumps({
                "schema": 1, "owner": "usurper",
                "acquired_at": 0.0, "expires_at": 1e18,
            }), encoding="utf-8")
            assert beat.lost.wait(2.0)
        finally:
            beat.stop()


def test_default_owner_ids_are_unique():
    ids = {default_owner_id() for _ in range(100)}
    assert len(ids) == 100
    sample = next(iter(ids))
    host, pid, _seq = sample.rsplit(":", 2)
    assert int(pid) > 0
