"""Tests for the multi-level memory hierarchy."""

from __future__ import annotations

import pytest

from repro.memsim.config import CacheConfig, DramConfig, PrefetcherConfig, SimConfig
from repro.memsim.hierarchy import MemoryHierarchy


def make_config(**overrides) -> SimConfig:
    defaults = dict(
        num_cores=2,
        l1=CacheConfig(size=8 * 1024, assoc=4, line_size=128),
        l2=CacheConfig(size=128 * 1024, assoc=8, line_size=128,
                       hit_latency=30, banks=4),
        dram=DramConfig(channels=2),
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestSimConfig:
    def test_narrow_l2_line_splits_l1_fill(self):
        """The paper's 64B-L2 sweep points under a 128B L1 line: one L1
        miss fetches two L2 lines."""
        config = make_config(
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=128),
            l2=CacheConfig(size=128 * 1024, assoc=8, line_size=64,
                           hit_latency=30, banks=4),
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x1000, 128, False)
        assert h.l2.stats.accesses == 2

    def test_with_updates_functionally(self):
        config = make_config()
        other = config.with_(num_cores=7)
        assert other.num_cores == 7
        assert config.num_cores == 2

    def test_num_cores_validation(self):
        with pytest.raises(ValueError):
            make_config(num_cores=0)

    def test_dram_cycle_ratio(self):
        config = make_config()
        assert config.dram_cycle_in_core_cycles == pytest.approx(1400 / 924)


class TestDemandPath:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 0x10, 0x1000, 128, False)  # cold
        latency = h.access(0, 10.0, 0x10, 0x1000, 128, False)
        assert latency == pytest.approx(1.0)

    def test_miss_latency_exceeds_l2_hit_latency(self):
        h = MemoryHierarchy(make_config())
        latency = h.access(0, 0.0, 0x10, 0x1000, 128, False)
        assert latency > 30

    def test_l2_hit_after_other_core_fetch(self):
        """Core 1 misses its L1 but hits the shared L2 on core 0's line."""
        h = MemoryHierarchy(make_config())
        cold = h.access(0, 0.0, 0x10, 0x1000, 128, False)
        warm = h.access(1, 1000.0, 0x10, 0x1000, 128, False)
        assert warm < cold
        assert h.l2.stats.hits >= 1

    def test_private_l1s(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 0x10, 0x1000, 128, False)
        assert h.l1s[0].contains(0x1000)
        assert not h.l1s[1].contains(0x1000)

    def test_stats_aggregation(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 1, 0, 128, False)
        h.access(1, 0.0, 1, 1 << 20, 128, False)
        total = h.l1_stats()
        assert total.accesses == 2
        assert total.misses == 2

    def test_dram_reached_on_l2_miss(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 1, 0x40_0000, 128, False)
        assert h.dram.stats.reads == 1


class TestTransactionSplitting:
    def test_wide_transaction_splits_into_l1_lines(self):
        config = make_config(
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=32),
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x1000, 128, False)
        assert h.l1s[0].stats.accesses == 4  # 128B over 32B sectors

    def test_split_sectors_fill_independently(self):
        config = make_config(
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=32),
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x1000, 128, False)
        for offset in (0, 32, 64, 96):
            assert h.l1s[0].contains(0x1000 + offset)

    def test_no_split_when_line_covers(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 1, 0x1000, 128, False)
        assert h.l1s[0].stats.accesses == 1


class TestWritebackChain:
    def test_dirty_l1_victim_reaches_l2(self):
        config = make_config(
            l1=CacheConfig(size=256, assoc=2, line_size=128),  # 1 set, 2 ways
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x0000, 128, True)   # dirty line A
        h.access(0, 10.0, 1, 0x1000, 128, False)
        h.access(0, 20.0, 1, 0x2000, 128, False)  # evicts dirty A
        assert h.l1s[0].stats.writebacks == 1
        # The writeback re-touched A in L2 (it was filled on the miss).
        assert h.l2.stats.hits >= 1

    def test_dirty_l2_victim_writes_dram(self):
        config = make_config(
            l1=CacheConfig(size=256, assoc=2, line_size=128),
            l2=CacheConfig(size=1024, assoc=2, line_size=128,
                           hit_latency=30, banks=1),  # 4 sets
        )
        h = MemoryHierarchy(config)
        # Dirty a line in L1, force it out to L2, then thrash that L2 set.
        h.access(0, 0.0, 1, 0x0000, 128, True)
        h.access(0, 1.0, 1, 0x1000, 128, False)
        h.access(0, 2.0, 1, 0x2000, 128, False)   # L1 evicts dirty 0x0
        writes_before = h.dram.stats.writes
        for k in range(3, 9):
            h.access(0, float(k), 1, k * 0x2000, 128, False)
        assert h.dram.stats.writes > writes_before


class TestMshrsInHierarchy:
    def test_inflight_merge(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 1, 0x5000, 128, False)
        # Second access at the same instant to a different offset of the
        # same line: L1 filled synchronously in this model, so force a
        # same-line different-set... instead verify via mshr lookup path:
        assert h.l1_mshrs[0].outstanding >= 1

    def test_l2_merge_across_cores(self):
        h = MemoryHierarchy(make_config())
        h.access(0, 0.0, 1, 0x9000, 128, False)
        # Same line from core 1 at the same time: L2 already holds it
        # (synchronous fill) -> hit rather than duplicate DRAM fetch.
        h.access(1, 0.0, 1, 0x9000, 128, False)
        assert h.dram.stats.reads == 1


class TestInclusionPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="l2_inclusion"):
            make_config(l2_inclusion="exclusive")

    def _small_l2(self, inclusion):
        return make_config(
            l2=CacheConfig(size=512, assoc=2, line_size=128,
                           hit_latency=30, banks=1),  # 2 sets x 2 ways
            l2_inclusion=inclusion,
        )

    def test_inclusive_l2_eviction_back_invalidates_l1(self):
        h = MemoryHierarchy(self._small_l2("inclusive"))
        h.access(0, 1000.0, 1, 0x0000, 128, False)
        assert h.l1s[0].contains(0x0000)
        # Thrash L2 set 0 (lines 0, 2, 4, ... map alternately): fill enough
        # distinct lines to force 0x0000 out of the 2-way L2.
        for k in range(1, 4):
            h.access(0, 1000.0 + k, 1, k * 0x200, 128, False)
        assert not h.l2.contains(0x0000)
        assert not h.l1s[0].contains(0x0000)

    def test_non_inclusive_l1_keeps_line(self):
        h = MemoryHierarchy(self._small_l2("non-inclusive"))
        h.access(0, 1000.0, 1, 0x0000, 128, False)
        for k in range(1, 4):
            h.access(0, 1000.0 + k, 1, k * 0x200, 128, False)
        assert not h.l2.contains(0x0000)
        assert h.l1s[0].contains(0x0000)  # L1 copy survives

    def test_inclusive_dirty_l1_copy_flushed_to_dram(self):
        h = MemoryHierarchy(self._small_l2("inclusive"))
        h.access(0, 1000.0, 1, 0x0000, 128, True)  # dirty in L1
        writes_before = h.dram.stats.writes
        for k in range(1, 4):
            h.access(0, 1000.0 + k, 1, k * 0x200, 128, False)
        assert not h.l1s[0].contains(0x0000)
        assert h.dram.stats.writes > writes_before


class TestInterconnect:
    def test_noc_latency_adds_to_l2_path(self):
        # Issue outside the DRAM refresh blackout, which would otherwise
        # absorb the traversal delay into the same completion time.
        fast = MemoryHierarchy(make_config(noc_latency=0.0))
        slow = MemoryHierarchy(make_config(noc_latency=50.0))
        a = fast.access(0, 1000.0, 1, 0x40_0000, 128, False)
        b = slow.access(0, 1000.0, 1, 0x40_0000, 128, False)
        assert b == pytest.approx(a + 50.0)

    def test_noc_latency_does_not_touch_l1_hits(self):
        h = MemoryHierarchy(make_config(noc_latency=50.0))
        h.access(0, 1000.0, 1, 0x1000, 128, False)
        assert h.access(0, 2000.0, 1, 0x1000, 128, False) == pytest.approx(1.0)


class TestPrefetcherIntegration:
    def test_l1_stride_prefetcher_fills(self):
        config = make_config(
            l1_prefetcher=PrefetcherConfig(kind="stride", degree=2),
        )
        h = MemoryHierarchy(config)
        for i in range(3):
            h.access(0, float(i), 0x10, i * 128, 128, False)
        assert h.l1s[0].stats.prefetch_fills > 0
        # The prefetched next line should now hit.
        latency = h.access(0, 10.0, 0x10, 3 * 128, 128, False)
        assert latency == pytest.approx(1.0)
        assert h.l1s[0].stats.prefetch_hits >= 1

    def test_l2_stream_prefetcher_fills(self):
        config = make_config(
            l2_prefetcher=PrefetcherConfig(kind="stream", degree=4,
                                           stream_window=8),
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x0, 128, False)
        h.access(0, 1.0, 1, 0x100, 128, False)  # +2 lines: stream confirmed
        assert h.l2.stats.prefetch_fills > 0

    def test_prefetch_traffic_reaches_dram(self):
        config = make_config(
            l2_prefetcher=PrefetcherConfig(kind="stream", degree=4,
                                           stream_window=8),
        )
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x0, 128, False)
        reads_before = h.dram.stats.reads
        h.access(0, 1.0, 1, 0x100, 128, False)
        assert h.dram.stats.reads > reads_before + 1  # demand + prefetches

    def test_no_prefetcher_by_default(self):
        h = MemoryHierarchy(make_config())
        assert h.l1_prefetchers[0] is None
        assert h.l2_prefetcher is None
