"""Fuzz/property tests for the ``.npz`` columnar trace loader.

The loader is a parsing boundary: artifacts cross machines and caches, so
a truncated, bit-flipped, or adversarial container must surface as a
*typed* error (:class:`~repro.core.integrity.CorruptArtifactError` or a
``ValueError`` for schema mismatches) — never a segfault, a hang, an
unbounded allocation, or a random exception leaking from the zip/numpy
internals.

Mutations are seeded (no flaky fuzzing): every corpus is reproducible
from the printed seed.
"""

from __future__ import annotations

import json
import random
import zipfile

import pytest

np = pytest.importorskip("numpy")

from repro.core.integrity import CorruptArtifactError  # noqa: E402
from repro.io.trace_io import load_warp_traces, save_warp_traces  # noqa: E402
from repro.memsim.arrays import (  # noqa: E402
    FORMAT_THREAD,
    FORMAT_WARP,
    MAX_META_BYTES,
    META_MEMBER,
    load_columns,
)

SEED = 20170618
#: The only exception types a malformed container may raise.
TYPED_ERRORS = (CorruptArtifactError, ValueError)


@pytest.fixture(scope="module")
def container(tmp_path_factory):
    """A small, valid warp-trace container plus its pristine bytes."""
    from repro.gpu.executor import build_warp_traces
    from repro.workloads import suite

    path = tmp_path_factory.mktemp("npz-fuzz") / "fuzz.trace.npz"
    kernel = suite.make("vectoradd", scale="tiny")
    save_warp_traces(build_warp_traces(kernel), path)
    return path, path.read_bytes()


def _mutated(tmp_path, blob: bytes, index: int) -> "Path":
    target = tmp_path / f"mutant-{index}.trace.npz"
    target.write_bytes(blob)
    return target


class TestTruncation:
    def test_every_truncation_point_is_typed(self, container, tmp_path):
        _, pristine = container
        rng = random.Random(SEED)
        cuts = sorted(
            {rng.randrange(0, len(pristine)) for _ in range(24)}
            | {0, 1, len(pristine) - 1})
        for i, cut in enumerate(cuts):
            target = _mutated(tmp_path, pristine[:cut], i)
            with pytest.raises(TYPED_ERRORS):
                load_warp_traces(target)

    def test_empty_and_garbage_files_are_typed(self, tmp_path):
        rng = random.Random(SEED + 1)
        empty = tmp_path / "empty.trace.npz"
        empty.write_bytes(b"")
        with pytest.raises(TYPED_ERRORS):
            load_warp_traces(empty)
        garbage = tmp_path / "garbage.trace.npz"
        garbage.write_bytes(bytes(rng.randrange(256) for _ in range(4096)))
        with pytest.raises(TYPED_ERRORS):
            load_warp_traces(garbage)


class TestBitFlips:
    def test_flipped_bytes_load_identically_or_fail_typed(
            self, container, tmp_path):
        """A single flipped byte either leaves the payload intact (flip
        landed in zip padding) or raises a typed error — never anything
        else, and silent data corruption must be caught by the checksum."""
        path, pristine = container
        original = load_warp_traces(path)
        rng = random.Random(SEED + 2)
        outcomes = {"typed": 0, "intact": 0}
        for i in range(40):
            blob = bytearray(pristine)
            index = rng.randrange(len(blob))
            blob[index] ^= (1 << rng.randrange(8))
            target = _mutated(tmp_path, bytes(blob), i)
            try:
                reloaded = load_warp_traces(target)
            except TYPED_ERRORS:
                outcomes["typed"] += 1
                continue
            outcomes["intact"] += 1
            assert len(reloaded) == len(original)
            for a, b in zip(reloaded, original):
                assert a.transactions == b.transactions
        # The corpus must actually exercise the reject path.
        assert outcomes["typed"] > 0, outcomes

    def test_data_region_flip_fails_checksum(self, container, tmp_path):
        """Flips inside a column's payload must be caught, not returned."""
        path, pristine = container
        with zipfile.ZipFile(path) as zf:
            info = next(i for i in zf.infolist()
                        if i.filename == "txn_address.npy")
        blob = bytearray(pristine)
        # Flip a byte well inside the member's data region (past the
        # ~128-byte local header + npy header).
        blob[info.header_offset + 256] ^= 0xFF
        target = _mutated(tmp_path, bytes(blob), 999)
        with pytest.raises(TYPED_ERRORS):
            load_warp_traces(target)


class TestSchemaAttacks:
    def _rewrite_meta(self, path, target, mutate):
        """Copy a container, passing its parsed ``_meta`` through
        ``mutate`` (arrays and checksum untouched)."""
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        raw = arrays.pop(META_MEMBER)
        meta = json.loads(bytes(raw.astype(np.uint8).tobytes()))
        mutate(meta)
        blob = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
        with open(target, "wb") as fh:
            np.savez(fh, **{META_MEMBER: blob}, **arrays)
        return target

    def test_wrong_dtype_table_is_typed(self, container, tmp_path):
        path, _ = container
        target = self._rewrite_meta(
            path, tmp_path / "dtype.trace.npz",
            lambda meta: meta["columns"].__setitem__("txn_address", "<f2"))
        with pytest.raises(CorruptArtifactError, match="dtype"):
            load_warp_traces(target)

    def test_missing_declared_column_is_typed(self, container, tmp_path):
        path, _ = container
        target = self._rewrite_meta(
            path, tmp_path / "ghost.trace.npz",
            lambda meta: meta["columns"].__setitem__("ghost_col", "<i8"))
        with pytest.raises(CorruptArtifactError, match="missing"):
            load_warp_traces(target)

    def test_wrong_format_tag_is_typed(self, container):
        path, _ = container
        with pytest.raises(ValueError, match="container"):
            load_columns(path, FORMAT_THREAD)

    def test_wrong_schema_version_is_typed(self, container, tmp_path):
        path, _ = container
        target = self._rewrite_meta(
            path, tmp_path / "vers.trace.npz",
            lambda meta: meta.__setitem__("schema_version", 9999))
        with pytest.raises(ValueError, match="schema_version"):
            load_warp_traces(target)

    def test_non_object_meta_is_typed(self, container, tmp_path):
        path, _ = container
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        arrays.pop(META_MEMBER)
        blob = np.frombuffer(b'"just a string"', dtype=np.uint8)
        target = tmp_path / "strmeta.trace.npz"
        with open(target, "wb") as fh:
            np.savez(fh, **{META_MEMBER: blob}, **arrays)
        with pytest.raises(CorruptArtifactError):
            load_warp_traces(target)


class TestBoundedRead:
    def test_oversized_meta_is_rejected_from_the_directory(
            self, container, tmp_path):
        """A multi-megabyte ``_meta`` is refused via the zip central
        directory's *declared* size — before the member is read."""
        path, _ = container
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        arrays.pop(META_MEMBER)
        huge = {"pad": "x" * (MAX_META_BYTES + 4096)}
        blob = np.frombuffer(json.dumps(huge).encode("utf-8"),
                             dtype=np.uint8)
        target = tmp_path / "huge.trace.npz"
        with open(target, "wb") as fh:
            np.savez(fh, **{META_MEMBER: blob}, **arrays)
        with pytest.raises(CorruptArtifactError, match="declares"):
            load_warp_traces(target)

    def test_valid_container_roundtrips(self, container):
        """Control: the pristine container still loads and verifies."""
        path, _ = container
        arrays, meta = load_columns(path, FORMAT_WARP, verify=True)
        assert meta["format"] == FORMAT_WARP
        assert "txn_address" in arrays
