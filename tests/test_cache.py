"""Tests for the set-associative cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reuse import miss_rate_from_distances, stack_distances
from repro.memsim.cache import SetAssociativeCache, Victim
from repro.memsim.config import CacheConfig


def make_cache(size=1024, assoc=2, line=64) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(size=size, assoc=assoc, line_size=line))


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(size=16 * 1024, assoc=4, line_size=128).num_sets == 32

    def test_describe(self):
        assert CacheConfig(size=16 * 1024, assoc=4, line_size=128).describe() == \
            "16KB 4-way 128B"

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, assoc=2, line_size=64)  # not power of two
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=0, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=2, line_size=96)
        with pytest.raises(ValueError):
            CacheConfig(size=1024, assoc=3, line_size=64)  # non-pow2 sets


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        hit, _ = cache.access(0x100)
        assert not hit
        hit, _ = cache.access(0x100)
        assert hit

    def test_same_line_different_offsets_hit(self):
        cache = make_cache(line=64)
        cache.access(0x100)
        hit, _ = cache.access(0x13F)
        assert hit

    def test_line_address(self):
        cache = make_cache(line=64)
        assert cache.line_address(0x13F) == 0x100
        assert cache.line_address(0x140) == 0x140

    def test_stats_counts(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_contains_does_not_touch_lru(self):
        cache = make_cache(size=128, assoc=2, line=64)  # one set of 2
        cache.access(0)
        cache.access(64)
        cache.contains(0)  # must NOT refresh line 0
        cache.access(128)  # evicts LRU = line 0
        assert not cache.contains(0)
        assert cache.contains(64)


class TestLruReplacement:
    def test_lru_victim_selected(self):
        cache = make_cache(size=128, assoc=2, line=64)  # fully assoc pair
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh line 0
        _, victim = cache.access(128)
        assert victim is not None
        assert victim.address == 64

    def test_eviction_count(self):
        cache = make_cache(size=128, assoc=2, line=64)
        for address in (0, 64, 128, 192):
            cache.access(address)
        assert cache.stats.evictions == 2

    def test_direct_mapped_conflicts(self):
        cache = make_cache(size=256, assoc=1, line=64)  # 4 sets
        cache.access(0)
        cache.access(256)  # same set 0
        hit, _ = cache.access(0)
        assert not hit

    def test_cyclic_thrash_zero_hits(self):
        """Cyclic access to capacity+1 lines under LRU never hits."""
        cache = make_cache(size=256, assoc=4, line=64)  # 4 lines, 1 set
        hits = 0
        for _ in range(10):
            for line in range(5):
                hit, _ = cache.access(line * 256)  # all map to set 0
                hits += hit
        assert hits == 0


class TestWritePolicy:
    def test_store_marks_dirty(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0, is_store=True)
        cache.access(64)
        _, victim = cache.access(128)  # evicts line 0 (LRU, dirty)
        assert victim == Victim(address=0, dirty=True)
        assert cache.stats.writebacks == 1

    def test_store_hit_dirties_clean_line(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0)
        cache.access(0, is_store=True)
        cache.access(64)
        _, victim = cache.access(128)
        assert victim.dirty

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.access(0)
        cache.access(64)
        cache.access(128)
        assert cache.stats.writebacks == 0


class TestPrefetchAccounting:
    def test_prefetch_fill_then_demand_hit(self):
        cache = make_cache()
        cache.prefetch_fill(0x200)
        assert cache.stats.prefetch_fills == 1
        hit, _ = cache.access(0x200)
        assert hit
        assert cache.stats.prefetch_hits == 1

    def test_prefetch_hit_counted_once(self):
        cache = make_cache()
        cache.prefetch_fill(0x200)
        cache.access(0x200)
        cache.access(0x200)
        assert cache.stats.prefetch_hits == 1

    def test_prefetch_existing_line_is_noop(self):
        cache = make_cache()
        cache.access(0x200)
        assert cache.prefetch_fill(0x200) is None
        assert cache.stats.prefetch_fills == 0

    def test_prefetch_accuracy(self):
        cache = make_cache()
        cache.prefetch_fill(0)
        cache.prefetch_fill(4096)
        cache.access(0)
        assert cache.stats.prefetch_accuracy == pytest.approx(0.5)


class TestMaintenance:
    def test_invalidate(self):
        cache = make_cache()
        cache.access(0, is_store=True)
        victim = cache.invalidate(0)
        assert victim.dirty
        assert not cache.contains(0)
        assert cache.invalidate(0) is None

    def test_flush_dirty(self):
        cache = make_cache()
        cache.access(0, is_store=True)
        cache.access(64)
        assert cache.flush_dirty() == 1
        assert cache.occupied_lines == 0

    def test_occupied_lines(self):
        cache = make_cache()
        for i in range(5):
            cache.access(i * 64)
        assert cache.occupied_lines == 5


class TestAgainstStackDistanceOracle:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=200),
           st.sampled_from([1, 2, 4, 8]))
    def test_fully_associative_matches_mattson(self, lines, capacity):
        """A 1-set LRU cache is exactly the Mattson stack model."""
        cache = SetAssociativeCache(
            CacheConfig(size=64 * capacity, assoc=capacity, line_size=64)
        )
        misses = 0
        for line in lines:
            hit, _ = cache.access(line * 1024 * 64)  # force set 0? no: use same set
        # Recompute properly: all addresses must map to the single set.
        cache = SetAssociativeCache(
            CacheConfig(size=64 * capacity, assoc=capacity, line_size=64)
        )
        assert cache.config.num_sets == 1
        for line in lines:
            hit, _ = cache.access(line * 64)
            misses += not hit
        expected = miss_rate_from_distances(stack_distances(lines), capacity)
        assert misses / len(lines) == pytest.approx(expected)
