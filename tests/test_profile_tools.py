"""Tests for profile merging and profile-distance tooling."""

from __future__ import annotations

import pytest

from repro.core.generator import ProxyGenerator
from repro.core.profile import merge_profiles, profile_distance
from repro.core.profiler import GmapProfiler
from repro.workloads import suite
from repro.workloads.base import WorkloadScale


def profile_of(name, scale="tiny"):
    return GmapProfiler().profile(suite.make(name, scale))


class TestProfileDistance:
    def test_self_distance_zero(self, kmeans_profile):
        d = profile_distance(kmeans_profile, kmeans_profile)
        assert d["inter_stride"] == pytest.approx(0.0)
        assert d["intra_stride"] == pytest.approx(0.0)
        assert d["reuse"] == pytest.approx(0.0)
        assert d["only_in_a"] == 0 and d["only_in_b"] == 0

    def test_different_kernels_far_apart(self, kmeans_profile):
        other = profile_of("srad")
        d = profile_distance(kmeans_profile, other)
        assert d["shared_pcs"] == 0
        assert d["only_in_a"] > 0 and d["only_in_b"] > 0

    def test_clone_profile_close(self, tiny_kmeans, kmeans_profile):
        from repro.core.profiler import unit_streams_from_warp_traces

        traces = ProxyGenerator(kmeans_profile, seed=4).generate_warp_traces()
        units = unit_streams_from_warp_traces(traces)
        clone_profile = GmapProfiler().profile_unit_streams(
            units, "warp", name="clone",
            grid_dim=kmeans_profile.grid_dim,
            block_dim=kmeans_profile.block_dim,
        )
        d = profile_distance(kmeans_profile, clone_profile)
        assert d["inter_stride"] < 0.1
        assert d["txns_per_access"] < 0.1
        assert d["pi_count_delta"] == 0

    def test_obfuscation_invisible_to_distance(self, kmeans_profile):
        """Distance is over distributions, not addresses: obfuscation
        changes nothing."""
        d = profile_distance(kmeans_profile, kmeans_profile.obfuscated())
        assert d["inter_stride"] == pytest.approx(0.0)
        assert d["reuse"] == pytest.approx(0.0)


class TestMergeProfiles:
    def test_needs_input(self):
        with pytest.raises(ValueError):
            merge_profiles([])

    def test_geometry_must_agree(self, kmeans_profile):
        other = GmapProfiler().profile(
            suite.make("kmeans", WorkloadScale(blocks=1, iters_factor=0.25))
        )
        with pytest.raises(ValueError, match="launch geometry"):
            merge_profiles([kmeans_profile, other])

    def test_merge_with_self_preserves_shape(self, kmeans_profile):
        merged = merge_profiles([kmeans_profile, kmeans_profile], name="x2")
        assert merged.name == "x2"
        assert merged.total_transactions == 2 * kmeans_profile.total_transactions
        # Distribution shapes unchanged (counts doubled).
        d = profile_distance(kmeans_profile, merged)
        assert d["inter_stride"] == pytest.approx(0.0)
        assert d["intra_stride"] == pytest.approx(0.0)

    def test_pi_probabilities_pool_to_one(self, kmeans_profile):
        merged = merge_profiles([kmeans_profile, kmeans_profile])
        assert sum(p.probability for p in merged.pi_profiles) == \
            pytest.approx(1.0)

    def test_merged_profile_generates(self, kmeans_profile):
        merged = merge_profiles([kmeans_profile, kmeans_profile])
        traces = ProxyGenerator(merged, seed=7).generate_warp_traces()
        assert traces

    def test_disjoint_instruction_sets_union(self, kmeans_profile):
        other = kmeans_profile.copy()
        stats = other.instructions.pop(0xF0)
        stats_dict = stats.to_dict()
        stats_dict["pc"] = 0x999
        from repro.core.profile import InstructionStats
        other.instructions[0x999] = InstructionStats.from_dict(stats_dict)
        merged = merge_profiles([kmeans_profile, other])
        assert {0xE8, 0xF0, 0x999} <= set(merged.instructions)

    def test_original_inputs_untouched(self, kmeans_profile):
        before = kmeans_profile.instructions[0xE8].dynamic_count
        merge_profiles([kmeans_profile, kmeans_profile])
        assert kmeans_profile.instructions[0xE8].dynamic_count == before