"""Tests for the empirical histogram machinery."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    Histogram,
    chi2_distance,
    hellinger_distance,
    reuse_class,
    strides_of,
)

counts_strategy = st.dictionaries(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=1, max_value=50),
    min_size=1,
    max_size=20,
)


class TestHistogramConstruction:
    def test_empty(self):
        h = Histogram()
        assert h.empty
        assert h.total == 0
        assert h.mode() is None
        assert h.dominant() == (None, 0.0)

    def test_add_and_count(self):
        h = Histogram()
        h.add(128, 3)
        h.add(-64)
        assert h.count(128) == 3
        assert h.count(-64) == 1
        assert h.total == 4
        assert len(h) == 2

    def test_add_zero_count_is_noop(self):
        h = Histogram()
        h.add(5, 0)
        assert h.empty

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative count"):
            Histogram().add(1, -1)

    def test_from_counts_mapping(self):
        h = Histogram({4: 2, 8: 6})
        assert h.probability(8) == pytest.approx(0.75)

    def test_update_iterable(self):
        h = Histogram()
        h.update([1, 1, 2])
        assert h.count(1) == 2
        assert h.count(2) == 1

    def test_equality(self):
        assert Histogram({1: 2}) == Histogram({1: 2})
        assert Histogram({1: 2}) != Histogram({1: 3})

    def test_repr_contains_values(self):
        assert "128" in repr(Histogram({128: 4}))


class TestHistogramQueries:
    def test_support_sorted(self):
        h = Histogram({5: 1, -3: 1, 0: 1})
        assert h.support() == [-3, 0, 5]

    def test_contains(self):
        h = Histogram({128: 10})
        assert 128 in h
        assert 64 not in h

    def test_mode_ties_break_small(self):
        h = Histogram({2: 5, 1: 5})
        assert h.mode() == 1

    def test_dominant(self):
        h = Histogram({128: 75, 64: 25})
        value, freq = h.dominant()
        assert value == 128
        assert freq == pytest.approx(0.75)

    def test_mean(self):
        h = Histogram({0: 1, 10: 1})
        assert h.mean() == pytest.approx(5.0)
        assert Histogram().mean() == 0.0

    def test_entropy_degenerate_is_zero(self):
        assert Histogram({42: 100}).entropy() == pytest.approx(0.0)

    def test_entropy_uniform_two_values(self):
        assert Histogram({0: 5, 1: 5}).entropy() == pytest.approx(1.0)

    def test_percentile(self):
        h = Histogram({1: 50, 2: 30, 3: 20})
        assert h.percentile(0.5) == 1
        assert h.percentile(0.8) == 2
        assert h.percentile(1.0) == 3

    def test_percentile_validation(self):
        h = Histogram({1: 1})
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)


class TestHistogramSampling:
    def test_sample_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram().sample(random.Random(0))

    def test_sample_degenerate(self):
        h = Histogram({7: 3})
        rng = random.Random(0)
        assert all(h.sample(rng) == 7 for _ in range(20))

    def test_sample_deterministic_given_seed(self):
        h = Histogram({1: 1, 2: 2, 3: 3})
        a = h.sample_many(random.Random(42), 50)
        b = h.sample_many(random.Random(42), 50)
        assert a == b

    def test_sample_respects_weights(self):
        h = Histogram({0: 900, 1: 100})
        samples = h.sample_many(random.Random(1), 5000)
        frac = samples.count(0) / len(samples)
        assert 0.87 <= frac <= 0.93

    def test_sampling_after_mutation_uses_new_counts(self):
        h = Histogram({0: 1})
        rng = random.Random(0)
        h.sample(rng)
        h.add(1, 10_000)
        samples = h.sample_many(rng, 100)
        assert samples.count(1) > 90

    @settings(max_examples=50, deadline=None)
    @given(counts_strategy, st.integers(min_value=0, max_value=2**31))
    def test_samples_always_in_support(self, counts, seed):
        h = Histogram(counts)
        rng = random.Random(seed)
        support = set(h.support())
        assert all(h.sample(rng) in support for _ in range(20))


class TestHistogramTransforms:
    def test_scaled_counts(self):
        h = Histogram({1: 100, 2: 10, 3: 1})
        scaled = h.scaled_counts(0.1)
        assert scaled.count(1) == 10
        assert scaled.count(2) == 1
        assert scaled.count(3) == 0

    def test_scaled_counts_never_empty(self):
        h = Histogram({5: 3})
        scaled = h.scaled_counts(0.01)
        assert not scaled.empty
        assert scaled.mode() == 5

    def test_scaled_counts_invalid_factor(self):
        with pytest.raises(ValueError):
            Histogram({1: 1}).scaled_counts(0)

    def test_mapped_values_merges(self):
        h = Histogram({1: 2, 2: 3})
        mapped = h.mapped_values(lambda v: 0)
        assert mapped.count(0) == 5

    def test_truncated(self):
        h = Histogram({1: 10, 2: 5, 3: 1})
        t = h.truncated(2)
        assert t.support() == [1, 2]
        with pytest.raises(ValueError):
            h.truncated(0)

    def test_round_trip_dict(self):
        h = Histogram({-128: 3, 4096: 7})
        assert Histogram.from_dict(h.to_dict()) == h

    @settings(max_examples=50, deadline=None)
    @given(counts_strategy)
    def test_serialisation_round_trip(self, counts):
        h = Histogram(counts)
        assert Histogram.from_dict(h.to_dict()) == h


class TestDistances:
    def test_chi2_identical_is_zero(self):
        h = Histogram({1: 4, 2: 6})
        assert chi2_distance(h, h) == pytest.approx(0.0)

    def test_chi2_disjoint_is_one(self):
        assert chi2_distance(Histogram({1: 5}), Histogram({2: 5})) == pytest.approx(1.0)

    def test_chi2_empty_conventions(self):
        assert chi2_distance(Histogram(), Histogram()) == 0.0
        assert chi2_distance(Histogram(), Histogram({1: 1})) == 1.0

    def test_hellinger_bounds(self):
        a = Histogram({1: 3, 2: 1})
        b = Histogram({1: 1, 2: 3})
        d = hellinger_distance(a, b)
        assert 0.0 < d < 1.0

    def test_hellinger_scale_invariant(self):
        a = Histogram({1: 1, 2: 3})
        b = Histogram({1: 10, 2: 30})
        assert hellinger_distance(a, b) == pytest.approx(0.0, abs=1e-12)


class TestHelpers:
    @pytest.mark.parametrize(
        "fraction,expected",
        [(0.0, "low"), (0.29, "low"), (0.30, "med"), (0.70, "med"),
         (0.71, "high"), (1.0, "high")],
    )
    def test_reuse_class_boundaries(self, fraction, expected):
        assert reuse_class(fraction) == expected

    def test_reuse_class_validation(self):
        with pytest.raises(ValueError):
            reuse_class(1.5)

    def test_strides_of(self):
        assert strides_of([0, 128, 64]) == [128, -64]
        assert strides_of([5]) == []
        assert strides_of([]) == []
