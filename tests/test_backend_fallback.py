"""Backend degradation: broken vectorized paths fall back to the oracle.

Covers the two failure shapes the service must survive (satellite of the
robustness PR):

* **import failure** — numpy absent (or explicitly requested while
  absent): env-supplied requests degrade silently at resolution, explicit
  requests raise, and the fallback chain collapses to the oracle;
* **runtime failure** — the vectorized implementation raises mid-job:
  :func:`~repro.core.backend.run_with_fallback` retries the python oracle,
  returns its result, and *reports* the fallback so callers can label the
  outcome degraded rather than hiding it.
"""

from __future__ import annotations

import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    DEFAULT_BACKEND,
    fallback_chain,
    resolve_backend,
    run_with_fallback,
)


class TestResolutionWithoutNumpy:
    """Simulate an environment where the numpy import failed."""

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_HAVE_NUMPY", False)

    def test_env_supplied_numpy_degrades_to_python(self, monkeypatch):
        monkeypatch.setenv("GMAP_BACKEND", "numpy")
        assert resolve_backend(None) == "python"

    def test_explicit_numpy_request_raises(self):
        with pytest.raises(ValueError, match="not importable"):
            resolve_backend("numpy")

    def test_chain_collapses_to_oracle(self, monkeypatch):
        monkeypatch.setenv("GMAP_BACKEND", "numpy")
        assert fallback_chain(None) == (DEFAULT_BACKEND,)


class TestRunWithFallback:
    def test_python_only_chain_has_no_fallback(self):
        result, used, errors = run_with_fallback(
            lambda name: f"ran:{name}", backend="python")
        assert (result, used, errors) == ("ran:python", "python", [])

    def test_vectorized_failure_returns_oracle_result(self):
        pytest.importorskip("numpy")
        calls = []

        def fn(name):
            calls.append(name)
            if name == "numpy":
                raise RuntimeError("vectorized kernel exploded")
            return f"oracle:{name}"

        result, used, errors = run_with_fallback(fn, backend="numpy")
        assert calls == ["numpy", "python"]
        assert result == "oracle:python"
        assert used == "python"
        assert errors == [("numpy", "RuntimeError: vectorized kernel "
                           "exploded")]

    def test_on_fallback_hook_fires_before_retry(self):
        pytest.importorskip("numpy")
        seen = []

        def fn(name):
            if name == "numpy":
                raise ValueError("boom")
            return name

        run_with_fallback(fn, backend="numpy",
                          on_fallback=lambda name, exc: seen.append(
                              (name, type(exc).__name__)))
        assert seen == [("numpy", "ValueError")]

    def test_last_backend_failure_propagates(self):
        with pytest.raises(RuntimeError, match="oracle broke too"):
            run_with_fallback(
                lambda name: (_ for _ in ()).throw(
                    RuntimeError("oracle broke too")),
                backend="python")


class TestServiceReportsDegradation:
    """The service path: a fallback surfaces as an explicit degraded flag."""

    def test_job_outcome_labels_backend_fallback(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.service import handlers
        from repro.service.handlers import execute_job

        real_handler = handlers._HANDLERS["simulate"]

        def flaky(params, backend):
            if backend == "numpy":
                raise RuntimeError("injected vectorized failure")
            return real_handler(params, backend)

        monkeypatch.setitem(handlers._HANDLERS, "simulate", flaky)
        payload = execute_job(
            {"kind": "simulate",
             "params": {"target": "vectoradd", "scale": "tiny",
                        "cores": 2}},
            effective_backend="numpy")
        assert payload["ok"] is True
        assert payload["backend_used"] == "python"
        assert any(reason.startswith("backend_fallback:numpy")
                   for reason in payload["degraded_reasons"])
        assert payload["result"]["result"]["requests_issued"] > 0

    def test_profiler_parity_when_vectorized_path_fails(self, monkeypatch,
                                                        tiny_vectoradd):
        """The degraded result equals the oracle's: fallback changes the
        execution path, never the numbers."""
        pytest.importorskip("numpy")
        from repro.core.profiler import GmapProfiler

        oracle = GmapProfiler(backend="python").profile(tiny_vectoradd)

        def fn(name):
            if name == "numpy":
                raise RuntimeError("injected")
            return GmapProfiler(backend=name).profile(tiny_vectoradd)

        degraded, used, errors = run_with_fallback(fn, backend="numpy")
        assert used == "python"
        assert errors
        assert degraded.to_dict() == oracle.to_dict()


class TestHalfOpenProbeDiscipline:
    """Regressions for the breaker's probe *lease* (robustness PR).

    The failure shape being pinned: a breaker that admits an unbounded
    burst the instant its cooldown elapses, or that lets a straggler
    success from before the trip close it, re-exposes every queued job to
    a still-broken backend.  Half-open must admit exactly one probe per
    cooldown window, and only the probe's own report may close it.
    """

    @staticmethod
    def _tripped(cooldown=10.0):
        from repro.service.degradation import CircuitBreaker

        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown=cooldown,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        breaker.record_failure()
        return breaker, clock

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._tripped()
        clock[0] = 10.0
        assert breaker.allow() is True  # the probe
        # A burst of concurrent callers while the probe is in flight: all
        # must keep skipping the backend.
        assert [breaker.allow() for _ in range(8)] == [False] * 8
        assert breaker.snapshot()["probe_in_flight"] is True

    def test_stale_success_while_open_is_ignored(self):
        breaker, clock = self._tripped()
        clock[0] = 3.0  # still OPEN, no probe admitted
        breaker.record_success()  # straggler from a pre-trip job
        from repro.service.degradation import STATE_OPEN

        assert breaker.state == STATE_OPEN
        assert breaker.allow() is False

    def test_probe_success_closes_for_everyone(self):
        breaker, clock = self._tripped()
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record_success()  # the probe reporting back
        assert [breaker.allow() for _ in range(4)] == [True] * 4
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["probe_in_flight"] is False

    def test_probe_failure_starts_a_new_cooldown(self):
        breaker, clock = self._tripped()
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.allow() is False  # OPEN again
        clock[0] = 19.9  # new cooldown runs from the probe failure
        assert breaker.allow() is False
        clock[0] = 20.0
        assert breaker.allow() is True  # next window's probe

    def test_dead_probe_lease_expires(self):
        """A probe whose worker dies unreported must not wedge the breaker
        half-open forever: the lease expires after one extra cooldown."""
        breaker, clock = self._tripped()
        clock[0] = 10.0
        assert breaker.allow()  # probe admitted, then its worker dies
        clock[0] = 15.0
        assert breaker.allow() is False  # lease still held
        clock[0] = 20.0  # a full cooldown after the lease was taken
        assert breaker.snapshot()["probe_in_flight"] is False
        assert breaker.allow() is True  # a new probe may go
