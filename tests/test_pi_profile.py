"""Tests for π-profile similarity and clustering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pi_profile import (
    DEFAULT_SIMILARITY_THRESHOLD,
    PiClusterer,
    sequence_similarity,
)


class TestSequenceSimilarity:
    def test_identical(self):
        assert sequence_similarity([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert sequence_similarity([1, 1], [2, 2]) == 0.0

    def test_partial(self):
        assert sequence_similarity([1, 2, 3, 4], [1, 2, 9, 4]) == 0.75

    def test_length_mismatch_normalised_by_longer(self):
        assert sequence_similarity([1, 2], [1, 2, 3, 4]) == 0.5

    def test_empty_pair(self):
        assert sequence_similarity([], []) == 1.0

    def test_one_empty(self):
        assert sequence_similarity([], [1]) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=30),
           st.lists(st.integers(0, 5), max_size=30))
    def test_symmetric_and_bounded(self, a, b):
        s = sequence_similarity(a, b)
        assert s == sequence_similarity(b, a)
        assert 0.0 <= s <= 1.0


class TestPiClusterer:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PiClusterer(threshold=0.0)
        with pytest.raises(ValueError):
            PiClusterer(threshold=1.1)

    def test_identical_profiles_one_cluster(self):
        c = PiClusterer()
        for unit in range(10):
            c.add([1, 2, 3], unit)
        assert len(c.clusters) == 1
        assert c.clusters[0].members == 10
        assert c.clusters[0].member_units == list(range(10))

    def test_paper_figure3b_two_profiles(self):
        """Divergence yields two dominant π profiles with frequencies."""
        c = PiClusterer()
        path_a = [0x10, 0x20, 0x30] * 10
        path_b = [0x10, 0x30] * 10
        for unit in range(8):
            c.add(path_a if unit % 2 else path_b, unit)
        assert len(c.clusters) == 2
        assert c.probabilities() == [0.5, 0.5]

    def test_near_identical_merge_above_threshold(self):
        c = PiClusterer(threshold=0.9)
        base = list(range(100))
        variant = base.copy()
        variant[50] = 999  # 99% similar
        c.add(base, 0)
        c.add(variant, 1)
        assert len(c.clusters) == 1

    def test_below_threshold_splits(self):
        c = PiClusterer(threshold=0.9)
        c.add([1] * 10, 0)
        c.add([1] * 8 + [2] * 2, 1)  # 80% similar
        assert len(c.clusters) == 2

    def test_representative_is_first_member(self):
        c = PiClusterer(threshold=0.5)
        c.add([1, 2, 3, 4], 0)
        c.add([1, 2, 3, 9], 1)
        assert c.clusters[0].representative == (1, 2, 3, 4)

    def test_probabilities_sum_to_one(self):
        c = PiClusterer(threshold=0.95)
        for unit in range(7):
            c.add([unit] * 5, unit)
        assert sum(c.probabilities()) == pytest.approx(1.0)

    def test_dominant(self):
        c = PiClusterer()
        for unit in range(3):
            c.add([1, 2], unit)
        c.add([9, 9, 9, 9, 9], 3)
        assert c.dominant().representative == (1, 2)

    def test_dominant_empty_raises(self):
        with pytest.raises(ValueError):
            PiClusterer().dominant()

    def test_exact_cache_fast_path(self):
        c = PiClusterer()
        idx0 = c.add([5, 6], 0)
        idx1 = c.add([5, 6], 1)
        assert idx0 == idx1 == 0

    def test_total_units(self):
        c = PiClusterer()
        c.add([1], 0)
        c.add([2], 1)
        assert c.total_units == 2

    def test_empty_probabilities(self):
        assert PiClusterer().probabilities() == []

    def test_default_threshold_is_paper_value(self):
        assert DEFAULT_SIMILARITY_THRESHOLD == 0.9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 3), min_size=1, max_size=20),
                    min_size=1, max_size=20))
    def test_every_unit_lands_in_exactly_one_cluster(self, profiles):
        c = PiClusterer()
        for unit, profile in enumerate(profiles):
            c.add(profile, unit)
        members = sorted(u for cl in c.clusters for u in cl.member_units)
        assert members == list(range(len(profiles)))
        assert sum(c.probabilities()) == pytest.approx(1.0)
