"""Tests for the G.4.2 warp coalescing model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalescing import DEFAULT_SEGMENT_SIZE, CoalescingModel
from repro.gpu.instructions import AccessType, MemoryAccess, StaticInstruction, pack, unpack


class TestInstructionTypes:
    def test_static_instruction_str(self):
        load = StaticInstruction(pc=0x900)
        store = StaticInstruction(pc=0x40, access_type=AccessType.STORE)
        assert "LD" in str(load) and "0x900" in str(load)
        assert "ST" in str(store)

    def test_static_instruction_validation(self):
        with pytest.raises(ValueError):
            StaticInstruction(pc=-1)
        with pytest.raises(ValueError):
            StaticInstruction(pc=0, size=3)

    def test_access_type_is_store(self):
        assert AccessType.STORE.is_store
        assert not AccessType.LOAD.is_store

    def test_pack_unpack_round_trip(self):
        access = unpack(pack(0x100, 4096, 8, True))
        assert access == MemoryAccess(pc=0x100, address=4096, size=8, is_store=True)
        assert access.as_tuple() == (0x100, 4096, 8, True)


class TestCoalescingModel:
    def test_segment_size_validation(self):
        with pytest.raises(ValueError):
            CoalescingModel(segment_size=100)
        with pytest.raises(ValueError):
            CoalescingModel(segment_size=0)

    def test_unit_stride_warp_is_one_transaction(self):
        """Figure 4: 32 consecutive 4B accesses coalesce into one 128B txn."""
        model = CoalescingModel()
        lanes = [(0x1000 + 4 * lane, 4) for lane in range(32)]
        txns = model.coalesce(0x50, lanes)
        assert len(txns) == 1
        assert txns[0].address == 0x1000
        assert txns[0].size == DEFAULT_SEGMENT_SIZE
        assert txns[0].lanes == 32

    def test_misaligned_unit_stride_is_two_transactions(self):
        model = CoalescingModel()
        lanes = [(0x1040 + 4 * lane, 4) for lane in range(32)]
        txns = model.coalesce(0, lanes)
        assert len(txns) == 2
        assert [t.address for t in txns] == [0x1000, 0x1080]

    def test_stride_two_doubles_transactions(self):
        model = CoalescingModel()
        lanes = [(0x2000 + 8 * lane, 4) for lane in range(32)]
        assert len(model.coalesce(0, lanes)) == 2

    def test_fully_scattered_is_per_lane(self):
        model = CoalescingModel()
        lanes = [(0x10000 + 512 * lane, 4) for lane in range(32)]
        txns = model.coalesce(0, lanes)
        assert len(txns) == 32
        assert all(t.lanes == 1 for t in txns)

    def test_same_address_all_lanes_is_one(self):
        model = CoalescingModel()
        lanes = [(0x3000, 4)] * 32
        txns = model.coalesce(0, lanes)
        assert len(txns) == 1
        assert txns[0].lanes == 32

    def test_access_spanning_segment_boundary(self):
        model = CoalescingModel()
        txns = model.coalesce(0, [(0x107C, 8)])  # 8B access crossing 0x1080
        assert [t.address for t in txns] == [0x1000, 0x1080]

    def test_transactions_sorted_by_address(self):
        model = CoalescingModel()
        lanes = [(0x5000, 4), (0x1000, 4), (0x3000, 4)]
        addresses = [t.address for t in model.coalesce(0, lanes)]
        assert addresses == sorted(addresses)

    def test_store_flag_propagates(self):
        model = CoalescingModel()
        txns = model.coalesce(0x9, [(0, 4)], is_store=True)
        assert txns[0].is_store

    def test_empty_lane_set(self):
        assert CoalescingModel().coalesce(0, []) == []

    def test_invalid_lane_size(self):
        with pytest.raises(ValueError):
            CoalescingModel().coalesce(0, [(0, 0)])

    def test_transactions_per_warp(self):
        model = CoalescingModel()
        assert model.transactions_per_warp(range(0, 128, 4)) == 1
        assert model.transactions_per_warp([0, 128, 256]) == 3

    def test_segment_of(self):
        model = CoalescingModel(segment_size=64)
        assert model.segment_of(0) == 0
        assert model.segment_of(63) == 0
        assert model.segment_of(64) == 64

    def test_smaller_segment_size(self):
        model = CoalescingModel(segment_size=32)
        lanes = [(4 * lane, 4) for lane in range(32)]
        assert len(model.coalesce(0, lanes)) == 4


class TestCoalescingEfficiency:
    def test_perfect(self):
        model = CoalescingModel()
        lanes = [(4 * lane, 4) for lane in range(32)]
        assert model.efficiency(lanes) == pytest.approx(1.0)

    def test_scattered_is_poor(self):
        model = CoalescingModel()
        lanes = [(512 * lane, 4) for lane in range(32)]
        assert model.efficiency(lanes) == pytest.approx(4 / 128)

    def test_empty_is_perfect(self):
        assert CoalescingModel().efficiency([]) == 1.0


class TestCoalescingProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32))
    def test_transaction_count_bounds(self, addresses):
        """1 <= transactions <= 2x active lanes (straddlers split in two)."""
        model = CoalescingModel()
        txns = model.coalesce(0, [(a, 4) for a in addresses])
        assert 1 <= len(txns) <= 2 * len(addresses)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32))
    def test_every_lane_byte_covered(self, addresses):
        model = CoalescingModel()
        txns = model.coalesce(0, [(a, 4) for a in addresses])
        covered = set()
        for t in txns:
            covered.update(range(t.address, t.address + t.size))
        for a in addresses:
            assert set(range(a, a + 4)) <= covered

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32))
    def test_lane_counts_sum_to_segment_touches(self, addresses):
        model = CoalescingModel()
        txns = model.coalesce(0, [(a, 4) for a in addresses])
        # Each 4B access touches 1 segment (or 2 if it straddles).
        expected = sum(
            2 if (a % 128) > 124 else 1 for a in addresses
        )
        assert sum(t.lanes for t in txns) == expected
