"""Shared fixtures for the G-MAP test suite.

Fixtures favour tiny workloads and small core counts so the full suite stays
fast; accuracy-sensitive integration tests use the paper baseline directly.
"""

from __future__ import annotations

import pytest

from repro.core.profiler import GmapProfiler
from repro.gpu.hierarchy import LaunchConfig
from repro.memsim.config import CacheConfig, DramConfig, SimConfig
from repro.workloads import suite


@pytest.fixture(scope="session")
def tiny_kmeans():
    return suite.make("kmeans", scale="tiny")


@pytest.fixture(scope="session")
def tiny_vectoradd():
    return suite.make("vectoradd", scale="tiny")


@pytest.fixture(scope="session")
def tiny_bfs():
    return suite.make("bfs", scale="tiny")


@pytest.fixture(scope="session")
def kmeans_profile(tiny_kmeans):
    return GmapProfiler().profile(tiny_kmeans)


@pytest.fixture(scope="session")
def vectoradd_profile(tiny_vectoradd):
    return GmapProfiler().profile(tiny_vectoradd)


@pytest.fixture
def small_launch():
    """2 blocks x 64 threads: 2 warps per block."""
    return LaunchConfig(grid_dim=2, block_dim=64)


@pytest.fixture
def small_config():
    """A fast 4-core configuration for simulator tests."""
    return SimConfig(
        num_cores=4,
        l1=CacheConfig(size=8 * 1024, assoc=4, line_size=128),
        l2=CacheConfig(size=256 * 1024, assoc=8, line_size=128,
                       hit_latency=30, banks=8),
        dram=DramConfig(channels=4),
    )
