"""Closed-form latency checks: single accesses against hand-computed values.

The timing model is only trustworthy if isolated accesses cost exactly what
docs/architecture.md §4 says they cost.  Every test here computes the
expected latency by hand from the configuration constants and asserts the
simulator agrees to the cycle.
"""

from __future__ import annotations

import pytest

from repro.gpu import memspace
from repro.memsim.config import (
    CacheConfig,
    DramConfig,
    DramTimings,
    SimConfig,
)
from repro.memsim.hierarchy import MemoryHierarchy

#: Quiet DRAM: no refresh/faw/wtr so single-access math is exact.
QUIET_TIMINGS = DramTimings(t_rcd=10, t_cas=5, t_rp=8, t_ras=20,
                            t_faw=0, t_wtr=0, t_refi=0)


def quiet_config(**overrides) -> SimConfig:
    defaults = dict(
        num_cores=1,
        core_clock_mhz=1000.0,           # clock ratio 1000/500 = 2.0 exactly
        l1=CacheConfig(size=8 * 1024, assoc=4, line_size=128, hit_latency=2),
        l2=CacheConfig(size=256 * 1024, assoc=8, line_size=128,
                       hit_latency=30, banks=4),
        dram=DramConfig(channels=2, clock_mhz=500.0, bus_width=8,
                        timings=QUIET_TIMINGS),
        noc_latency=10.0,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


#: Derived constants for the quiet config (DRAM cycles x ratio 2.0).
RATIO = 2.0
T_CAS = 5 * RATIO
T_RCD = 10 * RATIO
T_RP = 8 * RATIO
BURST = (128 / (2 * 8)) * RATIO          # 8 DRAM cycles x 2.0 = 16


class TestSingleAccessLatencies:
    def test_l1_hit(self):
        h = MemoryHierarchy(quiet_config())
        h.access(0, 0.0, 1, 0x1000, 128, False)
        assert h.access(0, 500.0, 1, 0x1000, 128, False) == pytest.approx(2.0)

    def test_cold_miss_latency_decomposition(self):
        """L1 hit-lat + NoC + L2 hit-lat + DRAM(row empty) + burst."""
        h = MemoryHierarchy(quiet_config())
        latency = h.access(0, 0.0, 1, 0x40_0000, 128, False)
        expected = 2 + 10 + 30 + (T_RCD + T_CAS + BURST)
        assert latency == pytest.approx(expected)

    def test_l2_hit_latency(self):
        """A second core's miss that hits in L2: hit-lat + NoC + L2-lat."""
        config = quiet_config(num_cores=2)
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 1, 0x40_0000, 128, False)       # fills L2
        latency = h.access(1, 500.0, 1, 0x40_0000, 128, False)
        assert latency == pytest.approx(2 + 10 + 30)

    def test_dram_row_hit_vs_empty_difference(self):
        """Same bank, same row, far apart in time: second miss saves tRCD."""
        h = MemoryHierarchy(quiet_config(
            l2=CacheConfig(size=256 * 1024, assoc=8, line_size=128,
                           hit_latency=30, banks=4),
        ))
        first = h.access(0, 0.0, 1, 0x40_0000, 128, False)
        # Evict nothing; touch the adjacent line (same DRAM row under
        # ChRaBaRoCo-free default mapping the next column, same row) — pick
        # an address 128B away: same row, different L1/L2 line.
        second = h.access(0, 5000.0, 1, 0x40_0000 + 2 * 128 * 2, 128, False)
        # Both miss L1+L2; the second access's DRAM part is tCAS not
        # tRCD+tCAS *if* it lands in the same open row.  Under RoBaRaCoCh
        # adjacent lines change channel, so force the same channel by using
        # a stride of channels*txn = 2*128.
        assert first - second == pytest.approx(T_RCD)

    def test_shared_memory_latency(self):
        config = quiet_config(shared_latency=3.0)
        h = MemoryHierarchy(config)
        latency = h.access(0, 0.0, 1, memspace.SHARED_BASE + 256, 4, False)
        assert latency == pytest.approx(3.0)

    def test_constant_cache_hit_and_miss(self):
        config = quiet_config()
        h = MemoryHierarchy(config)
        address = memspace.CONSTANT_BASE + 512
        cold = h.access(0, 0.0, 1, address, 4, False)
        const_lat = config.constant_cache.hit_latency
        expected_cold = const_lat + 10 + 30 + (T_RCD + T_CAS + BURST)
        assert cold == pytest.approx(expected_cold)
        warm = h.access(0, 500.0, 1, address, 4, False)
        assert warm == pytest.approx(const_lat)

    def test_mshr_merge_latency_is_remaining_time(self):
        """A second miss to an in-flight line waits only the residue."""
        h = MemoryHierarchy(quiet_config(
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=64, hit_latency=2),
        ))
        first = h.access(0, 0.0, 1, 0x40_0000, 64, False)
        # Same L1 line, 10 cycles later, before the fill returns: the L1
        # filled synchronously in this model, so force the merge via the
        # MSHR table directly.
        mshr = h.l1_mshrs[0]
        assert mshr.lookup(0x40_0000 >> 6 << 6, 5.0) == pytest.approx(first)

    def test_noc_disabled(self):
        h = MemoryHierarchy(quiet_config(noc_latency=0.0))
        latency = h.access(0, 0.0, 1, 0x40_0000, 128, False)
        assert latency == pytest.approx(2 + 30 + (T_RCD + T_CAS + BURST))

    def test_wide_transaction_parallel_sectors(self):
        """A 128B transaction over 32B L1 lines costs max, not sum."""
        config = quiet_config(
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=32, hit_latency=2),
        )
        h = MemoryHierarchy(config)
        latency = h.access(0, 0.0, 1, 0x40_0000, 128, False)
        single = MemoryHierarchy(config).access(0, 0.0, 1, 0x40_0000, 32, False)
        # All four sectors hit the same L2 line; the slowest sector decides,
        # within one L2-bank queueing round (4 sectors x 30-cycle occupancy).
        assert latency < 4 * single
        assert latency >= single