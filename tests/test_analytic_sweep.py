"""Tests for the analytic O(histogram) sweep backend.

Three contracts from the analytic-mode design:

* **cross-validation** — on any LRU, prefetch-free configuration the
  model claims, the L1 prediction is *bit-exact* against the flat-replay
  oracle (the event simulator fills the cache array at miss time, which
  is exactly per-set LRU stack semantics), and the L2 miss rate stays
  within the model's stated tolerance (the documented gap is L2 MSHR
  merge accounting, which inflates the replay's L2 access denominator);
* **fallback completeness** — every configuration feature the model
  cannot capture (prefetchers, non-LRU replacement, oversized
  associativity, inclusive L2) must produce a non-empty reason list and
  route the config to replay, recorded in the artifact's
  ``analytic_fallback_reasons`` matrix;
* **journal resume** — a journaled analytic sweep mixing predictions and
  replay fallbacks resumes bit-identically without recomputation, with
  the fallback matrix restored from the journal.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.analytic import (
    ANALYTIC_MISS_RATE_TOLERANCE,
    AnalyticCacheModel,
    analytic_fallback_reasons,
    analytic_sweep_report,
)
from repro.analysis import verify_analytic_sweep_report
from repro.gpu.executor import execute_kernel, flat_drain
from repro.memsim.config import PAPER_BASELINE, CacheConfig, PrefetcherConfig
from repro.memsim.simulator import simulate_flat_trace
from repro.validation import sweeps
from repro.validation.harness import build_pipeline, run_sweep
from repro.validation.parallel import SweepRunner
from repro.workloads import suite

NUM_CORES = 4


@pytest.fixture(scope="module")
def traces():
    kernel = suite.make("kmeans", scale="tiny")
    return flat_drain(execute_kernel(kernel, NUM_CORES))


@pytest.fixture(scope="module")
def model(traces):
    return AnalyticCacheModel.from_flat(traces)


def _config(l1_sets, l1_assoc, l1_line, l2_sets, l2_assoc, l2_line):
    return PAPER_BASELINE.with_(
        num_cores=NUM_CORES,
        l1=CacheConfig(size=l1_sets * l1_assoc * l1_line, assoc=l1_assoc,
                       line_size=l1_line),
        l2=CacheConfig(size=l2_sets * l2_assoc * l2_line, assoc=l2_assoc,
                       line_size=l2_line, hit_latency=30, banks=8),
    )


class TestCrossValidation:
    """Analytic predictions vs the scalar flat-replay oracle."""

    @settings(max_examples=12, deadline=None)
    @given(
        l1_sets=st.sampled_from([16, 32, 64, 128]),
        l1_assoc=st.sampled_from([1, 2, 4, 8]),
        l1_line=st.sampled_from([32, 64, 128]),
        # L2 >= 128 KiB: below that the documented small-L2 writeback gap
        # (store misses the replay charges as L2 writeback traffic) exceeds
        # the stated tolerance; docs/performance.md records that envelope.
        l2_sets=st.sampled_from([1024, 2048, 4096]),
        l2_assoc=st.sampled_from([2, 4, 8]),
        l2_line=st.sampled_from([64, 128]),
    )
    def test_randomized_lru_configs(self, model, traces, l1_sets, l1_assoc,
                                    l1_line, l2_sets, l2_assoc, l2_line):
        config = _config(l1_sets, l1_assoc, l1_line,
                         l2_sets, l2_assoc, l2_line)
        assert model.applicability(config) == []
        predicted = model.predict(config)
        truth = simulate_flat_trace(traces, config, "python")
        # L1 is exact per-set LRU stack-distance — bit-exact, not close.
        assert predicted.l1.accesses == truth.l1.accesses
        assert predicted.l1.misses == truth.l1.misses
        # L2: the conditioned model tracks miss *counts* closely; the miss
        # *rate* carries the documented MSHR-merge denominator gap.
        assert (abs(predicted.l2_miss_rate - truth.l2_miss_rate)
                <= ANALYTIC_MISS_RATE_TOLERANCE)

    def test_trace_identity(self, model, traces):
        """Predictions describe the same stream the replay walks."""
        config = _config(32, 4, 128, 1024, 8, 128)
        predicted = model.predict(config)
        truth = simulate_flat_trace(traces, config, "python")
        assert predicted.requests_issued == truth.requests_issued
        assert predicted.cycles == truth.cycles

    def test_gate_grid_within_tolerance(self, model, traces):
        """The bench gate's grid: every reduced-fig6a point in tolerance."""
        for base in sweeps.l1_sweep(reduced=True):
            config = base.with_(num_cores=NUM_CORES)
            assert model.applicability(config) == []
            predicted = model.predict(config)
            truth = simulate_flat_trace(traces, config, "python")
            assert predicted.l1.misses == truth.l1.misses
            assert (abs(predicted.l2_miss_rate - truth.l2_miss_rate)
                    <= ANALYTIC_MISS_RATE_TOLERANCE)


class TestFallbackCompleteness:
    """Every un-capturable feature must produce a reason, none silently."""

    BASELINE = PAPER_BASELINE.with_(num_cores=NUM_CORES)

    @pytest.mark.parametrize("label,mutate", [
        ("l1-prefetcher", lambda c: c.with_(
            l1_prefetcher=PrefetcherConfig(kind="stride"))),
        ("l2-prefetcher", lambda c: c.with_(
            l2_prefetcher=PrefetcherConfig(kind="stream"))),
        ("l1-fifo", lambda c: c.with_(
            l1=dataclasses.replace(c.l1, replacement="fifo"))),
        ("l1-random", lambda c: c.with_(
            l1=dataclasses.replace(c.l1, replacement="random"))),
        ("l2-fifo", lambda c: c.with_(
            l2=dataclasses.replace(c.l2, replacement="fifo"))),
        ("l2-random", lambda c: c.with_(
            l2=dataclasses.replace(c.l2, replacement="random"))),
        ("inclusive-l2", lambda c: c.with_(l2_inclusion="inclusive")),
    ])
    def test_feature_triggers_fallback(self, model, label, mutate):
        config = mutate(self.BASELINE)
        assert analytic_fallback_reasons(config), label
        assert model.applicability(config), label

    def test_baseline_is_in_model(self, model):
        assert analytic_fallback_reasons(self.BASELINE) == []
        assert model.applicability(self.BASELINE) == []

    def test_report_records_every_fallback(self, traces):
        grid = [c.with_(num_cores=NUM_CORES)
                for c in sweeps.l1_sweep(reduced=True)][:3]
        grid[1] = grid[1].with_(
            l1=dataclasses.replace(grid[1].l1, replacement="fifo"))
        report = analytic_sweep_report(traces, grid, target="kmeans")
        flags = [entry["analytic"] for entry in report["results"]]
        assert flags == [True, False, True]
        matrix = report["analytic_fallback_reasons"]
        assert [entry["index"] for entry in matrix] == [1]
        assert matrix[0]["reasons"]
        # The artifact must satisfy its own verifier, including the
        # two-way flag <-> reason consistency contract.
        assert verify_analytic_sweep_report(report, "<test>") == []


class TestHarnessMode:
    """``run_sweep(..., sim_mode="analytic")`` wiring."""

    def test_pairs_flagged_and_fallbacks_annotated(self):
        kernel = suite.make("vectoradd", scale="tiny")
        pipeline = build_pipeline(kernel, num_cores=NUM_CORES)
        grid = [c.with_(num_cores=NUM_CORES)
                for c in sweeps.l1_sweep(reduced=True)][:3]
        grid[2] = grid[2].with_(
            l2=dataclasses.replace(grid[2].l2, replacement="random"))
        result = run_sweep(pipeline, grid, sim_mode="analytic")
        assert [pair.analytic for pair in result.pairs] == [True, True, False]
        assert len(result.analytic_fallbacks) == 1
        assert result.analytic_fallbacks[0]["reasons"]


class TestJournalResume:
    """Mixed analytic/fallback chunks checkpoint and resume losslessly."""

    GRID = [c.with_(num_cores=NUM_CORES)
            for c in sweeps.l1_sweep(reduced=True, keep=2)] + [
        sweeps.l1_sweep(reduced=True, keep=1)[0].with_(
            num_cores=NUM_CORES,
            l1=dataclasses.replace(
                sweeps.l1_sweep(reduced=True, keep=1)[0].l1,
                replacement="fifo")),
    ]

    def _run(self, tmp_path, **kwargs):
        return SweepRunner(jobs=1, chunk_size=1, journal=True,
                           journal_dir=tmp_path, **kwargs)

    def test_resume_is_bit_identical_and_skips_work(self, tmp_path):
        kernels = [suite.make("vectoradd", "tiny")]
        first = self._run(tmp_path)
        results = first.run(kernels, self.GRID, num_cores=NUM_CORES,
                            sim_mode="analytic")
        assert [p.analytic for p in results[0].pairs] == [True, True, False]
        assert len(results[0].analytic_fallbacks) == 1

        executed = []
        resumed = self._run(
            tmp_path, resume=True, run_id=first.last_run_id,
            fault_injector=executed.append,
        ).run(kernels, self.GRID, num_cores=NUM_CORES, sim_mode="analytic")
        assert executed == []  # everything came from the journal
        assert len(resumed) == len(results)
        for got, expected in zip(resumed, results):
            assert got.analytic_fallbacks == expected.analytic_fallbacks
            assert len(got.pairs) == len(expected.pairs)
            for gp, ep in zip(got.pairs, expected.pairs):
                assert gp.config == ep.config
                assert gp.analytic == ep.analytic
                assert gp.original.to_dict() == ep.original.to_dict()
                assert gp.proxy.to_dict() == ep.proxy.to_dict()
