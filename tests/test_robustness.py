"""Robustness: degraded, hand-edited, or adversarial profiles and artifacts.

A vendor consumes profiles it did not produce — the pipeline must fail
loudly on malformed input and degrade gracefully on merely *thin* input
(empty histograms, missing statistics), never crash or hang.  The same
contract covers on-disk artifacts: traces, profiles, and cache entries
carry checksums, and corruption is either rejected loudly
(:class:`CorruptArtifactError`) or quarantined and rebuilt from source.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distributions import Histogram
from repro.core.generator import ProxyGenerator
from repro.core.integrity import CorruptArtifactError
from repro.core.profile import GmapProfile, InstructionStats, PiProfileStats
from repro.memsim.config import PAPER_BASELINE
from repro.memsim.simulator import simulate


def minimal_profile(**overrides) -> GmapProfile:
    fields = dict(
        name="thin",
        grid_dim=(1, 1, 1),
        block_dim=(64, 1, 1),
        unit="warp",
        segment_size=128,
        pi_profiles=[
            PiProfileStats(sequence=(0x10,) * 6, probability=1.0)
        ],
        instructions={
            0x10: InstructionStats(pc=0x10, base_address=0x1000_0000)
        },
        total_transactions=12,
    )
    fields.update(overrides)
    return GmapProfile(**fields)


class TestThinProfiles:
    def test_all_histograms_empty_still_generates(self):
        profile = minimal_profile()
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert len(traces) == 2  # 64 threads -> 2 warps
        for trace in traces:
            assert len(trace.transactions) == 6

    def test_thin_profile_simulates(self):
        profile = minimal_profile()
        result = simulate(
            ProxyGenerator(profile, seed=0).generate(2), PAPER_BASELINE
        )
        assert result.requests_issued == 12

    def test_reuse_histogram_without_intra_strides(self):
        """Reuse sampled but supp(P_A) empty: every check fails, stride 0."""
        profile = minimal_profile()
        profile.pi_profiles[0].reuse = Histogram({0: 5})
        traces = ProxyGenerator(profile, seed=1).generate_warp_traces()
        addresses = {a for t in traces for _, a, _, _ in t.transactions}
        assert len(addresses) <= 2  # pinned at (possibly offset) base

    def test_pi_sequence_with_unknown_pcs(self):
        profile = minimal_profile()
        profile.pi_profiles[0] = PiProfileStats(
            sequence=(0x10, 0xDEAD, 0x10), probability=1.0
        )
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        pcs = {pc for t in traces for pc, _ in t.instructions}
        assert pcs == {0x10}

    def test_zero_probability_tail_profile(self):
        profile = minimal_profile()
        profile.pi_profiles.append(
            PiProfileStats(sequence=(0x10,), probability=0.0)
        )
        traces = ProxyGenerator(profile, seed=3).generate_warp_traces()
        assert all(len(t.instructions) == 6 for t in traces)

    def test_probabilities_not_normalised(self):
        """Q summing to < 1: the last profile absorbs the remainder."""
        profile = minimal_profile()
        profile.pi_profiles = [
            PiProfileStats(sequence=(0x10,) * 2, probability=0.3),
            PiProfileStats(sequence=(0x10,) * 4, probability=0.3),
        ]
        traces = ProxyGenerator(profile, seed=5).generate_warp_traces()
        lengths = {len(t.instructions) for t in traces}
        assert lengths <= {2, 4}


class TestMalformedProfiles:
    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            minimal_profile(unit="block")

    def test_missing_required_field_raises(self):
        data = minimal_profile().to_dict()
        del data["instructions"]
        with pytest.raises(KeyError):
            GmapProfile.from_dict(data)

    def test_corrupt_histogram_counts(self):
        data = minimal_profile().to_dict()
        data["instructions"]["16"]["intra_stride"] = {"4": -5}
        with pytest.raises(ValueError, match="negative count"):
            GmapProfile.from_dict(data)

    def test_non_integer_pc_keys(self):
        data = minimal_profile().to_dict()
        data["instructions"]["xyz"] = data["instructions"].pop("16")
        with pytest.raises(ValueError):
            GmapProfile.from_dict(data)


class TestExtremeInputs:
    def test_single_thread_kernel(self):
        profile = minimal_profile(block_dim=(1, 1, 1))
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert len(traces) == 1

    def test_huge_reuse_distances_capped(self):
        profile = minimal_profile()
        profile.pi_profiles[0].reuse = Histogram({10**9: 3})
        profile.instructions[0x10].intra_stride = Histogram({128: 1})
        # Lookback is never satisfiable; must not crash or hang.
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert traces

    def test_gigantic_stride_values(self):
        profile = minimal_profile()
        profile.instructions[0x10].intra_stride = Histogram({1 << 45: 1})
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        for trace in traces:
            for _, address, _, _ in trace.transactions:
                assert 0 <= address < 1 << 62  # wrapped into the window

    def test_many_pi_profiles(self):
        profile = minimal_profile()
        profile.pi_profiles = [
            PiProfileStats(sequence=(0x10,) * (i + 1), probability=1 / 64)
            for i in range(64)
        ]
        rng_traces = ProxyGenerator(profile, seed=9).generate_warp_traces()
        assert len(rng_traces) == 2


class TestTraceIntegrity:
    def _traces(self):
        from repro.gpu.executor import WarpTrace

        trace = WarpTrace(warp_id=0, block=0)
        trace.instructions = [(0x10, 2)]
        trace.transactions = [(0x10, 0, 128, 0), (0x10, 128, 128, 0)]
        return [trace]

    def test_tampered_trace_rejected(self, tmp_path):
        from repro.io.trace_io import load_warp_traces, save_warp_traces

        path = tmp_path / "a.trace"
        save_warp_traces(self._traces(), path)
        text = path.read_text()
        path.write_text(text.replace("T 0x10 0x0 128 R",
                                     "T 0x10 0x40 128 R"))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            load_warp_traces(path)

    def test_legacy_trace_without_trailer_loads(self, tmp_path):
        from repro.io.trace_io import load_warp_traces, save_warp_traces

        path = tmp_path / "a.trace"
        save_warp_traces(self._traces(), path)
        lines = [l for l in path.read_text().splitlines()
                 if not l.startswith("# sha256")]
        path.write_text("\n".join(lines) + "\n")
        restored = load_warp_traces(path)
        assert restored[0].transactions == self._traces()[0].transactions

    def test_thread_trace_tamper_rejected(self, tmp_path):
        from repro.io.thread_trace_io import (
            load_thread_traces,
            save_thread_traces,
        )

        from repro.gpu.hierarchy import LaunchConfig
        from repro.gpu.instructions import pack

        path = tmp_path / "a.ttrace"
        save_thread_traces([[pack(0x10, 0, 4, False)]],
                           LaunchConfig(grid_dim=1, block_dim=1), path)
        original = path.read_text()
        assert "# sha256" in original
        path.write_text(original.replace(" 4 ", " 8 "))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            load_thread_traces(path)


class TestProfileIntegrity:
    def test_tampered_profile_rejected(self, tmp_path):
        import json

        from repro.io.profile_io import load_profile, save_profile

        path = tmp_path / "p.json"
        save_profile(minimal_profile(), path)
        data = json.loads(path.read_text())
        assert "_checksum" in data
        data["total_transactions"] = 999999
        path.write_text(json.dumps(data))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            load_profile(path)

    def test_deliberate_edit_without_checksum_loads(self, tmp_path):
        """Dropping ``_checksum`` is the documented hand-edit escape hatch."""
        import json

        from repro.io.profile_io import load_profile, save_profile

        path = tmp_path / "p.json"
        save_profile(minimal_profile(), path)
        data = json.loads(path.read_text())
        del data["_checksum"]
        data["total_transactions"] = 24
        path.write_text(json.dumps(data))
        assert load_profile(path).total_transactions == 24


class TestCacheIntegrity:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        from repro.core.cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        key = "ab" * 32
        cache._store("pair", key, {"value": 1})
        assert cache._load("pair", key)["value"] == 1
        path = cache._path("pair", key)
        path.write_bytes(b"\x00garbage\x00")
        assert cache._load("pair", key) is None  # miss -> caller recomputes
        assert cache.counters.quarantined == 1
        assert not path.exists()
        assert list((cache.root / "quarantine").iterdir())

    def test_tampered_entry_fails_checksum(self, tmp_path):
        import gzip
        import json

        from repro.core.cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        key = "cd" * 32
        cache._store("pair", key, {"value": 1})
        path = cache._path("pair", key)
        payload = json.loads(gzip.decompress(path.read_bytes()))
        payload["value"] = 2  # bit-flip without updating the checksum
        path.write_bytes(gzip.compress(json.dumps(payload).encode()))
        assert cache._load("pair", key) is None
        assert cache.counters.quarantined == 1
