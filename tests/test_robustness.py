"""Robustness: degraded, hand-edited, or adversarial profiles.

A vendor consumes profiles it did not produce — the pipeline must fail
loudly on malformed input and degrade gracefully on merely *thin* input
(empty histograms, missing statistics), never crash or hang.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distributions import Histogram
from repro.core.generator import ProxyGenerator
from repro.core.profile import GmapProfile, InstructionStats, PiProfileStats
from repro.memsim.config import PAPER_BASELINE
from repro.memsim.simulator import simulate


def minimal_profile(**overrides) -> GmapProfile:
    fields = dict(
        name="thin",
        grid_dim=(1, 1, 1),
        block_dim=(64, 1, 1),
        unit="warp",
        segment_size=128,
        pi_profiles=[
            PiProfileStats(sequence=(0x10,) * 6, probability=1.0)
        ],
        instructions={
            0x10: InstructionStats(pc=0x10, base_address=0x1000_0000)
        },
        total_transactions=12,
    )
    fields.update(overrides)
    return GmapProfile(**fields)


class TestThinProfiles:
    def test_all_histograms_empty_still_generates(self):
        profile = minimal_profile()
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert len(traces) == 2  # 64 threads -> 2 warps
        for trace in traces:
            assert len(trace.transactions) == 6

    def test_thin_profile_simulates(self):
        profile = minimal_profile()
        result = simulate(
            ProxyGenerator(profile, seed=0).generate(2), PAPER_BASELINE
        )
        assert result.requests_issued == 12

    def test_reuse_histogram_without_intra_strides(self):
        """Reuse sampled but supp(P_A) empty: every check fails, stride 0."""
        profile = minimal_profile()
        profile.pi_profiles[0].reuse = Histogram({0: 5})
        traces = ProxyGenerator(profile, seed=1).generate_warp_traces()
        addresses = {a for t in traces for _, a, _, _ in t.transactions}
        assert len(addresses) <= 2  # pinned at (possibly offset) base

    def test_pi_sequence_with_unknown_pcs(self):
        profile = minimal_profile()
        profile.pi_profiles[0] = PiProfileStats(
            sequence=(0x10, 0xDEAD, 0x10), probability=1.0
        )
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        pcs = {pc for t in traces for pc, _ in t.instructions}
        assert pcs == {0x10}

    def test_zero_probability_tail_profile(self):
        profile = minimal_profile()
        profile.pi_profiles.append(
            PiProfileStats(sequence=(0x10,), probability=0.0)
        )
        traces = ProxyGenerator(profile, seed=3).generate_warp_traces()
        assert all(len(t.instructions) == 6 for t in traces)

    def test_probabilities_not_normalised(self):
        """Q summing to < 1: the last profile absorbs the remainder."""
        profile = minimal_profile()
        profile.pi_profiles = [
            PiProfileStats(sequence=(0x10,) * 2, probability=0.3),
            PiProfileStats(sequence=(0x10,) * 4, probability=0.3),
        ]
        traces = ProxyGenerator(profile, seed=5).generate_warp_traces()
        lengths = {len(t.instructions) for t in traces}
        assert lengths <= {2, 4}


class TestMalformedProfiles:
    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            minimal_profile(unit="block")

    def test_missing_required_field_raises(self):
        data = minimal_profile().to_dict()
        del data["instructions"]
        with pytest.raises(KeyError):
            GmapProfile.from_dict(data)

    def test_corrupt_histogram_counts(self):
        data = minimal_profile().to_dict()
        data["instructions"]["16"]["intra_stride"] = {"4": -5}
        with pytest.raises(ValueError, match="negative count"):
            GmapProfile.from_dict(data)

    def test_non_integer_pc_keys(self):
        data = minimal_profile().to_dict()
        data["instructions"]["xyz"] = data["instructions"].pop("16")
        with pytest.raises(ValueError):
            GmapProfile.from_dict(data)


class TestExtremeInputs:
    def test_single_thread_kernel(self):
        profile = minimal_profile(block_dim=(1, 1, 1))
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert len(traces) == 1

    def test_huge_reuse_distances_capped(self):
        profile = minimal_profile()
        profile.pi_profiles[0].reuse = Histogram({10**9: 3})
        profile.instructions[0x10].intra_stride = Histogram({128: 1})
        # Lookback is never satisfiable; must not crash or hang.
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        assert traces

    def test_gigantic_stride_values(self):
        profile = minimal_profile()
        profile.instructions[0x10].intra_stride = Histogram({1 << 45: 1})
        traces = ProxyGenerator(profile, seed=0).generate_warp_traces()
        for trace in traces:
            for _, address, _, _ in trace.transactions:
                assert 0 <= address < 1 << 62  # wrapped into the window

    def test_many_pi_profiles(self):
        profile = minimal_profile()
        profile.pi_profiles = [
            PiProfileStats(sequence=(0x10,) * (i + 1), probability=1 / 64)
            for i in range(64)
        ]
        rng_traces = ProxyGenerator(profile, seed=9).generate_warp_traces()
        assert len(rng_traces) == 2
