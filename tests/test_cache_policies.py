"""Tests for cache write and replacement policies."""

from __future__ import annotations

import pytest

from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import CacheConfig, DramConfig, SimConfig
from repro.memsim.hierarchy import MemoryHierarchy


def make_cache(policy="write-back", allocate=True, replacement="lru",
               size=256, assoc=2, line=64):
    return SetAssociativeCache(
        CacheConfig(size=size, assoc=assoc, line_size=line,
                    write_policy=policy, write_allocate=allocate,
                    replacement=replacement)
    )


class TestConfigValidation:
    def test_write_policy(self):
        with pytest.raises(ValueError, match="write_policy"):
            CacheConfig(size=1024, assoc=2, line_size=64,
                        write_policy="write-once")

    def test_replacement(self):
        with pytest.raises(ValueError, match="replacement"):
            CacheConfig(size=1024, assoc=2, line_size=64, replacement="plru")


class TestWriteThrough:
    def test_store_hit_does_not_dirty(self):
        cache = make_cache(policy="write-through")  # 2 sets of 2 ways
        cache.access(0)
        cache.access(0, is_store=True)
        cache.access(128)                # same set as 0
        _, victim = cache.access(256)    # evicts line 0 (LRU in set 0)
        assert victim is not None and not victim.dirty
        assert cache.stats.writebacks == 0

    def test_store_miss_no_allocate_bypasses(self):
        cache = make_cache(policy="write-through", allocate=False)
        hit, victim = cache.access(0, is_store=True)
        assert not hit and victim is None
        assert not cache.contains(0)
        assert cache.stats.misses == 1

    def test_load_miss_still_allocates(self):
        cache = make_cache(policy="write-through", allocate=False)
        cache.access(0, is_store=False)
        assert cache.contains(0)


class TestReplacementPolicies:
    def _fill_then_touch_first(self, cache):
        """Fill a 2-way set, re-touch the first line, insert a third."""
        cache.access(0)
        cache.access(256)   # same set (4 sets x 64B: 0 and 256 -> set 0)
        cache.access(0)     # refresh line 0 under LRU; FIFO ignores
        _, victim = cache.access(512)
        return victim

    def test_lru_evicts_least_recently_used(self):
        victim = self._fill_then_touch_first(make_cache(replacement="lru"))
        assert victim.address == 256

    def test_fifo_evicts_oldest_insertion(self):
        victim = self._fill_then_touch_first(make_cache(replacement="fifo"))
        assert victim.address == 0

    def test_random_is_deterministic_per_cache(self):
        a = make_cache(replacement="random")
        b = make_cache(replacement="random")
        va = self._fill_then_touch_first(a)
        vb = self._fill_then_touch_first(b)
        assert va.address == vb.address  # same name -> same seed

    def test_random_eventually_varies(self):
        cache = make_cache(replacement="random", size=512, assoc=8, line=64)
        victims = set()
        for i in range(50):
            _, victim = cache.access(i * 512)  # all map to set 0
            if victim:
                victims.add(victim.address)
        assert len(victims) > 3  # not stuck on one way


class TestHierarchyWritePolicies:
    def _config(self, l1_policy, allocate=True, l2_policy="write-back"):
        return SimConfig(
            num_cores=1,
            l1=CacheConfig(size=8 * 1024, assoc=4, line_size=128,
                           write_policy=l1_policy, write_allocate=allocate),
            l2=CacheConfig(size=128 * 1024, assoc=8, line_size=128,
                           hit_latency=30, banks=4, write_policy=l2_policy),
            dram=DramConfig(channels=2),
        )

    def test_write_through_l1_forwards_stores_to_l2(self):
        h = MemoryHierarchy(self._config("write-through"))
        h.access(0, 0.0, 1, 0x1000, 128, True)
        assert h.l2.stats.accesses >= 1

    def test_write_back_l1_defers_store_traffic(self):
        h = MemoryHierarchy(self._config("write-back"))
        h.access(0, 0.0, 1, 0x1000, 128, True)
        # The store miss fetched the line (1 L2 read); no store forwarded.
        l2_after_one_store = h.l2.stats.accesses
        h.access(0, 1.0, 1, 0x1000, 128, True)  # hit: dirty in place
        assert h.l2.stats.accesses == l2_after_one_store

    def test_write_evict_l1_store_latency_is_cheap(self):
        h = MemoryHierarchy(self._config("write-through", allocate=False))
        latency = h.access(0, 0.0, 1, 0x2000, 128, True)
        assert latency == h.config.l1.hit_latency
        assert not h.l1s[0].contains(0x2000)

    def test_write_through_l2_reaches_dram(self):
        h = MemoryHierarchy(self._config("write-through",
                                         l2_policy="write-through"))
        writes_before = h.dram.stats.writes
        h.access(0, 0.0, 1, 0x3000, 128, True)
        assert h.dram.stats.writes > writes_before

    def test_policies_change_miss_rates(self):
        """Write-allocate vs no-allocate is an observable design axis."""
        streams = [(i * 128, True) for i in range(64)] + \
                  [(i * 128, False) for i in range(64)]
        results = {}
        for allocate in (True, False):
            h = MemoryHierarchy(self._config("write-through", allocate))
            for t, (addr, st) in enumerate(streams):
                h.access(0, float(t), 1, addr, 128, st)
            results[allocate] = h.l1s[0].stats.miss_rate
        # With allocation the later loads hit; without, they all miss.
        assert results[True] < results[False]