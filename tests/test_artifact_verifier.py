"""Tests for the statistical-artifact verifier (``gmap check``'s verify pass)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.selftest import _minimal_profile
from repro.analysis.verify import (
    ProfileVerificationError,
    verify_application_payload,
    verify_profile,
    verify_profile_file,
    verify_profile_payload,
    verify_sim_config,
    verify_sweep_configs,
)
from repro.cli import main
from repro.core.miniaturize import miniaturize_profile
from repro.core.profiler import GmapProfiler
from repro.io.profile_io import load_profile, save_profile
from repro.memsim.config import PAPER_BASELINE, CacheConfig
from repro.validation.harness import build_pipeline
from repro.workloads import suite


def rules_for(payload) -> set:
    return {f.rule for f in verify_profile_payload(payload, origin="<test>")}


@pytest.fixture()
def payload():
    return _minimal_profile()


class TestEdgeCases:
    def test_empty_profile(self, payload):
        payload["pi_profiles"] = []
        payload["instructions"] = {}
        assert rules_for(payload) == {"empty-profile"}

    def test_single_pi_profile_is_clean(self, payload):
        # One pi profile with probability exactly 1 is the degenerate but
        # legal case (a kernel with a single dominant execution profile).
        assert len(payload["pi_profiles"]) == 1
        assert rules_for(payload) == set()

    def test_q_off_by_more_than_tolerance(self, payload):
        payload["pi_profiles"][0]["probability"] = 1.0 - 1e-5
        assert rules_for(payload) == {"q-not-normalized"}

    def test_q_within_tolerance_is_clean(self, payload):
        payload["pi_profiles"][0]["probability"] = 1.0 - 1e-7
        assert rules_for(payload) == set()

    def test_q_entry_out_of_range(self, payload):
        payload["pi_profiles"][0]["probability"] = -0.2
        assert "q-out-of-range" in rules_for(payload)

    def test_negative_histogram_bin(self, payload):
        payload["instructions"]["80"]["intra_stride"] = {"4": -1}
        assert rules_for(payload) == {"hist-negative-bin"}

    def test_negative_reuse_bin(self, payload):
        payload["pi_profiles"][0]["reuse"] = {"0": -2}
        assert rules_for(payload) == {"hist-negative-bin"}

    def test_non_numeric_bin(self, payload):
        payload["instructions"]["80"]["inter_stride"] = {"128": "many"}
        assert rules_for(payload) == {"hist-bad-bin"}

    def test_pi_sequence_references_unknown_pc(self, payload):
        payload["pi_profiles"][0]["sequence"] = [80, 4096]
        assert rules_for(payload) == {"pi-unknown-pc"}

    def test_base_misaligned(self, payload):
        payload["instructions"]["80"]["base_address"] = 0x1000_0001
        assert rules_for(payload) == {"base-misaligned"}

    def test_negative_base(self, payload):
        payload["instructions"]["80"]["base_address"] = -128
        assert rules_for(payload) == {"base-misaligned"}

    def test_reuse_fraction_out_of_range(self, payload):
        payload["pi_profiles"][0]["reuse_fraction"] = 2.0
        assert rules_for(payload) == {"reuse-fraction-range"}

    def test_miniaturized_reuse_support_exceeds_sequence(self, payload):
        payload["scale_factor"] = 8.0
        payload["pi_profiles"][0]["reuse"] = {"50": 1}
        assert rules_for(payload) == {"reuse-exceeds-sequence"}

    def test_unminiaturized_long_reuse_is_legal(self, payload):
        # Without miniaturization the sequence is not truncated, so a long
        # reuse distance only means the pi sequence repeats per unit.
        payload["pi_profiles"][0]["reuse"] = {"50": 1}
        assert rules_for(payload) == set()

    def test_coalescing_degree_below_one(self, payload):
        payload["instructions"]["80"]["txns_per_access"] = {"0": 4}
        assert rules_for(payload) == {"txns-nonpositive"}

    def test_negative_totals(self, payload):
        payload["total_transactions"] = -5
        payload["instructions"]["80"]["dynamic_count"] = -1
        assert rules_for(payload) == {"negative-count"}


class TestApplicationPayload:
    def test_empty_application(self):
        assert {
            f.rule
            for f in verify_application_payload({"kernels": []}, "<test>")
        } == {"empty-profile"}

    def test_kernel_findings_carry_kernel_origin(self, payload):
        payload["pi_profiles"][0]["probability"] = 0.5
        findings = verify_application_payload(
            {"name": "app", "kernels": [payload]}, "app.json"
        )
        assert findings[0].rule == "q-not-normalized"
        assert "app.json::fixture" in findings[0].path


class TestSimConfig:
    def test_paper_baseline_is_clean(self):
        assert verify_sim_config(PAPER_BASELINE) == []

    def test_non_power_of_two_associativity(self):
        config = PAPER_BASELINE.with_(
            l1=CacheConfig(size=1536, assoc=3, line_size=128)
        )
        findings = verify_sim_config(config, origin="sweep[3]")
        assert [f.rule for f in findings] == ["config-assoc-pow2"]
        assert findings[0].path == "sweep[3].l1"

    def test_texture_cache_odd_ways_not_flagged(self):
        # Fermi's 12KB 24-way texture cache is legitimate; only the main
        # data caches are held to power-of-two associativity.
        assert PAPER_BASELINE.texture_cache.assoc == 24
        assert verify_sim_config(PAPER_BASELINE) == []

    def test_sweep_helper_labels_by_index(self):
        bad = PAPER_BASELINE.with_(
            l1=CacheConfig(size=1536, assoc=3, line_size=128)
        )
        findings = verify_sweep_configs([PAPER_BASELINE, bad], origin="fig6a")
        assert [f.path for f in findings] == ["fig6a[1].l1"]

    def test_experiment_sweeps_are_clean(self):
        from repro.validation.experiments import EXPERIMENTS

        for name, spec in EXPERIMENTS.items():
            assert verify_sweep_configs(spec.configs(reduced=True), name) == []


class TestConfigConstructorRegression:
    """Regressions for the validation gaps the verifier work surfaced:
    these used to construct silently and fail (or corrupt time) mid-sweep.
    """

    def test_zero_mshrs_rejected_at_construction(self):
        with pytest.raises(ValueError, match="MSHR"):
            CacheConfig(size=16 * 1024, assoc=4, line_size=128, mshrs=0)

    def test_negative_hit_latency_rejected(self):
        with pytest.raises(ValueError, match="hit latency"):
            CacheConfig(size=16 * 1024, assoc=4, line_size=128, hit_latency=-5)


class TestRealProfiles:
    def test_profiled_kernel_is_clean(self):
        profile = GmapProfiler().profile(suite.make("vectoradd", scale="tiny"))
        assert verify_profile(profile) == []

    def test_miniaturized_profile_is_clean(self):
        profile = GmapProfiler().profile(suite.make("kmeans", scale="tiny"))
        for thin in (True, False):
            mini = miniaturize_profile(profile, 8.0, thin_statistics=thin)
            findings = verify_profile(mini)
            assert findings == [], (thin, [f.format() for f in findings])

    def test_miniaturize_clips_reuse_support_without_thinning(self):
        # Regression: thin_statistics=False used to skip the structural
        # reuse-distance clip, leaving lookbacks beyond the truncated
        # sequence that the generator could never satisfy.
        profile = GmapProfiler().profile(suite.make("kmeans", scale="tiny"))
        mini = miniaturize_profile(profile, 8.0, thin_statistics=False)
        for pi in mini.pi_profiles:
            if pi.reuse.empty:
                continue
            assert max(pi.reuse.support()) <= max(0, len(pi.sequence) - 1)

    def test_obfuscated_profile_stays_clean(self):
        profile = GmapProfiler().profile(suite.make("vectoradd", scale="tiny"))
        assert verify_profile(profile.obfuscated()) == []


class TestFileAndLoaderIntegration:
    def make_bad_file(self, tmp_path, mutate):
        payload = _minimal_profile()
        mutate(payload)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_verify_profile_file_reports_rules(self, tmp_path):
        path = self.make_bad_file(
            tmp_path,
            lambda p: p["pi_profiles"][0].update(probability=0.5),
        )
        findings = verify_profile_file(path)
        assert [f.rule for f in findings] == ["q-not-normalized"]
        assert findings[0].path == str(path)

    def test_verify_profile_file_corrupt_checksum(self, tmp_path):
        profile = GmapProfiler().profile(suite.make("vectoradd", scale="tiny"))
        path = tmp_path / "p.json"
        save_profile(profile, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"name": "vectoradd"',
                                     '"name": "tampered"'), encoding="utf-8")
        findings = verify_profile_file(path)
        assert [f.rule for f in findings] == ["corrupt-artifact"]

    def test_load_profile_verify_flag(self, tmp_path):
        path = self.make_bad_file(
            tmp_path,
            lambda p: p["pi_profiles"][0].update(probability=0.5),
        )
        load_profile(path)  # default: loads, statistics caveat emptor
        with pytest.raises(ProfileVerificationError) as err:
            load_profile(path, verify=True)
        assert any(f.rule == "q-not-normalized" for f in err.value.findings)

    def test_cli_check_bad_profile_json(self, tmp_path, capsys):
        # Acceptance: an injected un-normalized-Q fixture exits nonzero
        # with a JSON finding carrying the rule id and file.
        path = self.make_bad_file(
            tmp_path,
            lambda p: p["pi_profiles"][0].update(probability=0.5),
        )
        assert main(["check", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert finding["rule"] == "q-not-normalized"
        assert finding["path"] == str(path)
        assert finding["source"] == "verify"

    def test_cli_generate_refuses_bad_profile(self, tmp_path, capsys):
        path = self.make_bad_file(
            tmp_path,
            lambda p: p["pi_profiles"][0].update(probability=0.5),
        )
        code = main(["generate", str(path), "-o", str(tmp_path / "o.trace")])
        assert code == 1
        assert "fails verification" in capsys.readouterr().err
        assert not (tmp_path / "o.trace").exists()

    def test_cli_generate_accepts_good_profile(self, tmp_path):
        profile_path = tmp_path / "p.json"
        assert main(["profile", "vectoradd", "--scale", "tiny",
                     "-o", str(profile_path)]) == 0
        assert main(["generate", str(profile_path),
                     "-o", str(tmp_path / "o.trace")]) == 0


class TestPipelineGate:
    def test_build_pipeline_rejects_malformed_profile(self):
        class BrokenProfiler(GmapProfiler):
            def profile(self, kernel):
                profile = super().profile(kernel)
                broken = copy.deepcopy(profile)
                broken.pi_profiles[0].probability = 0.25
                return broken

        kernel = suite.make("vectoradd", scale="tiny")
        with pytest.raises(ProfileVerificationError):
            build_pipeline(kernel, num_cores=2, profiler=BrokenProfiler())

    def test_build_pipeline_verify_can_be_disabled(self):
        class BrokenProfiler(GmapProfiler):
            def profile(self, kernel):
                profile = super().profile(kernel)
                broken = copy.deepcopy(profile)
                broken.pi_profiles[0].probability = 0.25
                return broken

        kernel = suite.make("vectoradd", scale="tiny")
        pipeline = build_pipeline(
            kernel, num_cores=2, profiler=BrokenProfiler(), verify=False
        )
        assert pipeline.profile.pi_profiles[0].probability == 0.25
