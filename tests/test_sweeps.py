"""Tests for the paper's configuration sweeps and Table 2 baseline."""

from __future__ import annotations

import pytest

from repro.memsim.config import PAPER_BASELINE
from repro.validation import sweeps


class TestPaperBaseline:
    """Table 2: the profiled system configuration."""

    def test_core_config(self):
        assert PAPER_BASELINE.num_cores == 15
        assert PAPER_BASELINE.core_clock_mhz == 1400.0

    def test_l1(self):
        l1 = PAPER_BASELINE.l1
        assert (l1.size, l1.assoc, l1.line_size) == (16 * 1024, 4, 128)
        assert l1.hit_latency == 1
        assert l1.mshrs == 64

    def test_l2(self):
        l2 = PAPER_BASELINE.l2
        assert (l2.size, l2.assoc, l2.line_size) == (1024 * 1024, 8, 128)
        assert l2.banks == 8

    def test_dram(self):
        dram = PAPER_BASELINE.dram
        assert dram.channels == 8
        assert dram.ranks == 1
        assert dram.banks == 8
        assert dram.clock_mhz == 924.0
        t = dram.timings
        assert (t.t_rcd, t.t_cas, t.t_rp, t.t_ras) == (11, 11, 11, 28)

    def test_scheduler(self):
        assert PAPER_BASELINE.scheduler == "lrr"


class TestSweepSizes:
    def test_l1_sweep_is_30(self):
        assert len(sweeps.l1_sweep()) == 30

    def test_l2_sweep_is_30(self):
        assert len(sweeps.l2_sweep()) == 30

    def test_l1_prefetcher_sweep_is_72(self):
        assert len(sweeps.l1_prefetcher_sweep()) == 72

    def test_l2_prefetcher_sweep_is_96(self):
        assert len(sweeps.l2_prefetcher_sweep()) == 96

    def test_dram_sweep_is_11(self):
        assert len(sweeps.dram_sweep()) == 11

    def test_scheduling_sweep(self):
        policies = [c.scheduler for c in sweeps.scheduling_sweep()]
        assert policies == ["lrr", "gto"]

    def test_miniaturization_factors(self):
        factors = sweeps.miniaturization_factors()
        assert factors[0] == 1.0
        assert 8.0 in factors


class TestSweepRanges:
    def test_l1_parameter_ranges(self):
        configs = sweeps.l1_sweep()
        sizes = {c.l1.size for c in configs}
        assert min(sizes) == 8 * 1024 and max(sizes) == 128 * 1024
        assert {c.l1.assoc for c in configs} >= {1, 16}
        assert {c.l1.line_size for c in configs} == {32, 64, 128}

    def test_l1_sweep_keeps_l2_fixed(self):
        assert all(c.l2 == PAPER_BASELINE.l2 for c in sweeps.l1_sweep())

    def test_l2_parameter_ranges(self):
        configs = sweeps.l2_sweep()
        sizes = {c.l2.size for c in configs}
        assert min(sizes) == 128 * 1024 and max(sizes) == 4 * 1024 * 1024
        assert {c.l2.line_size for c in configs} == {64, 128}
        assert all(c.l1 == PAPER_BASELINE.l1 for c in configs)

    def test_prefetcher_degrees(self):
        degrees = {c.l1_prefetcher.degree for c in sweeps.l1_prefetcher_sweep()}
        assert degrees == {1, 2, 4, 8}

    def test_stream_windows(self):
        windows = {c.l2_prefetcher.stream_window
                   for c in sweeps.l2_prefetcher_sweep()}
        assert windows == {8, 16, 32}

    def test_dram_sweep_covers_both_mappings(self):
        mappings = {c.dram.mapping for c in sweeps.dram_sweep()}
        assert mappings == {"RoBaRaCoCh", "ChRaBaRoCo"}

    def test_dram_sweep_varies_bus_and_channels(self):
        configs = sweeps.dram_sweep()
        assert {c.dram.bus_width for c in configs} == {4, 8, 16}
        assert len({c.dram.channels for c in configs}) >= 3


class TestReducedSweeps:
    def test_reduced_preserves_extremes(self):
        full = sweeps.l1_sweep()
        reduced = sweeps.l1_sweep(reduced=True, keep=6)
        assert len(reduced) == 6
        assert reduced[0] == full[0]
        assert reduced[-1] == full[-1]

    def test_reduced_noop_when_small(self):
        assert len(sweeps.dram_sweep(reduced=True, keep=20)) == 11

    def test_keep_one(self):
        assert len(sweeps.l1_sweep(reduced=True, keep=1)) == 1
