"""Tests for proxy generation (Algorithms 1 and 2)."""

from __future__ import annotations

import random

import pytest

from repro.core.distributions import Histogram, hellinger_distance
from repro.core.generator import ProxyGenerator, generate_unit_trace
from repro.core.profile import GmapProfile, InstructionStats, PiProfileStats
from repro.core.profiler import GmapProfiler
from repro.gpu.executor import build_warp_traces
from repro.workloads import suite


def simple_profile(reuse=None, intra=None, inter=None, n_instr=8) -> GmapProfile:
    """A one-PC warp-granularity profile for targeted Algorithm 1 tests."""
    instr = InstructionStats(
        pc=0x10,
        base_address=0x1000,
        inter_stride=Histogram(inter or {128: 10}),
        intra_stride=Histogram(intra or {128: 10}),
        txns_per_access=Histogram({1: 10}),
    )
    pi = PiProfileStats(
        sequence=(0x10,) * n_instr,
        probability=1.0,
        reuse=Histogram(reuse) if reuse else Histogram(),
        reuse_fraction=0.5 if reuse else 0.0,
    )
    return GmapProfile(
        name="unit-test",
        grid_dim=(1, 1, 1),
        block_dim=(64, 1, 1),
        unit="warp",
        segment_size=128,
        pi_profiles=[pi],
        instructions={0x10: instr},
        total_transactions=n_instr * 2,
    )


class TestAlgorithm1:
    def test_first_touch_advances_global_base(self):
        """Alg 1 lines 6-9: B[k] walks forward across units."""
        profile = simple_profile(n_instr=1)
        base = {0x10: 0x1000}
        rng = random.Random(0)
        u0 = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                 profile.instructions, base, rng)
        u1 = generate_unit_trace(1, 0, profile.pi_profiles[0],
                                 profile.instructions, base, rng)
        assert u0.addresses[0] == 0x1000 + 128
        assert u1.addresses[0] == u0.addresses[0] + 128

    def test_stride_path_walks_intra(self):
        profile = simple_profile(intra={256: 1})
        base = {0x10: 0x1000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base, random.Random(1))
        diffs = [b - a for a, b in zip(unit.addresses, unit.addresses[1:])]
        assert all(d == 256 for d in diffs)

    def test_reuse_path_replays_addresses(self):
        """reuse=0 with stride 0 in supp pins successive accesses."""
        profile = simple_profile(reuse={0: 1}, intra={0: 1})
        base = {0x10: 0x1000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base, random.Random(2))
        assert len(set(unit.addresses)) == 1

    def test_reuse_rejected_when_stride_implausible(self):
        """Candidate outside supp(P_A) falls back to the stride path."""
        profile = simple_profile(reuse={0: 1}, intra={999: 1})
        base = {0x10: 0x1000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base, random.Random(2))
        diffs = {b - a for a, b in zip(unit.addresses, unit.addresses[1:])}
        assert diffs == {999}

    def test_max_len_truncates(self):
        profile = simple_profile(n_instr=10)
        base = {0x10: 0x1000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base,
                                   random.Random(0), max_len=3)
        assert len(unit.addresses) == 3

    def test_unknown_pc_skipped(self):
        profile = simple_profile(n_instr=2)
        profile.pi_profiles[0].sequence = (0x10, 0xDEAD)
        base = {0x10: 0x1000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base, random.Random(0))
        assert unit.pcs == [0x10]

    def test_empty_histograms_degenerate_gracefully(self):
        profile = simple_profile(n_instr=4)
        profile.instructions[0x10].inter_stride = Histogram()
        profile.instructions[0x10].intra_stride = Histogram()
        profile.instructions[0x10].txns_per_access = Histogram()
        base = {0x10: 0x2000}
        unit = generate_unit_trace(0, 0, profile.pi_profiles[0],
                                   profile.instructions, base, random.Random(0))
        assert unit.addresses == [0x2000] * 4
        assert unit.txns == [1] * 4


class TestProxyGenerator:
    def test_requires_pi_profiles(self):
        profile = simple_profile()
        profile.pi_profiles = []
        with pytest.raises(ValueError, match="no π profiles"):
            ProxyGenerator(profile)

    def test_deterministic_given_seed(self, kmeans_profile):
        a = ProxyGenerator(kmeans_profile, seed=9).generate_warp_traces()
        b = ProxyGenerator(kmeans_profile, seed=9).generate_warp_traces()
        assert [t.transactions for t in a] == [t.transactions for t in b]

    def test_different_seeds_differ(self, kmeans_profile):
        a = ProxyGenerator(kmeans_profile, seed=1).generate_warp_traces()
        b = ProxyGenerator(kmeans_profile, seed=2).generate_warp_traces()
        assert [t.transactions for t in a] != [t.transactions for t in b]

    def test_preserves_launch_geometry(self, tiny_kmeans, kmeans_profile):
        """Section 4: G-MAP maintains the original grid and TB dimensions."""
        generator = ProxyGenerator(kmeans_profile)
        launch = generator.launch_config()
        assert launch == tiny_kmeans.launch
        traces = generator.generate_warp_traces()
        assert len(traces) == tiny_kmeans.launch.total_warps

    def test_transactions_segment_aligned(self, kmeans_profile):
        traces = ProxyGenerator(kmeans_profile, seed=3).generate_warp_traces()
        for trace in traces[:4]:
            for _, address, size, _ in trace.transactions:
                assert address % 128 == 0
                assert size == 128

    def test_clone_size_matches_original(self, tiny_kmeans, kmeans_profile):
        clone = ProxyGenerator(kmeans_profile, seed=5).generate_warp_traces()
        original = build_warp_traces(tiny_kmeans)
        clone_total = sum(len(t) for t in clone)
        orig_total = sum(len(t) for t in original)
        assert abs(clone_total - orig_total) / orig_total < 0.05

    def test_scale_factor_shrinks_clone(self, kmeans_profile):
        generator = ProxyGenerator(kmeans_profile, seed=5)
        full = sum(len(t) for t in generator.generate_warp_traces())
        half = sum(len(t) for t in generator.generate_warp_traces(scale_factor=2))
        assert half < full * 0.7

    def test_scale_factor_validation(self, kmeans_profile):
        with pytest.raises(ValueError):
            ProxyGenerator(kmeans_profile).generate_units(scale_factor=0)

    def test_generate_returns_core_assignments(self, kmeans_profile):
        assignments = ProxyGenerator(kmeans_profile, seed=1).generate(num_cores=4)
        assert len(assignments) == 4
        total = sum(a.transaction_count for a in assignments)
        assert total == sum(
            len(t) for t in ProxyGenerator(kmeans_profile, seed=1).generate_warp_traces()
        )

    def test_interleave_round_robin_j_bound(self, kmeans_profile):
        """Alg 2's while j < J loop caps total emitted requests."""
        generator = ProxyGenerator(kmeans_profile, seed=1)
        per_core = generator.interleave_round_robin(num_cores=4, limit=100)
        assert sum(len(t) for t in per_core) == 100

    def test_thread_granularity_generation(self, tiny_vectoradd):
        """Thread-unit profiles run Alg 2's explicit grouping/coalescing."""
        profile = GmapProfiler(coalescing=False).profile(tiny_vectoradd)
        traces = ProxyGenerator(profile, seed=7).generate_warp_traces()
        assert len(traces) == tiny_vectoradd.launch.total_warps
        # Unit-stride loads should still coalesce to ~1 txn per instruction.
        w0 = traces[0]
        assert len(w0.transactions) <= len(w0.instructions) * 2


class TestMarkovStrideModel:
    def test_stride_model_validation(self, kmeans_profile):
        with pytest.raises(ValueError, match="stride_model"):
            ProxyGenerator(kmeans_profile, stride_model="lstm")
        with pytest.raises(ValueError, match="stride_model"):
            generate_unit_trace(
                0, 0, kmeans_profile.pi_profiles[0],
                kmeans_profile.instructions, {}, random.Random(0),
                stride_model="lstm",
            )

    def test_markov_reproduces_run_length_pattern(self):
        """A +s,+s,+s,wrap cycle survives Markov sampling but not IID."""
        profile = simple_profile(
            intra={100: 30, -300: 10}, n_instr=64,
        )
        stats = profile.instructions[0x10]
        # Transitions of the deterministic cycle: after +100 comes +100
        # twice then -300; after -300 always +100.
        stats.intra_markov = {
            100: Histogram({100: 20, -300: 10}),
            -300: Histogram({100: 10}),
        }
        base = {0x10: 0x1000}
        unit = generate_unit_trace(
            0, 0, profile.pi_profiles[0], profile.instructions, base,
            random.Random(5), stride_model="markov",
        )
        diffs = [b - a for a, b in zip(unit.addresses, unit.addresses[1:])]
        # No two consecutive wraps: the Markov chain forbids -300 -> -300.
        assert all(
            not (a == -300 and b == -300) for a, b in zip(diffs, diffs[1:])
        )

    def test_markov_falls_back_to_iid_without_transitions(self):
        profile = simple_profile(intra={64: 1}, n_instr=8)
        base = {0x10: 0x1000}
        unit = generate_unit_trace(
            0, 0, profile.pi_profiles[0], profile.instructions, base,
            random.Random(0), stride_model="markov",
        )
        diffs = {b - a for a, b in zip(unit.addresses, unit.addresses[1:])}
        assert diffs == {64}

    def test_profiler_records_transitions(self, tiny_kmeans):
        from repro.core.profiler import GmapProfiler
        profile = GmapProfiler().profile(tiny_kmeans)
        stats = profile.instructions[0xE8]
        assert stats.intra_markov
        # Transition histograms partition the intra strides, minus each
        # unit's first stride (which has no prior).
        total_transitions = sum(
            h.total for h in stats.intra_markov.values()
        )
        num_units = 16  # tiny kmeans: 2 blocks x 8 warps
        assert total_transitions == stats.intra_stride.total - num_units

    def test_markov_serialisation_round_trip(self, kmeans_profile):
        from repro.core.profile import GmapProfile
        restored = GmapProfile.from_dict(kmeans_profile.to_dict())
        original = kmeans_profile.instructions[0xE8].intra_markov
        loaded = restored.instructions[0xE8].intra_markov
        assert set(loaded) == set(original)
        for prev in original:
            assert loaded[prev] == original[prev]

    def test_markov_improves_cyclic_multiarray_clone(self):
        """The lib model's cyclic walk clones better under Markov strides.

        Run at the "small" scale: with enough iterations the IID early-wrap
        desynchronisation is systematic (≈10pp) while Markov stays within a
        few pp; at tiny scale both are under 2pp and ordering is noise.
        """
        from repro.core.profiler import GmapProfiler
        from repro.gpu.executor import execute_kernel
        from repro.memsim.config import PAPER_BASELINE
        from repro.memsim.simulator import simulate
        kernel = suite.make("lib", "small")
        profile = GmapProfiler().profile(kernel)
        original = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        err = {}
        for model in ("iid", "markov"):
            clone = simulate(
                ProxyGenerator(profile, seed=42, stride_model=model).generate(15),
                PAPER_BASELINE,
            )
            err[model] = abs(original.l1_miss_rate - clone.l1_miss_rate)
        assert err["markov"] < err["iid"]


class TestStatisticalFidelity:
    """The clone's stream statistics must match the profiled ones."""

    def _profile_of_clone(self, profile, seed=11):
        traces = ProxyGenerator(profile, seed=seed).generate_warp_traces()
        from repro.core.profiler import unit_streams_from_warp_traces
        units = unit_streams_from_warp_traces(traces)
        return GmapProfiler().profile_unit_streams(units, "warp", name="clone")

    def test_inter_stride_distribution_reproduced(self, kmeans_profile):
        clone_profile = self._profile_of_clone(kmeans_profile)
        d = hellinger_distance(
            kmeans_profile.instructions[0xE8].inter_stride,
            clone_profile.instructions[0xE8].inter_stride,
        )
        assert d < 0.2

    def test_reuse_fraction_reproduced(self, kmeans_profile):
        clone_profile = self._profile_of_clone(kmeans_profile)
        assert clone_profile.pi_profiles[0].reuse_fraction == pytest.approx(
            kmeans_profile.pi_profiles[0].reuse_fraction, abs=0.1
        )

    def test_pi_sequence_preserved(self, kmeans_profile):
        clone_profile = self._profile_of_clone(kmeans_profile)
        assert clone_profile.pi_profiles[0].sequence == \
            kmeans_profile.pi_profiles[0].sequence

    def test_coalescing_degree_reproduced(self, kmeans_profile):
        clone_profile = self._profile_of_clone(kmeans_profile)
        d = hellinger_distance(
            kmeans_profile.instructions[0xE8].txns_per_access,
            clone_profile.instructions[0xE8].txns_per_access,
        )
        assert d < 0.2

    def test_addresses_do_not_leak_original(self, tiny_kmeans, kmeans_profile):
        """An obfuscated profile's clone shares no addresses with the app."""
        hidden = kmeans_profile.obfuscated()
        clone = ProxyGenerator(hidden, seed=13).generate_warp_traces()
        original_lines = {
            a >> 7 for t in build_warp_traces(tiny_kmeans) for _, a, _, _ in t.transactions
        }
        clone_lines = {
            a >> 7 for t in clone for _, a, _, _ in t.transactions
        }
        assert not (original_lines & clone_lines)
