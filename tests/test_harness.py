"""Tests for the original-vs-proxy validation harness."""

from __future__ import annotations

import pytest

from repro.memsim.config import CacheConfig, DramConfig, SimConfig
from repro.validation.harness import (
    build_pipeline,
    run_experiment,
    run_sweep,
    simulate_pair,
)
from repro.workloads import suite


@pytest.fixture(scope="module")
def pipeline():
    kernel = suite.make("kmeans", "tiny")
    return build_pipeline(kernel, num_cores=4, seed=7)


def fast_config(**overrides) -> SimConfig:
    defaults = dict(
        num_cores=4,
        l1=CacheConfig(size=16 * 1024, assoc=4, line_size=128),
        l2=CacheConfig(size=256 * 1024, assoc=8, line_size=128,
                       hit_latency=30, banks=8),
        dram=DramConfig(channels=4),
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestBuildPipeline:
    def test_artifacts_present(self, pipeline):
        assert pipeline.name == "kmeans"
        assert pipeline.profile.num_instructions >= 1
        assert pipeline.original_assignments
        assert pipeline.proxy_assignments
        assert pipeline.profiling_seconds > 0
        assert pipeline.generation_seconds > 0

    def test_proxy_and_original_comparable_size(self, pipeline):
        orig = sum(a.transaction_count for a in pipeline.original_assignments)
        proxy = sum(a.transaction_count for a in pipeline.proxy_assignments)
        assert abs(orig - proxy) / orig < 0.05

    def test_miniaturized_pipeline(self):
        kernel = suite.make("kmeans", "tiny")
        small = build_pipeline(kernel, num_cores=4, scale_factor=4.0)
        full = build_pipeline(kernel, num_cores=4)
        small_txns = sum(a.transaction_count for a in small.proxy_assignments)
        full_txns = sum(a.transaction_count for a in full.proxy_assignments)
        assert small_txns < full_txns / 3


class TestSimulatePair:
    def test_returns_both_results(self, pipeline):
        pair = simulate_pair(pipeline, fast_config())
        assert pair.original.requests_issued > 0
        assert pair.proxy.requests_issued > 0

    def test_gto_proxy_uses_schedpself(self, pipeline):
        """Section 4.5: the proxy approximates GTO via SchedP_self."""
        pair = simulate_pair(pipeline, fast_config(scheduler="gto"))
        # The proxy result reflects the probabilistic policy; both ran.
        assert pair.original.requests_issued > 0
        assert pair.proxy.requests_issued > 0

    def test_accuracy_on_kmeans(self, pipeline):
        pair = simulate_pair(pipeline, fast_config())
        err = abs(pair.original.l1_miss_rate - pair.proxy.l1_miss_rate)
        assert err < 0.05


class TestRunSweep:
    def test_sweep_and_comparison(self, pipeline):
        configs = [
            fast_config(),
            fast_config(l1=CacheConfig(size=64 * 1024, assoc=8, line_size=128)),
        ]
        sweep = run_sweep(pipeline, configs)
        assert len(sweep.pairs) == 2
        comparison = sweep.comparison("l1_miss_rate")
        assert comparison.benchmark == "kmeans"
        assert len(comparison.originals) == 2
        assert 0.0 <= comparison.mean_abs_error <= 1.0


class TestRunExperiment:
    def test_report_aggregates(self):
        kernels = [suite.make("vectoradd", "tiny"), suite.make("kmeans", "tiny")]
        report = run_experiment(kernels, [fast_config()], "l1_miss_rate",
                                num_cores=4)
        assert len(report.comparisons) == 2
        assert 0.0 <= report.mean_error <= 1.0
        assert -1.0 <= report.mean_correlation <= 1.0

    def test_format_table(self):
        kernels = [suite.make("vectoradd", "tiny")]
        report = run_experiment(kernels, [fast_config()], "l1_miss_rate",
                                num_cores=4)
        table = report.format_table()
        assert "vectoradd" in table
        assert "AVERAGE" in table

    def test_empty_report(self):
        report = run_experiment([], [fast_config()], "l1_miss_rate")
        assert report.mean_error == 0.0
        assert report.mean_correlation == 1.0

    def test_parallel_matches_serial(self):
        kernels = [suite.make("vectoradd", "tiny"), suite.make("kmeans", "tiny")]
        configs = [fast_config()]
        serial = run_experiment(kernels, configs, "l1_miss_rate",
                                num_cores=4, workers=1)
        kernels = [suite.make("vectoradd", "tiny"), suite.make("kmeans", "tiny")]
        parallel = run_experiment(kernels, configs, "l1_miss_rate",
                                  num_cores=4, workers=2)
        for a, b in zip(serial.comparisons, parallel.comparisons):
            assert a.benchmark == b.benchmark
            assert a.originals == pytest.approx(b.originals)
            assert a.proxies == pytest.approx(b.proxies)


class TestSeedStability:
    def test_clone_metrics_stable_across_seeds(self):
        """Different generation seeds give statistically equivalent clones
        (the profile, not the seed, determines behaviour)."""
        from repro.core.generator import ProxyGenerator
        from repro.memsim.simulator import simulate

        kernel = suite.make("kmeans", "tiny")
        pipeline = build_pipeline(kernel, num_cores=4, seed=1)
        config = fast_config()
        rates = []
        for seed in (11, 22, 33, 44):
            proxy = ProxyGenerator(pipeline.profile, seed=seed).generate(4)
            rates.append(simulate(proxy, config).l1_miss_rate)
        spread = max(rates) - min(rates)
        assert spread < 0.05
