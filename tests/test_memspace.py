"""Tests for memory spaces: shared/texture/constant paths end to end."""

from __future__ import annotations

import pytest

from repro.core.generator import ProxyGenerator
from repro.core.profiler import GmapProfiler
from repro.gpu import memspace
from repro.gpu.executor import build_warp_traces, execute_kernel
from repro.gpu.memspace import (
    MemorySpace,
    bank_conflict_degree,
    region_bounds,
    shared_bank_of,
    space_of,
)
from repro.memsim.config import PAPER_BASELINE
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.simulator import simulate
from repro.workloads import suite
from repro.workloads.base import Layout


class TestSpaceTagging:
    def test_space_of_regions(self):
        assert space_of(0x1000_0000) is MemorySpace.GLOBAL
        assert space_of(memspace.SHARED_BASE) is MemorySpace.SHARED
        assert space_of(memspace.TEXTURE_BASE + 4) is MemorySpace.TEXTURE
        assert space_of(memspace.CONSTANT_BASE + 64) is MemorySpace.CONSTANT

    def test_region_bounds_cover_their_bases(self):
        for space in MemorySpace:
            lo, hi = region_bounds(space)
            assert lo < hi
            assert space_of(lo) is space or space is MemorySpace.GLOBAL

    def test_regions_disjoint(self):
        bounds = [region_bounds(s) for s in MemorySpace]
        for i, (lo_a, hi_a) in enumerate(bounds):
            for lo_b, hi_b in bounds[i + 1:]:
                assert hi_a <= lo_b or hi_b <= lo_a

    def test_layout_space_allocation(self):
        layout = Layout()
        g = layout.alloc("g", 64)
        s = layout.alloc("s", 64, "shared")
        t = layout.alloc("t", 64, "texture")
        c = layout.alloc("c", 64, "constant")
        assert space_of(g) is MemorySpace.GLOBAL
        assert space_of(s) is MemorySpace.SHARED
        assert space_of(t) is MemorySpace.TEXTURE
        assert space_of(c) is MemorySpace.CONSTANT

    def test_layout_invalid_space(self):
        with pytest.raises(ValueError):
            Layout().alloc("x", 64, "register")


class TestBankConflicts:
    def test_bank_of(self):
        assert shared_bank_of(0) == 0
        assert shared_bank_of(4) == 1
        assert shared_bank_of(32 * 4) == 0  # wraps at 32 banks

    def test_conflict_free_unit_stride(self):
        addresses = [lane * 4 for lane in range(32)]
        assert bank_conflict_degree(addresses) == 1

    def test_broadcast_is_free(self):
        assert bank_conflict_degree([64] * 32) == 1

    def test_stride_two_words_two_way_conflict(self):
        addresses = [lane * 8 for lane in range(32)]
        assert bank_conflict_degree(addresses) == 2

    def test_same_bank_full_serialisation(self):
        addresses = [lane * 32 * 4 for lane in range(32)]  # all bank 0
        assert bank_conflict_degree(addresses) == 32

    def test_empty(self):
        assert bank_conflict_degree([]) == 0


class TestFrontEndSerialisation:
    def test_conflicted_instruction_replays(self):
        """matmul's column reads of sB produce one record per conflict wave."""
        kernel = suite.make("matmul_shared", "tiny")
        traces = build_warp_traces(kernel)
        # sA staging stores (0xA20): unit-stride words -> degree 1.
        degrees = {}
        for pc, n in traces[0].instructions:
            if pc in (0xA20, 0xA28):
                degrees.setdefault(pc, set()).add(n)
        assert degrees[0xA20] == {1}
        assert degrees[0xA28] == {1}

    def test_shared_transactions_stay_in_space(self):
        kernel = suite.make("histogram_shared", "tiny")
        traces = build_warp_traces(kernel)
        shared_txns = [
            a for t in traces for pc, a, _, _ in t.transactions
            if pc in (0xC18, 0xC20)
        ]
        assert shared_txns
        assert all(space_of(a) is MemorySpace.SHARED for a in shared_txns)


class TestHierarchyRouting:
    def test_shared_fixed_latency(self):
        h = MemoryHierarchy(PAPER_BASELINE)
        latency = h.access(0, 0.0, 0x1, memspace.SHARED_BASE + 64, 4, False)
        assert latency == PAPER_BASELINE.shared_latency
        assert h.shared_accesses == 1
        assert h.l1s[0].stats.accesses == 0

    def test_constant_cache_hits_after_fill(self):
        h = MemoryHierarchy(PAPER_BASELINE)
        address = memspace.CONSTANT_BASE + 128
        cold = h.access(0, 0.0, 0x1, address, 4, False)
        warm = h.access(0, 10.0, 0x1, address, 4, False)
        assert warm < cold
        assert h.constant_stats().hits == 1

    def test_texture_miss_goes_to_l2(self):
        h = MemoryHierarchy(PAPER_BASELINE)
        h.access(0, 0.0, 0x1, memspace.TEXTURE_BASE + 256, 128, False)
        assert h.l2.stats.accesses >= 1
        assert h.texture_stats().misses == 1

    def test_spaces_disabled_fall_back_to_l1(self):
        config = PAPER_BASELINE.with_(texture_cache=None, constant_cache=None)
        h = MemoryHierarchy(config)
        h.access(0, 0.0, 0x1, memspace.TEXTURE_BASE + 256, 128, False)
        assert h.l1s[0].stats.accesses == 1

    def test_per_core_texture_caches_private(self):
        h = MemoryHierarchy(PAPER_BASELINE)
        address = memspace.TEXTURE_BASE
        h.access(0, 0.0, 0x1, address, 128, False)
        h.access(1, 10.0, 0x1, address, 128, False)
        assert h.texture_stats().misses == 2  # each core misses once


class TestMemspaceWorkloadsCloning:
    @pytest.mark.parametrize("name,tolerance", [
        ("matmul_shared", 0.05),
        ("histogram_shared", 0.12),
        ("convolution_texture", 0.05),
    ])
    def test_l1_cloned(self, name, tolerance):
        kernel = suite.make(name, "tiny")
        profile = GmapProfiler().profile(kernel)
        orig = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(
            ProxyGenerator(profile, seed=42).generate(15), PAPER_BASELINE
        )
        assert abs(orig.l1_miss_rate - clone.l1_miss_rate) < tolerance

    def test_shared_traffic_cloned(self):
        kernel = suite.make("matmul_shared", "tiny")
        profile = GmapProfiler().profile(kernel)
        orig = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(
            ProxyGenerator(profile, seed=42).generate(15), PAPER_BASELINE
        )
        assert clone.shared_accesses == orig.shared_accesses

    def test_constant_behaviour_cloned(self):
        kernel = suite.make("convolution_texture", "tiny")
        profile = GmapProfiler().profile(kernel)
        orig = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(
            ProxyGenerator(profile, seed=42).generate(15), PAPER_BASELINE
        )
        assert clone.constant.accesses == orig.constant.accesses
        assert abs(orig.constant.miss_rate - clone.constant.miss_rate) < 0.02

    def test_obfuscation_preserves_spaces(self):
        kernel = suite.make("matmul_shared", "tiny")
        profile = GmapProfiler().profile(kernel).obfuscated()
        for stats in profile.instructions.values():
            # Every remapped base stays in some window, and shared PCs stay
            # shared (0xA20..0xA38 are the staging/read instructions).
            if stats.pc in (0xA20, 0xA28, 0xA30, 0xA38):
                assert space_of(stats.base_address) is MemorySpace.SHARED

    def test_generated_walks_respect_bounds(self):
        kernel = suite.make("matmul_shared", "tiny")
        profile = GmapProfiler().profile(kernel)
        traces = ProxyGenerator(profile, seed=7).generate_warp_traces()
        shared_pcs = {0xA20, 0xA28, 0xA30, 0xA38}
        for trace in traces:
            for pc, address, _, _ in trace.transactions:
                if pc in shared_pcs:
                    assert space_of(address) is MemorySpace.SHARED
