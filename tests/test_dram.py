"""Tests for the GDDR DRAM timing model."""

from __future__ import annotations

import pytest

from repro.memsim.config import DramConfig, DramTimings
from repro.memsim.dram import DramModel


def make_dram(**kwargs) -> DramModel:
    return DramModel(DramConfig(**kwargs), txn_size=128, core_clock_mhz=1400.0)


class TestTimingsValidation:
    def test_positive_timings(self):
        with pytest.raises(ValueError):
            DramTimings(t_rcd=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DramConfig(mapping="RowFirst")
        with pytest.raises(ValueError):
            DramConfig(channels=3)
        with pytest.raises(ValueError):
            DramConfig(frfcfs_window=0)


class TestRowBufferOutcomes:
    def test_first_access_is_row_empty(self):
        dram = make_dram()
        dram.access(0.0, 0x1000)
        assert dram.stats.row_empties == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hit(self):
        dram = make_dram(mapping="ChRaBaRoCo")  # sequential stays in a row
        dram.access(0.0, 0)
        dram.access(1000.0, 128)
        assert dram.stats.row_hits == 1

    def test_conflict_on_different_row_same_bank(self):
        dram = make_dram(mapping="ChRaBaRoCo")
        dram.access(0.0, 0)
        dram.access(1000.0, 4096)  # row 2 of bank 0
        assert dram.stats.row_conflicts == 1

    def test_latency_ordering_hit_lt_empty_lt_conflict(self):
        """tCAS < tRCD+tCAS < tRP+tRCD+tCAS, all issued in isolation.

        Issue times are chosen outside the periodic refresh blackout
        windows so only the row-buffer outcome differs.
        """
        base = dict(mapping="ChRaBaRoCo")
        empty = make_dram(**base).access(1000.0, 0)

        dram = make_dram(**base)
        dram.access(1000.0, 0)
        hit = dram.access(10_000.0, 128)

        dram = make_dram(**base)
        dram.access(1000.0, 0)
        conflict = dram.access(10_000.0, 4096)

        assert hit < empty < conflict

    def test_row_buffer_locality_metric(self):
        dram = make_dram(mapping="ChRaBaRoCo")
        for i in range(16):  # 16 txns = one full 2KB row
            dram.access(i * 1000.0, i * 128)
        assert dram.stats.row_buffer_locality == pytest.approx(15 / 16)


class TestMappingEffects:
    def test_chrabarooco_has_higher_rbl_on_interleaved_streams(self):
        """Figure 7 mechanism: with multiple distant sequential streams,
        ChRaBaRoCo isolates each stream in its own bank (rows stay open)
        while RoBaRaCoCh folds them onto the same banks (row ping-pong)."""
        spacing = 1 << 27  # beyond the row field: distinct banks under Ch
        ro = make_dram(mapping="RoBaRaCoCh")
        ch = make_dram(mapping="ChRaBaRoCo")
        t = 0.0
        for i in range(64):
            for stream in range(8):
                address = stream * spacing + i * 128
                ro.access(t, address)
                ch.access(t, address)
                t += 500.0
        assert ch.stats.row_buffer_locality > ro.stats.row_buffer_locality

    def test_robaracoch_spreads_load_across_channels(self):
        dram = make_dram(mapping="RoBaRaCoCh")
        seq = [i * 128 for i in range(64)]
        lat_interleaved = [dram.access(0.0, a) for a in seq]
        dram2 = make_dram(mapping="ChRaBaRoCo")
        lat_single = [dram2.access(0.0, a) for a in seq]
        # All 64 requests at t=0: channel striping drains 8x faster.
        assert max(lat_interleaved) < max(lat_single)


class TestContentionAndQueue:
    def test_bank_busy_serialises(self):
        dram = make_dram(mapping="ChRaBaRoCo")
        first = dram.access(0.0, 0)
        second = dram.access(0.0, 128)  # same bank, same instant
        assert second > first  # had to wait for the bank

    def test_queue_length_grows_under_burst(self):
        dram = make_dram(mapping="ChRaBaRoCo")
        for _ in range(32):
            dram.access(0.0, 0)
        assert dram.stats.avg_queue_length > 1.0

    def test_queue_drains_over_time(self):
        dram = make_dram()
        dram.access(0.0, 0)
        dram.access(1e9, 128)  # long after: queue should be empty again
        assert dram.stats.queue_samples == 2

    def test_writes_tracked_separately(self):
        dram = make_dram()
        dram.access(0.0, 0, is_write=True)
        dram.access(0.0, 1 << 20, is_write=False)
        assert dram.stats.writes == 1
        assert dram.stats.reads == 1
        assert dram.stats.avg_write_latency > 0
        assert dram.stats.avg_read_latency > 0


class TestBusWidth:
    def test_wider_bus_shorter_burst(self):
        narrow = make_dram(bus_width=4)
        wide = make_dram(bus_width=16)
        assert narrow.access(0.0, 0) > wide.access(0.0, 0)


class TestSecondaryTimings:
    def test_tfaw_throttles_activation_bursts(self):
        """A fifth row activation in the window waits for tFAW."""
        from repro.memsim.config import DramTimings
        # 5 conflicting activates to distinct rows of distinct banks on one
        # rank, issued back to back outside the refresh blackout.
        fast = make_dram(mapping="ChRaBaRoCo",
                         timings=DramTimings(t_faw=0, t_refi=0))
        slow = make_dram(mapping="ChRaBaRoCo",
                         timings=DramTimings(t_faw=200, t_refi=0))
        bank_stride = 2048 * (1 << 16)  # next bank under ChRaBaRoCo
        latencies_fast = [fast.access(1000.0, k * bank_stride) for k in range(5)]
        latencies_slow = [slow.access(1000.0, k * bank_stride) for k in range(5)]
        assert latencies_slow[4] > latencies_fast[4]

    def test_twtr_penalises_read_after_write(self):
        from repro.memsim.config import DramTimings
        no_wtr = make_dram(timings=DramTimings(t_wtr=0, t_refi=0))
        wtr = make_dram(timings=DramTimings(t_wtr=50, t_refi=0))
        for dram in (no_wtr, wtr):
            dram.access(1000.0, 0, is_write=True)
        # Read on the same rank right after the write completes.
        read_plain = no_wtr.access(1001.0, 1 << 22)
        read_wtr = wtr.access(1001.0, 1 << 22)
        assert read_wtr > read_plain

    def test_refresh_blackout_delays(self):
        from repro.memsim.config import DramTimings
        dram = make_dram(timings=DramTimings(t_refi=1000, t_rfc=100))
        # t=0 falls inside the blackout (phase 0 < t_rfc scaled).
        in_blackout = dram.access(0.0, 0)
        fresh = make_dram(timings=DramTimings(t_refi=1000, t_rfc=100))
        outside = fresh.access(500.0, 0)
        assert in_blackout > outside

    def test_refresh_disabled(self):
        from repro.memsim.config import DramTimings
        dram = make_dram(timings=DramTimings(t_refi=0))
        a = dram.access(0.0, 0)
        fresh = make_dram(timings=DramTimings(t_refi=0))
        b = fresh.access(500.0, 0)
        assert a == pytest.approx(b)

    def test_timings_validation(self):
        from repro.memsim.config import DramTimings
        with pytest.raises(ValueError):
            DramTimings(t_faw=-1)


class TestDiagnostics:
    def test_open_rows(self):
        dram = make_dram(mapping="RoBaRaCoCh")
        assert dram.open_rows == 0
        dram.access(0.0, 0)
        dram.access(0.0, 128)
        assert dram.open_rows == 2

    def test_describe(self):
        assert "RoBaRaCoCh" in make_dram().describe()
