"""Tests for CSV reports and ASCII figure rendering."""

from __future__ import annotations

import pytest

from repro.validation.metrics import SweepComparison
from repro.validation.report import (
    ascii_bar,
    read_comparison_csv,
    render_error_chart,
    render_normalized_series,
    render_two_series_chart,
    write_comparison_csv,
)


def comparisons():
    return [
        SweepComparison("kmeans", "l1_miss_rate",
                        [0.10, 0.20], [0.11, 0.19]),
        SweepComparison("hotspot", "l1_miss_rate",
                        [0.50, 0.60], [0.40, 0.75]),
    ]


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig6a.csv"
        original = comparisons()
        write_comparison_csv(original, path)
        restored = read_comparison_csv(path)
        assert len(restored) == 2
        assert restored[0].benchmark == "kmeans"
        assert restored[0].originals == pytest.approx(original[0].originals)
        assert restored[1].proxies == pytest.approx(original[1].proxies)

    def test_csv_has_header_and_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        write_comparison_csv(comparisons(), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "benchmark,metric,config_index,original,proxy"
        assert len(lines) == 1 + 4

    def test_metrics_survive_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        original = comparisons()
        write_comparison_csv(original, path)
        restored = read_comparison_csv(path)
        assert restored[1].mean_abs_error == pytest.approx(
            original[1].mean_abs_error
        )


class TestAsciiBar:
    def test_full_bar(self):
        assert ascii_bar(1.0, 1.0, width=10) == "#" * 10

    def test_half_bar(self):
        assert ascii_bar(0.5, 1.0, width=10) == "#" * 5

    def test_zero_maximum(self):
        assert ascii_bar(0.5, 0.0) == ""

    def test_clamped_at_maximum(self):
        assert ascii_bar(5.0, 1.0, width=8) == "#" * 8


class TestErrorChart:
    def test_contains_benchmarks_and_average(self):
        chart = render_error_chart(comparisons())
        assert "kmeans" in chart
        assert "hotspot" in chart
        assert "AVERAGE" in chart

    def test_bar_lengths_ordered_by_error(self):
        chart = render_error_chart(comparisons())
        kmeans_line = next(l for l in chart.splitlines() if "kmeans" in l)
        hotspot_line = next(l for l in chart.splitlines() if "hotspot" in l)
        assert hotspot_line.count("#") > kmeans_line.count("#")

    def test_empty(self):
        assert "(no data)" in render_error_chart([])


class TestTwoSeriesChart:
    def test_rows_per_point(self):
        chart = render_two_series_chart(
            [1, 2, 4], [0.99, 0.95, 0.90], [1.0, 1.9, 3.7]
        )
        assert len(chart.splitlines()) == 4  # header + 3 points

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_two_series_chart([1], [0.5], [])

    def test_empty(self):
        assert render_two_series_chart([], [], []) == "(no data)"


class TestNormalizedSeries:
    def test_normalises_to_baseline(self):
        chart = render_normalized_series(
            {"aes": (0.5, 0.45), "kmeans": (1.0, 0.9)}, baseline="aes"
        )
        assert "normalised to aes" in chart
        # kmeans original = 1.0 / 0.5 = 2.0 relative to aes.
        assert "2.000" in chart

    def test_unknown_baseline(self):
        with pytest.raises(ValueError, match="baseline"):
            render_normalized_series({"a": (1, 1)}, baseline="zzz")
