"""End-to-end integration tests: the paper's headline claims in miniature.

These drive the complete pipeline (kernel model → profile → proxy →
simulation) and assert the cloning accuracy and qualitative behaviours the
paper reports, on small workload scales so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.core.generator import ProxyGenerator
from repro.core.profiler import GmapProfiler
from repro.gpu.executor import execute_kernel
from repro.memsim.config import (
    PAPER_BASELINE,
    CacheConfig,
    DramConfig,
    PrefetcherConfig,
    SimConfig,
)
from repro.memsim.simulator import simulate
from repro.validation.harness import build_pipeline, simulate_pair
from repro.validation.metrics import pearson_correlation
from repro.workloads import suite


def _pair(name, config, scale="tiny", seed=42):
    pipeline = build_pipeline(
        suite.make(name, scale), num_cores=config.num_cores, seed=seed
    )
    return simulate_pair(pipeline, config)


@pytest.fixture(scope="module")
def baseline():
    return PAPER_BASELINE


class TestCloningAccuracy:
    """Proxy miss rates must track the originals closely (Figure 6a/6b)."""

    @pytest.mark.parametrize("name,tolerance,scale", [
        ("kmeans", 0.03, "tiny"),
        ("vectoradd", 0.03, "tiny"),
        ("cp", 0.03, "small"),  # tiny has too few iters to converge (Fig 8)
        ("srad", 0.03, "tiny"),
        ("heartwall", 0.05, "tiny"),
        ("aes", 0.05, "tiny"),
        ("scalarprod", 0.03, "tiny"),
        ("blackscholes", 0.03, "tiny"),
        ("nw", 0.05, "tiny"),
    ])
    def test_l1_miss_rate_cloned(self, baseline, name, tolerance, scale):
        pair = _pair(name, baseline, scale=scale)
        err = abs(pair.original.l1_miss_rate - pair.proxy.l1_miss_rate)
        assert err < tolerance, (
            f"{name}: original {pair.original.l1_miss_rate:.3f} vs "
            f"proxy {pair.proxy.l1_miss_rate:.3f}"
        )

    def test_l2_miss_rate_cloned_kmeans(self, baseline):
        pair = _pair("kmeans", baseline)
        err = abs(pair.original.l2_miss_rate - pair.proxy.l2_miss_rate)
        assert err < 0.05

    def test_request_counts_match(self, baseline):
        pair = _pair("srad", baseline)
        ratio = pair.proxy.requests_issued / pair.original.requests_issued
        assert 0.95 < ratio < 1.05


class TestConfigurationTracking:
    """The proxy must rank configurations like the original (correlation)."""

    def test_l1_size_sensitivity_tracked(self):
        """Growing the L1 lowers both miss rates in lockstep."""
        kernel = suite.make("lib", "tiny")
        pipeline = build_pipeline(kernel, num_cores=15, seed=7)
        originals, proxies = [], []
        for size_kb in (8, 32, 128):
            config = PAPER_BASELINE.with_(
                l1=CacheConfig(size=size_kb * 1024, assoc=4, line_size=128)
            )
            pair = simulate_pair(pipeline, config)
            originals.append(pair.original.l1_miss_rate)
            proxies.append(pair.proxy.l1_miss_rate)
        assert originals[0] >= originals[-1]
        assert proxies[0] >= proxies[-1]
        if len(set(originals)) > 1:
            assert pearson_correlation(originals, proxies) > 0.7

    def test_l2_size_sensitivity_tracked(self):
        kernel = suite.make("streamcluster", "tiny")
        pipeline = build_pipeline(kernel, num_cores=15, seed=7)
        originals, proxies = [], []
        for size_mb in (0.125, 0.5, 2):
            config = PAPER_BASELINE.with_(
                l2=CacheConfig(size=int(size_mb * 1024 * 1024), assoc=8,
                               line_size=128, hit_latency=30, banks=8)
            )
            pair = simulate_pair(pipeline, config)
            originals.append(pair.original.l2_miss_rate)
            proxies.append(pair.proxy.l2_miss_rate)
        assert originals[0] >= originals[-1]
        assert proxies[0] >= proxies[-1]


class TestPrefetchingBehaviour:
    """Figure 6c narrative: nw benefits from prefetching, hotspot doesn't."""

    def _miss_rates(self, name, prefetch):
        config = PAPER_BASELINE
        if prefetch:
            config = config.with_(
                l1_prefetcher=PrefetcherConfig(kind="stride", degree=4)
            )
        kernel = suite.make(name, "tiny")
        result = simulate(execute_kernel(kernel, config.num_cores), config)
        return result.l1_miss_rate

    def test_nw_benefits_from_prefetching(self):
        base = self._miss_rates("nw", prefetch=False)
        pref = self._miss_rates("nw", prefetch=True)
        assert pref < base

    def test_hotspot_insensitive_to_prefetching(self):
        base = self._miss_rates("hotspot", prefetch=False)
        pref = self._miss_rates("hotspot", prefetch=True)
        assert abs(base - pref) < 0.5 * max(base, 1e-9)

    def test_proxy_reproduces_prefetch_benefit(self):
        config = PAPER_BASELINE.with_(
            l1_prefetcher=PrefetcherConfig(kind="stride", degree=4)
        )
        pair = _pair("nw", config)
        err = abs(pair.original.l1_miss_rate - pair.proxy.l1_miss_rate)
        assert err < 0.1


class TestDramBehaviour:
    """Figure 7: the proxy reproduces DRAM-level metrics."""

    def test_rbl_cloned(self, baseline):
        pair = _pair("srad", baseline)
        err = abs(pair.original.dram.row_buffer_locality
                  - pair.proxy.dram.row_buffer_locality)
        assert err < 0.15

    def test_mapping_scheme_effect_tracked(self):
        kernel = suite.make("blackscholes", "tiny")
        pipeline = build_pipeline(kernel, num_cores=15, seed=3)
        originals, proxies = [], []
        for mapping in ("RoBaRaCoCh", "ChRaBaRoCo"):
            config = PAPER_BASELINE.with_(dram=DramConfig(mapping=mapping))
            pair = simulate_pair(pipeline, config)
            originals.append(pair.original.dram.row_buffer_locality)
            proxies.append(pair.proxy.dram.row_buffer_locality)
        # Proxy must agree with the original about which mapping wins.
        assert (originals[0] >= originals[1]) == (proxies[0] >= proxies[1])


class TestSchedulingPolicies:
    """Figure 6e: cloning works under both LRR and GTO."""

    @pytest.mark.parametrize("policy", ["lrr", "gto"])
    def test_policy_cloned(self, policy):
        config = PAPER_BASELINE.with_(scheduler=policy)
        pair = _pair("aes", config)
        err = abs(pair.original.l1_miss_rate - pair.proxy.l1_miss_rate)
        assert err < 0.08


class TestMiniaturization:
    """Figure 8: smaller clones simulate faster, accuracy degrades slowly."""

    def test_8x_clone_remains_accurate(self):
        kernel = suite.make("kmeans", "small")
        full = build_pipeline(kernel, num_cores=15, seed=5)
        small = build_pipeline(kernel, num_cores=15, seed=5, scale_factor=8.0)
        config = PAPER_BASELINE
        original = simulate(full.original_assignments, config)
        clone = simulate(small.proxy_assignments, config)
        err = abs(original.l1_miss_rate - clone.l1_miss_rate)
        assert err < 0.10  # "accuracy drops to ~90%" at 8x

    def test_clone_request_count_scales(self):
        kernel = suite.make("kmeans", "small")
        small = build_pipeline(kernel, num_cores=15, seed=5, scale_factor=8.0)
        full = build_pipeline(kernel, num_cores=15, seed=5)
        full_txns = sum(a.transaction_count for a in full.proxy_assignments)
        small_txns = sum(a.transaction_count for a in small.proxy_assignments)
        assert small_txns < full_txns / 6


class TestWorkingSetFidelity:
    """Configuration-free locality check: the clone's Mattson curve must
    hug the original's for every regular app."""

    @pytest.mark.parametrize("name", [
        "kmeans", "vectoradd", "srad", "cp", "heartwall", "blackscholes",
        "nw", "scalarprod", "lib", "fwt",
    ])
    def test_clone_working_set_curve(self, name):
        from repro.core.generator import ProxyGenerator
        from repro.gpu.executor import build_warp_traces
        from repro.validation.metrics import working_set_distance

        kernel = suite.make(name, "tiny")
        profile = GmapProfiler().profile(kernel)
        original = [
            a for t in build_warp_traces(kernel)
            for pc, a, _, _ in t.transactions if pc >= 0
        ]
        clone_traces = ProxyGenerator(profile, seed=21).generate_warp_traces()
        clone = [
            a for t in clone_traces
            for pc, a, _, _ in t.transactions if pc >= 0
        ]
        assert working_set_distance(original, clone) < 0.12


class TestThreadGranularityPipeline:
    """The paper-literal path: profile scalar threads, coalesce in Alg 2."""

    @pytest.mark.parametrize("name", ["vectoradd", "srad"])
    def test_thread_mode_clones_l1(self, name):
        kernel = suite.make(name, "tiny")
        profile = GmapProfiler(coalescing=False).profile(kernel)
        assert profile.unit == "thread"
        proxy = ProxyGenerator(profile, seed=17).generate(15)
        original = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(proxy, PAPER_BASELINE)
        assert abs(original.l1_miss_rate - clone.l1_miss_rate) < 0.08

    def test_warp_mode_beats_thread_mode_on_periodic_kernels(self):
        """Why the paper coalesces *before* the locality analysis: kmeans'
        34-long feature cycle is invisible to per-thread IID stride
        sampling (the wrap becomes a geometric, not periodic, event and
        lanes desynchronise), but survives warp-granularity profiling."""
        kernel = suite.make("kmeans", "tiny")
        original = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        errors = {}
        for coalescing in (True, False):
            profile = GmapProfiler(coalescing=coalescing).profile(kernel)
            clone = simulate(
                ProxyGenerator(profile, seed=17).generate(15), PAPER_BASELINE
            )
            errors[coalescing] = abs(original.l1_miss_rate - clone.l1_miss_rate)
        assert errors[True] < 0.02       # warp mode: near-exact
        assert errors[False] > errors[True]  # thread mode visibly worse

    def test_thread_mode_request_counts_close(self):
        """Alg 2's explicit coalescing yields a similar transaction count
        to the original's front-end coalescing."""
        kernel = suite.make("vectoradd", "tiny")
        profile = GmapProfiler(coalescing=False).profile(kernel)
        proxy = ProxyGenerator(profile, seed=17).generate(15)
        original = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(proxy, PAPER_BASELINE)
        ratio = clone.requests_issued / original.requests_issued
        assert 0.8 < ratio < 1.3


class TestObfuscatedSharing:
    """Section 1 use case: the shared profile hides the original stream."""

    def test_obfuscated_profile_still_clones_performance(self):
        kernel = suite.make("cp", "small")
        profile = GmapProfiler().profile(kernel).obfuscated()
        proxy = ProxyGenerator(profile, seed=9).generate(15)
        config = PAPER_BASELINE
        original = simulate(execute_kernel(kernel, 15), config)
        clone = simulate(proxy, config)
        assert abs(original.l1_miss_rate - clone.l1_miss_rate) < 0.05
