"""Tests for warp scheduling policies and the warp queue."""

from __future__ import annotations

import pytest

from repro.gpu.scheduler import (
    GtoScheduler,
    LrrScheduler,
    SchedPselfScheduler,
    TwoLevelScheduler,
    WarpQueue,
    make_scheduler,
    measure_p_self,
)


class TestLrr:
    def test_starts_with_first(self):
        assert LrrScheduler().select([3, 5, 9], last=None) == 3

    def test_advances_past_last(self):
        assert LrrScheduler().select([1, 4, 7], last=4) == 7

    def test_wraps_around(self):
        assert LrrScheduler().select([1, 4, 7], last=7) == 1

    def test_last_not_in_ready(self):
        assert LrrScheduler().select([2, 6], last=4) == 6

    def test_full_rotation_visits_everyone(self):
        sched = LrrScheduler()
        ready = [0, 1, 2, 3]
        last = None
        seen = []
        for _ in range(8):
            last = sched.select(ready, last)
            seen.append(last)
        assert seen == [0, 1, 2, 3, 0, 1, 2, 3]


class TestGto:
    def test_greedy_sticks_to_last(self):
        assert GtoScheduler().select([1, 4, 7], last=4) == 4

    def test_falls_back_to_oldest(self):
        assert GtoScheduler().select([2, 5], last=9) == 2

    def test_initial_pick_oldest(self):
        assert GtoScheduler().select([3, 8], last=None) == 3


class TestSchedPself:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedPselfScheduler(p_self=1.5)

    def test_p_one_always_sticks(self):
        sched = SchedPselfScheduler(p_self=1.0, seed=3)
        assert all(sched.select([1, 2, 3], last=2) == 2 for _ in range(20))

    def test_p_zero_behaves_like_lrr(self):
        sched = SchedPselfScheduler(p_self=0.0, seed=3)
        assert sched.select([1, 2, 3], last=2) == 3

    def test_intermediate_probability(self):
        sched = SchedPselfScheduler(p_self=0.7, seed=11)
        same = sum(1 for _ in range(2000) if sched.select([1, 2], last=1) == 1)
        assert 0.62 < same / 2000 < 0.78

    def test_clone_is_independent_and_reproducible(self):
        a = SchedPselfScheduler(p_self=0.5, seed=7)
        b = a.clone()
        picks_a = [a.select([1, 2], 1) for _ in range(50)]
        picks_b = [b.select([1, 2], 1) for _ in range(50)]
        assert picks_a == picks_b


class TestTwoLevel:
    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(group_size=0)

    def test_stays_within_active_group(self):
        sched = TwoLevelScheduler(group_size=4)
        ready = [0, 1, 2, 3, 4, 5, 6, 7]  # groups {0, 1}
        picks = []
        last = None
        for _ in range(8):
            last = sched.select(ready, last)
            picks.append(last)
        # Only group 0 issues while all of it stays ready.
        assert set(picks) == {0, 1, 2, 3}

    def test_switches_when_group_stalls(self):
        sched = TwoLevelScheduler(group_size=4)
        sched.select([0, 1, 2, 3, 4, 5], None)  # activates group 0
        pick = sched.select([4, 5], 0)          # group 0 all stalled
        assert pick in (4, 5)

    def test_wraps_to_first_group(self):
        sched = TwoLevelScheduler(group_size=4)
        sched.select([4, 5], None)   # activates group 1
        assert sched.select([0, 1], 5) in (0, 1)

    def test_clone_preserves_group_size(self):
        assert TwoLevelScheduler(group_size=16).clone().group_size == 16

    def test_end_to_end_simulation(self, small_config):
        from repro.gpu.executor import execute_kernel
        from repro.memsim.simulator import SimtSimulator
        from repro.workloads import suite
        kernel = suite.make("aes", "tiny")
        assignments = execute_kernel(kernel, small_config.num_cores)
        result = SimtSimulator(
            small_config.with_(scheduler="twolevel")
        ).run(assignments)
        assert result.requests_issued > 0
        # Intra-group round robin keeps SchedP_self low, like LRR.
        assert result.measured_p_self < 0.5


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_scheduler("lrr"), LrrScheduler)
        assert isinstance(make_scheduler("GTO"), GtoScheduler)
        assert isinstance(make_scheduler("schedpself", 0.3), SchedPselfScheduler)
        assert isinstance(make_scheduler("two-level"), TwoLevelScheduler)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_scheduler("fifo")


class TestMeasurePself:
    def test_alternating_is_zero(self):
        assert measure_p_self([1, 2, 1, 2, 1]) == 0.0

    def test_constant_is_one(self):
        assert measure_p_self([3, 3, 3, 3]) == 1.0

    def test_mixed(self):
        assert measure_p_self([1, 1, 2, 2, 3]) == pytest.approx(0.5)

    def test_short_sequences(self):
        assert measure_p_self([]) == 0.0
        assert measure_p_self([5]) == 0.0

    def test_lrr_vs_gto_signature(self):
        """GTO produces a much higher SchedP_self than LRR (section 4.5)."""
        lrr, gto = LrrScheduler(), GtoScheduler()
        ready = [0, 1, 2, 3]
        seq_lrr, seq_gto = [], []
        last_l = last_g = None
        for _ in range(100):
            last_l = lrr.select(ready, last_l)
            last_g = gto.select(ready, last_g)
            seq_lrr.append(last_l)
            seq_gto.append(last_g)
        assert measure_p_self(seq_gto) > 0.9
        assert measure_p_self(seq_lrr) < 0.1


class TestWarpQueue:
    def test_add_and_ready(self):
        q = WarpQueue()
        q.add(3)
        q.add(1)
        assert q.ready_at(0.0) == [1, 3]

    def test_duplicate_add_rejected(self):
        q = WarpQueue()
        q.add(1)
        with pytest.raises(ValueError):
            q.add(1)

    def test_delay_hides_warp(self):
        q = WarpQueue()
        q.add(1)
        q.delay(1, until=10.0)
        assert q.ready_at(5.0) == []
        assert q.ready_at(10.0) == [1]

    def test_delay_unknown_warp(self):
        with pytest.raises(KeyError):
            WarpQueue().delay(4, 1.0)

    def test_retire(self):
        q = WarpQueue()
        q.add(2)
        q.retire(2)
        assert len(q) == 0
        q.retire(2)  # idempotent

    def test_next_event(self):
        q = WarpQueue()
        assert q.next_event() is None
        q.add(1, time=4.0)
        q.add(2, time=2.0)
        assert q.next_event() == 2.0

    def test_contains(self):
        q = WarpQueue()
        q.add(9)
        assert 9 in q
        assert 3 not in q
