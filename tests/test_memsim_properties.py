"""Property-based tests over the memory-system models."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.scheduler import (
    GtoScheduler,
    LrrScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from repro.memsim.address_mapping import AddressMapping
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import CacheConfig, DramConfig
from repro.memsim.dram import DramModel

addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 30) - 1), min_size=1, max_size=300
)


class TestCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(addresses, st.sampled_from([1, 2, 4]), st.sampled_from([64, 128]))
    def test_counter_consistency(self, trace, assoc, line):
        cache = SetAssociativeCache(
            CacheConfig(size=16 * line * assoc, assoc=assoc, line_size=line)
        )
        for address in trace:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(trace)
        assert cache.occupied_lines <= 16 * assoc
        assert stats.evictions == stats.misses - cache.occupied_lines

    @settings(max_examples=40, deadline=None)
    @given(addresses)
    def test_immediate_rereference_always_hits(self, trace):
        cache = SetAssociativeCache(
            CacheConfig(size=1024, assoc=2, line_size=64)
        )
        for address in trace:
            cache.access(address)
            hit, _ = cache.access(address)
            assert hit

    @settings(max_examples=30, deadline=None)
    @given(addresses, st.sampled_from(["lru", "fifo", "random"]))
    def test_replacement_policies_share_cold_misses(self, trace, policy):
        """Compulsory misses are policy-independent."""
        line = 64
        unique_lines = len({a // line for a in trace})
        cache = SetAssociativeCache(
            CacheConfig(size=1 << 20, assoc=16, line_size=line,
                        replacement=policy)
        )
        for address in trace:
            cache.access(address)
        # Cache far larger than the trace: misses == cold misses exactly.
        assert cache.stats.misses == unique_lines


class TestDramProperties:
    @settings(max_examples=25, deadline=None)
    @given(addresses, st.sampled_from(["RoBaRaCoCh", "ChRaBaRoCo"]))
    def test_latency_positive_and_counters_consistent(self, trace, mapping):
        dram = DramModel(DramConfig(mapping=mapping), txn_size=128)
        now = 1000.0
        for address in trace:
            latency = dram.access(now, address)
            assert latency > 0
            now += 7.0
        stats = dram.stats
        assert stats.reads == len(trace)
        assert stats.row_hits + stats.row_empties + stats.row_conflicts == \
            stats.reads

    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_mapping_decomposition_total(self, trace):
        mapping = AddressMapping(DramConfig(), txn_size=128)
        for address in trace:
            coord = mapping.decompose(address)
            assert 0 <= coord.channel < 8
            assert 0 <= coord.bank < 8
            assert coord.row >= 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 28))
    def test_same_address_becomes_row_hit(self, address):
        dram = DramModel(DramConfig(), txn_size=128)
        dram.access(1000.0, address)
        before = dram.stats.row_hits
        dram.access(20000.0 % 3000 + 3000.0, address)
        assert dram.stats.row_hits == before + 1


ready_sets = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=16,
    unique=True,
).map(sorted)


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(ready_sets, st.integers(min_value=0, max_value=63) | st.none(),
           st.sampled_from(["lrr", "gto", "twolevel"]))
    def test_selection_always_from_ready_set(self, ready, last, policy):
        scheduler = make_scheduler(policy)
        assert scheduler.select(ready, last) in ready

    @settings(max_examples=40, deadline=None)
    @given(ready_sets)
    def test_lrr_is_fair(self, ready):
        """Over len(ready) consecutive picks, LRR visits every warp once."""
        scheduler = LrrScheduler()
        last = None
        seen = []
        for _ in range(len(ready)):
            last = scheduler.select(ready, last)
            seen.append(last)
        assert sorted(seen) == list(ready)

    @settings(max_examples=40, deadline=None)
    @given(ready_sets)
    def test_gto_is_sticky(self, ready):
        scheduler = GtoScheduler()
        first = scheduler.select(ready, None)
        assert scheduler.select(ready, first) == first

    @settings(max_examples=40, deadline=None)
    @given(ready_sets, st.sampled_from([1, 2, 4, 8]))
    def test_twolevel_group_stability(self, ready, group_size):
        """While the active group has ready warps, picks stay inside it."""
        scheduler = TwoLevelScheduler(group_size=group_size)
        first = scheduler.select(ready, None)
        group = first // group_size
        second = scheduler.select(ready, first)
        assert second // group_size == group