"""Tests for the G-MAP profiling phase."""

from __future__ import annotations

import pytest

from repro.core.distributions import reuse_class
from repro.core.profiler import (
    GmapProfiler,
    UnitStream,
    unit_streams_from_warp_traces,
)
from repro.gpu.executor import WarpTrace, build_warp_traces
from repro.workloads import suite


class TestProfilerConstruction:
    def test_reuse_semantics_validation(self):
        with pytest.raises(ValueError, match="reuse_semantics"):
            GmapProfiler(reuse_semantics="magic")

    def test_empty_units_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            GmapProfiler().profile_unit_streams([], "warp")


class TestWarpGranularityProfile:
    def test_metadata(self, tiny_kmeans, kmeans_profile):
        profile = kmeans_profile
        assert profile.name == "kmeans"
        assert profile.unit == "warp"
        assert profile.grid_dim == (2, 1, 1)
        assert profile.block_dim == (256, 1, 1)
        assert profile.segment_size == 128

    def test_single_pi_profile_without_divergence(self, kmeans_profile):
        """Section 4.1: uniform kernels collapse to one dominant π profile."""
        assert kmeans_profile.num_profiles == 1
        assert kmeans_profile.q == [1.0]

    def test_pi_sequence_matches_instruction_order(self, tiny_kmeans, kmeans_profile):
        traces = build_warp_traces(tiny_kmeans)
        expected = tuple(pc for pc, _ in traces[0].instructions)
        assert kmeans_profile.pi_profiles[0].sequence == expected

    def test_kmeans_inter_warp_stride(self, kmeans_profile):
        """Table 1: kmeans dominant inter-warp stride is 4352 bytes."""
        stride, freq = kmeans_profile.instructions[0xE8].inter_stride.dominant()
        assert stride == 4352
        assert freq > 0.9

    def test_kmeans_coalescing_degree(self, kmeans_profile):
        """136B-strided lanes span ~32 segments per warp instruction."""
        txns = kmeans_profile.instructions[0xE8].txns_per_access
        assert txns.mode() >= 30

    def test_kmeans_high_reuse(self, kmeans_profile):
        """Table 1 classifies kmeans reuse as high (>70%)."""
        assert reuse_class(kmeans_profile.pi_profiles[0].reuse_fraction) == "high"

    def test_vectoradd_inter_warp_stride(self, vectoradd_profile):
        """Unit-stride threads -> 128B inter-warp stride (Figure 4)."""
        for pc in (0x50, 0x58, 0x60):
            stride, freq = vectoradd_profile.instructions[pc].inter_stride.dominant()
            assert stride == 128
            assert freq == pytest.approx(1.0)

    def test_vectoradd_intra_stride_is_sweep(self, tiny_vectoradd, vectoradd_profile):
        sweep = tiny_vectoradd.launch.total_threads * 4
        stride, _ = vectoradd_profile.instructions[0x50].intra_stride.dominant()
        assert stride == sweep

    def test_vectoradd_store_flag(self, vectoradd_profile):
        assert vectoradd_profile.instructions[0x60].is_store
        assert not vectoradd_profile.instructions[0x50].is_store

    def test_srad_low_reuse(self):
        profile = GmapProfiler().profile(suite.make("srad", "tiny"))
        assert reuse_class(profile.pi_profiles[0].reuse_fraction) == "low"

    def test_total_transactions(self, tiny_kmeans, kmeans_profile):
        traces = build_warp_traces(tiny_kmeans)
        assert kmeans_profile.total_transactions == sum(len(t) for t in traces)

    def test_occupancy_full_without_divergence(self, kmeans_profile):
        assert kmeans_profile.avg_warp_occupancy == pytest.approx(1.0)

    def test_occupancy_reduced_by_divergence(self, tiny_bfs):
        """bfs's tid%4 predicate masks a quarter of the lanes on the
        expansion path: occupancy sits well below 1."""
        profile = GmapProfiler().profile(tiny_bfs)
        assert profile.avg_warp_occupancy < 0.95

    def test_occupancy_survives_serialisation(self, tiny_bfs):
        from repro.core.profile import GmapProfile
        profile = GmapProfiler().profile(tiny_bfs)
        restored = GmapProfile.from_dict(profile.to_dict())
        assert restored.avg_warp_occupancy == pytest.approx(
            profile.avg_warp_occupancy
        )

    def test_divergent_kernel_multiple_thread_profiles(self, tiny_bfs):
        """BFS diverges per thread (tid%4), visible at thread granularity."""
        profile = GmapProfiler(coalescing=False).profile(tiny_bfs)
        assert profile.num_profiles >= 2
        assert sum(profile.q) == pytest.approx(1.0)

    def test_intra_warp_divergence_collapses_at_warp_level(self, tiny_bfs):
        """Lockstep masking makes every warp's merged sequence identical."""
        profile = GmapProfiler().profile(tiny_bfs)
        assert profile.num_profiles == 1

    def test_warp_level_divergence_clusters(self):
        """Warps taking different paths yield multiple π profiles (Fig 3b)."""
        streams = []
        for w in range(8):
            stream = UnitStream(w)
            pcs = [1, 2, 3] * 6 if w % 2 else [1, 3] * 6
            for i, pc in enumerate(pcs):
                stream.pcs.append(pc)
                stream.addrs.append(128 * (w * 64 + i))
                stream.txns.append(1)
                stream.stores.append(0)
            streams.append(stream)
        profile = GmapProfiler().profile_unit_streams(streams, "warp")
        assert profile.num_profiles == 2
        assert sorted(profile.q) == [0.5, 0.5]

    def test_dynamic_counts(self, tiny_vectoradd, vectoradd_profile):
        launch = tiny_vectoradd.launch
        # Every warp executes each load once per iteration.
        iters = tiny_vectoradd.iters
        expected = launch.total_warps * iters
        assert vectoradd_profile.instructions[0x50].dynamic_count == expected


class TestThreadGranularityProfile:
    def test_unit_is_thread(self, tiny_vectoradd):
        profile = GmapProfiler(coalescing=False).profile(tiny_vectoradd)
        assert profile.unit == "thread"

    def test_inter_thread_stride_is_elem_size(self, tiny_vectoradd):
        """Without coalescing, adjacent threads differ by 4 bytes."""
        profile = GmapProfiler(coalescing=False).profile(tiny_vectoradd)
        stride, freq = profile.instructions[0x50].inter_stride.dominant()
        assert stride == 4
        assert freq > 0.99

    def test_txns_degenerate_at_one(self, tiny_vectoradd):
        profile = GmapProfiler(coalescing=False).profile(tiny_vectoradd)
        assert profile.instructions[0x50].txns_per_access.support() == [1]


class TestReuseSemantics:
    def test_lookback_vs_stack_on_unique_interleave(self):
        """With distinct intervening lines the two semantics agree."""
        stream = UnitStream(0)
        # Lines: A B C A -> lookback of final A = 2, stack distance = 2.
        for pc, addr in [(1, 0), (1, 128), (1, 256), (1, 0)]:
            stream.pcs.append(pc)
            stream.addrs.append(addr)
            stream.txns.append(1)
            stream.stores.append(0)
        look = GmapProfiler(reuse_semantics="lookback").profile_unit_streams(
            [stream], "warp")
        stack = GmapProfiler(reuse_semantics="stack").profile_unit_streams(
            [stream], "warp")
        assert look.pi_profiles[0].reuse.items() == [(2, 1)]
        assert stack.pi_profiles[0].reuse.items() == [(2, 1)]

    def test_lookback_counts_repeats_stack_does_not(self):
        stream = UnitStream(0)
        # Lines: A B B A -> lookback of final A = 2, stack distance = 1.
        for addr in [0, 128, 128, 0]:
            stream.pcs.append(1)
            stream.addrs.append(addr)
            stream.txns.append(1)
            stream.stores.append(0)
        look = GmapProfiler(reuse_semantics="lookback").profile_unit_streams(
            [stream], "warp")
        stack = GmapProfiler(reuse_semantics="stack").profile_unit_streams(
            [stream], "warp")
        assert look.pi_profiles[0].reuse.count(2) == 1
        assert stack.pi_profiles[0].reuse.count(1) == 1

    def test_reuse_fraction_agrees_between_semantics(self, tiny_kmeans):
        """"lookback" counts sibling-transaction overlap in the fraction
        (Figure 5 is over all cacheline accesses); "stack" is instance
        level.  For kmeans — dense windows revisited wholesale — both land
        firmly in the high class."""
        look = GmapProfiler(reuse_semantics="lookback").profile(tiny_kmeans)
        stack = GmapProfiler(reuse_semantics="stack").profile(tiny_kmeans)
        assert look.pi_profiles[0].reuse_fraction > 0.7
        assert stack.pi_profiles[0].reuse_fraction > 0.7


class TestExternalTraceAdapter:
    def test_unit_streams_from_warp_traces(self):
        trace = WarpTrace(warp_id=0, block=0)
        trace.transactions = [(0x10, 0, 128, 0), (0x10, 128, 128, 0),
                              (0x20, 4096, 128, 1)]
        trace.instructions = [(0x10, 2), (0x20, 1)]
        units = unit_streams_from_warp_traces([trace])
        assert len(units) == 1
        assert units[0].pcs == [0x10, 0x20]
        assert units[0].addrs == [0, 4096]
        assert units[0].txns == [2, 1]
        assert units[0].stores == [0, 1]

    def test_profile_from_external_traces(self):
        traces = []
        for w in range(4):
            t = WarpTrace(warp_id=w, block=0)
            t.transactions = [(0x10, 128 * w, 128, 0)]
            t.instructions = [(0x10, 1)]
            traces.append(t)
        units = unit_streams_from_warp_traces(traces)
        profile = GmapProfiler().profile_unit_streams(units, "warp", name="ext")
        assert profile.instructions[0x10].inter_stride.dominant()[0] == 128
