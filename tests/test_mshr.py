"""Tests for the MSHR file."""

from __future__ import annotations

import pytest

from repro.memsim.mshr import MshrFile


class TestMshr:
    def test_validation(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_lookup_miss(self):
        mshr = MshrFile(4)
        assert mshr.lookup(0x10, now=0.0) is None

    def test_allocate_and_merge(self):
        mshr = MshrFile(4)
        stall, completion = mshr.allocate(0x10, now=0.0, service_latency=100.0)
        assert stall == 0.0
        assert completion == 100.0
        assert mshr.lookup(0x10, now=50.0) == 100.0

    def test_entry_retires_after_completion(self):
        mshr = MshrFile(4)
        mshr.allocate(0x10, now=0.0, service_latency=100.0)
        assert mshr.lookup(0x10, now=100.0) is None
        assert mshr.outstanding == 0

    def test_full_file_stalls(self):
        mshr = MshrFile(2)
        mshr.allocate(1, now=0.0, service_latency=50.0)
        mshr.allocate(2, now=0.0, service_latency=80.0)
        stall, completion = mshr.allocate(3, now=10.0, service_latency=100.0)
        assert stall == pytest.approx(40.0)  # waits for line 1 at t=50
        assert completion == pytest.approx(150.0)

    def test_no_stall_when_entry_already_free(self):
        mshr = MshrFile(1)
        mshr.allocate(1, now=0.0, service_latency=10.0)
        stall, _ = mshr.allocate(2, now=20.0, service_latency=10.0)
        assert stall == 0.0

    def test_outstanding_count(self):
        mshr = MshrFile(8)
        mshr.allocate(1, 0.0, 100.0)
        mshr.allocate(2, 0.0, 100.0)
        mshr.lookup(3, now=0.0)
        assert mshr.outstanding == 2

    def test_reallocation_of_same_line_overwrites(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 0.0, 10.0)
        mshr.allocate(1, 20.0, 30.0)
        assert mshr.lookup(1, 25.0) == pytest.approx(50.0)
