"""Tests for DRAM address mapping schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.address_mapping import AddressMapping
from repro.memsim.config import DramConfig


def mapping(scheme="RoBaRaCoCh", channels=8, ranks=1, banks=8,
            row_bytes=2048, txn=128) -> AddressMapping:
    return AddressMapping(
        DramConfig(channels=channels, ranks=ranks, banks=banks,
                   row_bytes=row_bytes, mapping=scheme),
        txn_size=txn,
    )


class TestFieldBounds:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1 << 40), st.sampled_from(["RoBaRaCoCh", "ChRaBaRoCo"]))
    def test_fields_within_geometry(self, address, scheme):
        m = mapping(scheme)
        c = m.decompose(address)
        assert 0 <= c.channel < 8
        assert 0 <= c.rank < 1
        assert 0 <= c.bank < 8
        assert 0 <= c.column < 2048 // 128
        assert c.row >= 0

    def test_within_transaction_offset_ignored(self):
        m = mapping()
        assert m.decompose(0x1000) == m.decompose(0x1000 + 127)


class TestRoBaRaCoCh:
    def test_consecutive_txns_stripe_channels(self):
        """Channel bits lowest: adjacent transactions hit distinct channels."""
        m = mapping("RoBaRaCoCh")
        channels = [m.decompose(i * 128).channel for i in range(8)]
        assert channels == list(range(8))

    def test_same_row_after_channel_wrap(self):
        m = mapping("RoBaRaCoCh")
        a = m.decompose(0)
        b = m.decompose(8 * 128)  # one column ahead, same channel
        assert b.channel == a.channel
        assert b.column == a.column + 1
        assert b.row == a.row

    def test_row_changes_at_high_bits(self):
        m = mapping("RoBaRaCoCh")
        span = 8 * (2048 // 128) * 1 * 8 * 128  # ch*co*ra*ba*txn
        assert m.decompose(span).row == m.decompose(0).row + 1

    def test_channel_of_helper(self):
        m = mapping("RoBaRaCoCh")
        assert m.channel_of(128) == 1


class TestChRaBaRoCo:
    def test_consecutive_txns_same_channel_same_row(self):
        """Column bits lowest: a sequential burst stays in one open row."""
        m = mapping("ChRaBaRoCo")
        coords = [m.decompose(i * 128) for i in range(16)]
        assert {c.channel for c in coords} == {0}
        assert {c.bank for c in coords} == {0}
        rows = {c.row for c in coords}
        assert len(rows) == 1  # 16 txns fit inside one 2KB row? 16*128 = 2048
        assert coords[1].column == coords[0].column + 1

    def test_row_advances_after_row_bytes(self):
        m = mapping("ChRaBaRoCo")
        assert m.decompose(2048).row == 1
        assert m.decompose(2048).channel == 0

    def test_channel_in_top_bits(self):
        m = mapping("ChRaBaRoCo")
        top = 128 * (2048 // 128) * (1 << 16) * 8 * 1  # txn*co*row*ba*ra
        assert m.decompose(top).channel == 1


class TestValidation:
    def test_bad_txn_size(self):
        with pytest.raises(ValueError):
            mapping(txn=100)

    def test_single_channel_geometry(self):
        m = mapping(channels=1, banks=2)
        c = m.decompose(1 << 30)
        assert c.channel == 0
        assert 0 <= c.bank < 2

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 1 << 34))
    def test_decomposition_injective_per_scheme(self, address):
        """Distinct transactions map to distinct coordinates."""
        m = mapping("RoBaRaCoCh")
        a = m.decompose(address)
        b = m.decompose(address + 128)
        assert a != b
