"""Tests for the fleet front door, load generator, and bench schema.

``RouterCore`` is deliberately HTTP-free: these tests replace the module's
``http_json`` with an in-memory fake fleet, so placement, spill, shed, and
reassignment semantics are exercised without sockets.  One compact live
test at the end boots a real two-replica fleet end to end.
"""

import io
import json

import pytest

import repro.service.router as router_mod
from repro.service.bench import BENCH_SCHEMA, validate_report
from repro.service.loadgen import LoadReport, ReqGenEngine
from repro.service.router import ReplicaEndpoint, RouterCore


# -- in-memory fleet fake ---------------------------------------------------

class FakeReplica:
    """Accepts jobs, completes them on first lookup; togglable failure."""

    def __init__(self):
        self.jobs = {}
        self.shed = False          # 429 every submit
        self.down = False          # transport error on any request
        self.job_status = "completed"

    def handle(self, method, path, body):
        if self.down:
            raise ConnectionError("replica down")
        if method == "POST" and path == "/jobs":
            if self.shed:
                return 429, {"error": "queue full", "retry_after": 1,
                             "error_kind": "rejected"}
            job_id = body["job_id"]
            self.jobs[job_id] = dict(body)
            return 202, {"job_id": job_id, "status": "queued"}
        if method == "GET" and path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if job_id not in self.jobs:
                return 404, {"error": "unknown job"}
            return 200, {"job_id": job_id, "status": self.job_status,
                         "result": {"ok": True}}
        return 404, {"error": path}


class FakeFleet:
    def __init__(self, n, monkeypatch):
        self.replicas = [FakeReplica() for _ in range(n)]
        self.endpoints = []
        for slot in range(n):
            ep = ReplicaEndpoint(slot, f"r{slot}")
            ep.set_base_url(f"http://fake-{slot}")
            ep.mark_healthy({"est_wait_seconds": 0.0})
            self.endpoints.append(ep)
        self.core = RouterCore(self.endpoints)
        monkeypatch.setattr(router_mod, "http_json", self._http_json)

    def _http_json(self, method, url, body=None, timeout=None):
        prefix = "http://fake-"
        assert url.startswith(prefix), url
        slot_str, _, path = url[len(prefix):].partition("/")
        return self.replicas[int(slot_str)].handle(method, "/" + path, body)

    def jobs_per_replica(self):
        return [len(r.jobs) for r in self.replicas]


def _payload(**params):
    merged = {"target": "vectoradd", "scale": "tiny", "cores": 2}
    merged.update(params)
    return {"kind": "simulate", "params": merged}


@pytest.fixture
def fleet3(monkeypatch):
    return FakeFleet(3, monkeypatch)


# -- placement --------------------------------------------------------------

class TestPlacement:
    def test_submit_accepts_and_names_replica(self, fleet3):
        status, body = fleet3.core.submit(_payload())
        assert status == 202
        assert body["replica"] in {"r0", "r1", "r2"}
        assert body["job_id"].startswith("fleet-")

    def test_sticky_same_key_lands_same_replica(self, fleet3):
        for _ in range(6):
            status, _body = fleet3.core.submit(_payload())
            assert status == 202
        counts = fleet3.jobs_per_replica()
        assert sorted(counts) == [0, 0, 6]  # one replica owns the key

    def test_distinct_keys_spread(self, fleet3):
        for i in range(24):
            status, _body = fleet3.core.submit(_payload(cores=i))
            assert status == 202
        # Rendezvous hashing over 24 distinct keys should not collapse
        # onto a single replica.
        assert sum(1 for c in fleet3.jobs_per_replica() if c > 0) >= 2

    def test_rendezvous_minimal_disruption(self, fleet3):
        payload = _payload()
        before = [ep.slot for ep in fleet3.core.candidates_for(payload)]
        fleet3.endpoints[before[0]].mark_down()
        after = [ep.slot for ep in fleet3.core.candidates_for(payload)]
        # Losing the top candidate only removes it; the rest keep order.
        assert after == before[1:]

    def test_fault_jobs_route_by_load_not_key(self, fleet3):
        fleet3.endpoints[0].mark_healthy({"est_wait_seconds": 9.0})
        fleet3.endpoints[1].mark_healthy({"est_wait_seconds": 0.1})
        fleet3.endpoints[2].mark_healthy({"est_wait_seconds": 4.0})
        chaos = dict(_payload(), fault={"spec": "kill:*:*"})
        order = [ep.slot for ep in fleet3.core.candidates_for(chaos)]
        assert order == [1, 2, 0]  # least estimated wait first

    def test_output_jobs_route_by_load(self, fleet3):
        fleet3.endpoints[0].mark_healthy({"est_wait_seconds": 9.0})
        fleet3.endpoints[1].mark_healthy({"est_wait_seconds": 0.1})
        fleet3.endpoints[2].mark_healthy({"est_wait_seconds": 2.0})
        side_effect = _payload(output="/tmp/x.json")
        assert fleet3.core.candidates_for(side_effect)[0].slot == 1

    def test_load_routing_uses_per_kind_service_time(self, fleet3):
        # Two replicas with equal backlogs: the one that has historically
        # run analytic jobs in milliseconds must win an analytic submit,
        # even though its fleet-wide average (dominated by replays) loses.
        fleet3.endpoints[0].mark_healthy({
            "est_wait_seconds": 1.0, "avg_job_seconds": 6.0,
            "avg_job_seconds_by_kind": {"simulate:analytic": 0.005},
        })
        fleet3.endpoints[1].mark_healthy({
            "est_wait_seconds": 1.0, "avg_job_seconds": 2.0,
            "avg_job_seconds_by_kind": {},
        })
        fleet3.endpoints[2].mark_down()
        chaos = dict(_payload(analytic=True), fault={"spec": "kill:*:*"})
        assert fleet3.core.candidates_for(chaos)[0].slot == 0

    def test_invalid_payload_rejected(self, fleet3):
        status, body = fleet3.core.submit(["not", "a", "dict"])
        assert status == 400
        assert body["error_kind"] == "invalid_request"

    def test_no_routable_replicas(self, fleet3):
        for ep in fleet3.endpoints:
            ep.mark_down()
        status, body = fleet3.core.submit(_payload())
        assert status == 503
        assert body["error_kind"] == "rejected"


# -- failover ---------------------------------------------------------------

class TestFailover:
    def test_spill_past_dead_replica(self, fleet3):
        payload = _payload()
        top = fleet3.core.candidates_for(payload)[0]
        fleet3.replicas[top.slot].down = True
        status, body = fleet3.core.submit(payload)
        assert status == 202
        assert body["replica"] != top.replica_id
        assert fleet3.core.fleet_snapshot()["counters"]["spilled"] == 1
        assert not top.routable  # one transport error marks it suspect

    def test_all_shed_returns_429(self, fleet3):
        for replica in fleet3.replicas:
            replica.shed = True
        status, body = fleet3.core.submit(_payload())
        assert status == 429
        assert body["retry_after"] == 1
        assert fleet3.core.fleet_snapshot()["counters"]["shed"] == 1

    def test_partial_shed_spills_sideways(self, fleet3):
        payload = _payload()
        top = fleet3.core.candidates_for(payload)[0]
        fleet3.replicas[top.slot].shed = True
        status, body = fleet3.core.submit(payload)
        assert status == 202
        assert body["replica"] != top.replica_id


# -- lookup and reassignment ------------------------------------------------

class TestLookupReassign:
    def test_lookup_caches_terminal(self, fleet3):
        _status, body = fleet3.core.submit(_payload())
        job_id = body["job_id"]
        status, job = fleet3.core.lookup(job_id)
        assert (status, job["status"]) == (200, "completed")
        # The owning replica forgets the job (restart): the router still
        # serves the cached terminal outcome.
        for replica in fleet3.replicas:
            replica.jobs.clear()
        status, job = fleet3.core.lookup(job_id)
        assert (status, job["status"]) == (200, "completed")

    def test_unknown_job_404(self, fleet3):
        status, body = fleet3.core.lookup("no-such-job")
        assert status == 404

    def test_lookup_reassigns_lost_job(self, fleet3):
        _status, body = fleet3.core.submit(_payload())
        job_id = body["job_id"]
        owner = next(i for i, r in enumerate(fleet3.replicas)
                     if job_id in r.jobs)
        fleet3.replicas[owner].jobs.clear()  # replica lost it (restart)
        status, job = fleet3.core.lookup(job_id)
        assert status == 200
        assert job["reassigned"] is True
        new_owner = next(i for i, r in enumerate(fleet3.replicas)
                         if job_id in r.jobs)
        assert new_owner != owner  # prefers a different slot

    def test_reassign_from_moves_only_nonterminal(self, fleet3):
        _s, settled = fleet3.core.submit(_payload(cores=101))
        fleet3.core.lookup(settled["job_id"])  # settle it (terminal cached)
        _s, live = fleet3.core.submit(_payload(cores=102))
        owner = next(i for i, r in enumerate(fleet3.replicas)
                     if live["job_id"] in r.jobs)
        fleet3.replicas[owner].down = True
        fleet3.endpoints[owner].mark_down()
        moved = fleet3.core.reassign_from(owner)
        assert moved == 1  # only the live job moves
        assert any(live["job_id"] in r.jobs
                   for i, r in enumerate(fleet3.replicas) if i != owner)
        # The settled job was never resubmitted: it still exists only on
        # its original replica.
        settled_copies = sum(1 for r in fleet3.replicas
                             if settled["job_id"] in r.jobs)
        assert settled_copies == 1

    def test_reassign_keeps_job_id(self, fleet3):
        _s, body = fleet3.core.submit(_payload(cores=7))
        job_id = body["job_id"]
        owner = next(i for i, r in enumerate(fleet3.replicas)
                     if job_id in r.jobs)
        fleet3.replicas[owner].down = True
        fleet3.endpoints[owner].mark_down()
        assert fleet3.core.reassign_from(owner) == 1
        new_owner = next(i for i, r in enumerate(fleet3.replicas)
                         if job_id in r.jobs)
        assert new_owner != owner
        assert fleet3.replicas[new_owner].jobs[job_id]["params"][
            "cores"] == 7
        snap = fleet3.core.fleet_snapshot()
        assert snap["counters"]["reassigned"] == 1


# -- endpoint state machine --------------------------------------------------

class TestReplicaEndpoint:
    def test_probe_failure_threshold(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({})
        assert ep.routable
        assert ep.mark_probe_failed(threshold=3) is False
        assert ep.routable  # one failure is not a transition
        assert ep.mark_probe_failed(threshold=3) is False
        assert ep.mark_probe_failed(threshold=3) is True  # crossed
        assert not ep.routable
        # Further failures are not a new transition.
        assert ep.mark_probe_failed(threshold=3) is False

    def test_mark_healthy_resets_failures(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({})
        ep.mark_probe_failed(threshold=3)
        ep.mark_probe_failed(threshold=3)
        ep.mark_healthy({"est_wait_seconds": 1.5})
        assert ep.mark_probe_failed(threshold=3) is False  # counter reset
        assert ep.est_wait_seconds() == 1.5

    def test_mark_down_reports_transition_once(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({})
        assert ep.mark_down() is True
        assert ep.mark_down() is False
        assert ep.base_url is None

    def test_garbage_telemetry_is_zero_wait(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({"est_wait_seconds": "not-a-number"})
        assert ep.est_wait_seconds() == 0.0

    def test_est_wait_for_kind_adds_kind_service_time(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({
            "est_wait_seconds": 2.0, "avg_job_seconds": 5.0,
            "avg_job_seconds_by_kind": {"simulate:analytic": 0.004},
        })
        assert ep.est_wait_seconds_for(None) == 2.0
        assert ep.est_wait_seconds_for("simulate:analytic") == \
            pytest.approx(2.004)
        # Unknown kind: fall back to the fleet-wide average service time.
        assert ep.est_wait_seconds_for("simulate") == pytest.approx(7.0)

    def test_est_wait_for_kind_tolerates_garbage(self):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://x")
        ep.mark_healthy({
            "est_wait_seconds": 1.0,
            "avg_job_seconds_by_kind": {"simulate": "oops"},
        })
        assert ep.est_wait_seconds_for("simulate") == 1.0


# -- request generator -------------------------------------------------------

class TestReqGenEngine:
    def test_seeded_determinism(self):
        a = ReqGenEngine(seed=42, key_diversity=4)
        b = ReqGenEngine(seed=42, key_diversity=4)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_key_diversity_bounds_pool(self):
        engine = ReqGenEngine(seed=1, key_diversity=3)
        seen = {json.dumps(engine.next(), sort_keys=True)
                for _ in range(60)}
        assert 1 <= len(seen) <= 3

    def test_key_diversity_validated(self):
        with pytest.raises(ValueError):
            ReqGenEngine(key_diversity=0)

    def test_payloads_are_independent_copies(self):
        engine = ReqGenEngine(seed=1, key_diversity=1)
        first = engine.next()
        first["params"]["cores"] = 999  # caller mutates its copy
        assert engine.next()["params"]["cores"] != 999

    def test_record_then_replay_roundtrip(self, tmp_path):
        sink = io.StringIO()
        recorder = ReqGenEngine(seed=7, key_diversity=4, record_to=sink)
        issued = [recorder.next() for _ in range(10)]
        trace = tmp_path / "trace.jsonl"
        trace.write_text(sink.getvalue())
        replayer = ReqGenEngine.from_trace(str(trace))
        assert [replayer.next() for _ in range(10)] == issued
        assert replayer.next() is None  # replay streams exhaust


# -- report math -------------------------------------------------------------

class TestLoadReport:
    def test_percentiles_interpolated(self):
        report = LoadReport(mode="closed", duration_seconds=2.0,
                            submitted=4, completed=4,
                            latencies_ms=[40.0, 10.0, 30.0, 20.0])
        doc = report.to_dict()
        assert doc["latency_ms"]["p50"] == 25.0
        assert doc["latency_ms"]["max"] == 40.0
        assert doc["throughput_rps"] == 2.0

    def test_shed_rate_and_empty_latency(self):
        report = LoadReport(mode="open", duration_seconds=1.0,
                            submitted=10, completed=0, shed=4, failed=6)
        doc = report.to_dict()
        assert doc["shed_rate"] == 0.4
        assert doc["latency_ms"]["p99"] == 0.0

    def test_zero_submitted(self):
        doc = LoadReport(mode="closed", duration_seconds=0.0).to_dict()
        assert doc["shed_rate"] == 0.0
        assert doc["throughput_rps"] == 0.0


# -- bench schema ------------------------------------------------------------

def _bench_doc():
    block = LoadReport(mode="closed", duration_seconds=1.0,
                       submitted=1, completed=1,
                       latencies_ms=[5.0]).to_dict()
    return {
        "schema": BENCH_SCHEMA,
        "single": dict(block),
        "fleet": dict(block),
        "overload": {"offered_rate_rps": 4.0, "report": dict(block)},
        "recovery": {"kill_to_routable_seconds": 0.5, "recovered": True},
        "priority": {
            "offered_bulk_rate_rps": 8.0,
            "bulk": dict(block),
            "interactive": dict(block),
            "bulk_saturation_interactive_p99": 5.0,
        },
        "gates": {"zero_failed": True},
    }


class TestBenchSchema:
    def test_valid_doc_passes(self):
        assert validate_report(_bench_doc()) is None

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(schema=99), "schema"),
        (lambda d: d.pop("fleet"), "fleet"),
        (lambda d: d["single"].pop("throughput_rps"), "throughput_rps"),
        (lambda d: d["overload"].pop("offered_rate_rps"), "overload"),
        (lambda d: d.pop("recovery"), "recovery"),
        (lambda d: d["priority"].pop("bulk_saturation_interactive_p99"),
         "priority"),
        (lambda d: d.pop("gates"), "gates"),
    ])
    def test_broken_docs_name_the_problem(self, mutate, fragment):
        doc = _bench_doc()
        mutate(doc)
        problem = validate_report(doc)
        assert problem is not None
        assert fragment in problem


# -- live two-replica integration --------------------------------------------

class TestLiveFleet:
    def test_fleet_end_to_end(self, tmp_path):
        """Boot a real 2-replica fleet, push a small closed-loop workload
        through the router, and check the fleet snapshot accounting."""
        from repro.service.fleet import Fleet, FleetConfig
        from repro.service.loadgen import Workload

        config = FleetConfig(
            replicas=2, workers=1, queue_capacity=8, job_timeout=30.0,
            isolation="thread", health_interval=0.2, restart_base=0.1,
            boot_timeout=60.0, shared_cache_dir=str(tmp_path / "shared"),
        )
        with Fleet(config) as fleet:
            assert fleet.wait_routable(2, timeout=60.0)
            engine = ReqGenEngine(seed=99, key_diversity=4, scale="tiny")
            workload = Workload(fleet.router_url, engine, job_deadline=30.0)
            report = workload.run_closed(clients=2, max_requests=6)
            doc = report.to_dict()
            assert doc["completed"] == 6
            assert doc["failed"] == 0 and doc["lost"] == 0
            snap = fleet.snapshot()
            assert snap["routable"] == 2
            assert snap["jobs_tracked"] >= 6
            assert snap["counters"]["routed"] >= 6


# -- counter lock discipline (regression: interprocedural analyzer) ---------

class _TrackingLock:
    """Context-managed lock that records which thread currently holds it."""

    def __init__(self):
        import threading

        self._threading = threading
        self._inner = threading.Lock()
        self.holder = None

    def __enter__(self):
        self._inner.acquire()
        self.holder = self._threading.get_ident()
        return self

    def __exit__(self, *exc):
        self.holder = None
        self._inner.release()
        return False


class _GuardedCounters(dict):
    """Counter dict that records writes made without the jobs lock held."""

    def __init__(self, lock, seed):
        super().__init__(seed)
        self._lock = lock
        self.unlocked_writes = []

    def __setitem__(self, key, value):
        import threading

        if self._lock.holder != threading.get_ident():
            self.unlocked_writes.append(key)
        super().__setitem__(key, value)


class TestRouterCounterLockDiscipline:
    """The analyzer flagged router counter increments racing ``_jobs_lock``;
    every placement-path counter mutation must now hold the lock."""

    def _instrument(self, core):
        lock = _TrackingLock()
        core._jobs_lock = lock
        core._counters = _GuardedCounters(lock, core._counters)
        return core._counters

    def test_routed_counter_under_lock(self, fleet3):
        counters = self._instrument(fleet3.core)
        status, _body = fleet3.core.submit(_payload())
        assert status == 202
        assert counters["routed"] == 1
        assert counters.unlocked_writes == []

    def test_spill_and_shed_counters_under_lock(self, monkeypatch):
        endpoints = []
        for slot in range(2):
            ep = ReplicaEndpoint(slot, f"r{slot}")
            ep.set_base_url(f"http://fake-{slot}")
            ep.mark_healthy({"est_wait_seconds": 0.0})
            endpoints.append(ep)
        core = RouterCore(endpoints)
        counters = self._instrument(core)
        monkeypatch.setattr(
            router_mod, "http_json",
            lambda method, url, body=None, timeout=None:
                (429, {"error": "at capacity", "retry_after": 1.0}))
        status, _body = core.submit(_payload())
        assert status == 429
        assert counters["spilled"] == 2  # both replicas shed sideways
        assert counters["shed"] == 1
        assert counters.unlocked_writes == []

    def test_unreachable_replica_spill_under_lock(self, monkeypatch):
        ep = ReplicaEndpoint(0, "r0")
        ep.set_base_url("http://fake-0")
        ep.mark_healthy({"est_wait_seconds": 0.0})
        core = RouterCore([ep])
        counters = self._instrument(core)

        def unreachable(method, url, body=None, timeout=None):
            raise OSError("connection refused")

        monkeypatch.setattr(router_mod, "http_json", unreachable)
        status, _body = core.submit(_payload())
        assert status == 503
        assert counters["spilled"] == 1
        assert counters.unlocked_writes == []
