"""Tests for DRAM presets and the experiment registry."""

from __future__ import annotations

import pytest

from repro.memsim.config import PAPER_BASELINE
from repro.memsim.dram import DramModel
from repro.memsim.presets import GDDR3_PAPER, HBM2_LIKE, PRESETS, dram_preset
from repro.validation.experiments import EXPERIMENTS, experiment


class TestDramPresets:
    def test_paper_preset_matches_table2(self):
        assert GDDR3_PAPER == PAPER_BASELINE.dram

    def test_lookup(self):
        assert dram_preset("gddr5").clock_mhz == 1750.0
        with pytest.raises(ValueError, match="unknown DRAM preset"):
            dram_preset("ddr2")

    def test_all_presets_instantiate(self):
        for name, config in PRESETS.items():
            model = DramModel(config, txn_size=128)
            latency = model.access(1000.0, 0)
            assert latency > 0, name

    def test_hbm_has_more_channel_parallelism(self):
        """HBM's 16 channels drain a burst faster than GDDR3's 8."""
        burst = [i * 128 for i in range(64)]
        gddr = DramModel(GDDR3_PAPER, txn_size=128)
        hbm = DramModel(HBM2_LIKE, txn_size=128)
        gddr_lat = max(gddr.access(1000.0, a) for a in burst)
        hbm_lat = max(hbm.access(1000.0, a) for a in burst)
        assert hbm_lat < gddr_lat


class TestExperimentRegistry:
    def test_all_paper_figures_present(self):
        assert set(EXPERIMENTS) == {"fig6a", "fig6b", "fig6c", "fig6d", "fig7"}

    def test_lookup(self):
        spec = experiment("fig6a")
        assert spec.metric == "l1_miss_rate"
        assert spec.paper_error == "5.1%"
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment("fig9")

    def test_configs_reduced_and_full(self):
        spec = experiment("fig6a")
        assert len(spec.configs(reduced=False)) == 30
        assert len(spec.configs(reduced=True)) < 30

    @pytest.mark.parametrize("figure_id", sorted(EXPERIMENTS))
    def test_every_spec_builds_configs(self, figure_id):
        spec = experiment(figure_id)
        configs = spec.configs(reduced=True)
        assert configs
        assert spec.description
        assert spec.figure.startswith("Figure")
