"""Tests for TB-level synchronization (paper section 4.5).

Barriers (``__syncthreads()``) flow through the whole pipeline: kernel
models emit ``SYNC_PC`` markers, the lockstep front end crosses them when
every lane arrives, the profiler keeps them in π sequences (with no memory
statistics), the generator replays them, and the simulator's warp queues
hold warps at them until the whole threadblock arrives.
"""

from __future__ import annotations

import pytest

from repro.core.generator import ProxyGenerator
from repro.core.coalescing import CoalescingModel
from repro.core.profiler import GmapProfiler
from repro.gpu.executor import (
    build_warp_traces,
    execute_kernel,
    lockstep_warp_trace,
)
from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import SYNC_PC, is_sync, pack, sync_marker
from repro.memsim.simulator import SimtSimulator
from repro.workloads.base import Layout, RegularKernel, StridedInstr
from repro.workloads import suite


def make_sync_kernel(blocks=2, block_size=64, iters=8, sync_every=2):
    layout = Layout()
    layout.alloc("a", 1 << 22)
    layout.alloc("b", 1 << 22)
    instrs = [
        StridedInstr(pc=0x10, array="a", inter_stride=4, intra_stride=128),
        StridedInstr(pc=0x20, array="b", inter_stride=4, intra_stride=128),
    ]
    return RegularKernel(
        LaunchConfig(blocks, block_size), layout, instrs, iters=iters,
        sync_every=sync_every,
    )


class TestSyncMarkers:
    def test_marker_helpers(self):
        marker = sync_marker()
        assert is_sync(marker)
        assert not is_sync(pack(0x10, 0))
        assert marker[0] == SYNC_PC

    def test_kernel_emits_markers(self):
        kernel = make_sync_kernel(iters=8, sync_every=2)
        trace = kernel.trace_thread(0)
        syncs = sum(1 for a in trace if is_sync(a))
        assert syncs == 4

    def test_sync_every_validation(self):
        with pytest.raises(ValueError):
            make_sync_kernel(sync_every=-1)


class TestLockstepBarriers:
    def test_all_lanes_cross_together(self):
        lanes = [
            [pack(0x10, 4 * lane), sync_marker(), pack(0x20, 4 * lane)]
            for lane in range(4)
        ]
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        pcs = [pc for pc, _ in trace.instructions]
        assert pcs == [0x10, SYNC_PC, 0x20]

    def test_sync_waits_for_slower_path(self):
        """A lane at the barrier must not run before the others arrive."""
        fast = [sync_marker(), pack(0x30, 0)]
        slow = [pack(0x10, 64), sync_marker(), pack(0x30, 4)]
        trace = lockstep_warp_trace([fast, slow], CoalescingModel())
        pcs = [pc for pc, _ in trace.instructions]
        assert pcs == [0x10, SYNC_PC, 0x30]

    def test_sync_transaction_record(self):
        lanes = [[sync_marker()]] * 2
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        assert trace.transactions == [(SYNC_PC, 0, 0, 0)]


class TestProfilingWithBarriers:
    def test_pi_sequence_contains_sync(self):
        kernel = make_sync_kernel()
        profile = GmapProfiler().profile(kernel)
        assert SYNC_PC in profile.dominant_profile().sequence

    def test_no_instruction_stats_for_sync(self):
        kernel = make_sync_kernel()
        profile = GmapProfiler().profile(kernel)
        assert SYNC_PC not in profile.instructions

    def test_reuse_fraction_unpolluted_by_sync(self):
        """Barrier records must not count as touches of line 0."""
        with_sync = GmapProfiler().profile(make_sync_kernel(sync_every=1))
        without = GmapProfiler().profile(make_sync_kernel(sync_every=0))
        assert with_sync.dominant_profile().reuse_fraction == pytest.approx(
            without.dominant_profile().reuse_fraction, abs=0.02
        )


class TestGenerationWithBarriers:
    def test_clone_replays_sync_count(self):
        kernel = make_sync_kernel()
        profile = GmapProfiler().profile(kernel)
        clone_traces = ProxyGenerator(profile, seed=1).generate_warp_traces()
        original_traces = build_warp_traces(kernel)
        clone_syncs = sum(
            1 for t in clone_traces for pc, _ in t.instructions if pc == SYNC_PC
        )
        orig_syncs = sum(
            1 for t in original_traces for pc, _ in t.instructions if pc == SYNC_PC
        )
        assert clone_syncs == orig_syncs > 0


class TestSimulationWithBarriers:
    def test_barriers_crossed_counted(self, small_config):
        kernel = make_sync_kernel(iters=8, sync_every=2)
        assignments = execute_kernel(kernel, small_config.num_cores)
        result = SimtSimulator(small_config).run(assignments)
        # 2 blocks, each crossing 4 barriers.
        assert result.barriers_crossed == 8
        assert result.requests_issued == kernel.launch.total_warps * 16

    def test_barrier_enforces_block_ordering(self, small_config):
        """No warp may issue post-barrier work before its block syncs.

        With a barrier each iteration, the warps of a block can never be
        more than one iteration apart, which bounds how early the fast
        warp's later lines can appear; we verify via the barrier count and
        that the run completes (no deadlock).
        """
        kernel = make_sync_kernel(blocks=1, block_size=128, iters=6,
                                  sync_every=1)
        assignments = execute_kernel(kernel, small_config.num_cores)
        result = SimtSimulator(small_config).run(assignments)
        assert result.barriers_crossed == 6

    def test_original_vs_clone_accuracy_with_barriers(self, small_config):
        kernel = make_sync_kernel(blocks=4, block_size=256, iters=12,
                                  sync_every=3)
        profile = GmapProfiler().profile(kernel)
        orig = SimtSimulator(small_config).run(
            execute_kernel(kernel, small_config.num_cores)
        )
        clone = SimtSimulator(small_config).run(
            ProxyGenerator(profile, seed=2).generate(small_config.num_cores)
        )
        assert clone.barriers_crossed == orig.barriers_crossed
        assert abs(orig.l1_miss_rate - clone.l1_miss_rate) < 0.05

    def test_pathfinder_uses_barriers(self, small_config):
        kernel = suite.make("pathfinder", "tiny")
        result = SimtSimulator(small_config).run(
            execute_kernel(kernel, small_config.num_cores)
        )
        assert result.barriers_crossed > 0
