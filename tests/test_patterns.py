"""Tests for the address-pattern primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    grid2d,
    hash_scatter,
    linear,
    splitmix64,
    stencil_offsets_2d,
    triangular_row_start,
    zipf_index,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_for_consecutive_keys(self):
        values = {splitmix64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_64_bit_range(self):
        for key in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(key) < 2**64

    def test_avalanche(self):
        """A single-bit input change should flip many output bits."""
        a, b = splitmix64(0), splitmix64(1)
        assert bin(a ^ b).count("1") > 16


class TestLinearHelpers:
    def test_linear(self):
        assert linear(0x1000, 5, 4) == 0x1014

    def test_grid2d(self):
        assert grid2d(0, row=2, col=3, row_bytes=512, elem_size=4) == 1036


class TestHashScatter:
    def test_within_footprint(self):
        for key in range(200):
            address = hash_scatter(0x1000, key, footprint_bytes=4096)
            assert 0x1000 <= address < 0x1000 + 4096

    def test_alignment(self):
        for key in range(100):
            assert hash_scatter(0, key, 1 << 16, align=8) % 8 == 0

    def test_deterministic(self):
        assert hash_scatter(0, 7, 1024) == hash_scatter(0, 7, 1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            hash_scatter(0, 1, 0)
        with pytest.raises(ValueError):
            hash_scatter(0, 1, 64, align=0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32), st.integers(64, 1 << 20))
    def test_property_in_range(self, key, footprint):
        address = hash_scatter(0x4000, key, footprint)
        assert 0x4000 <= address < 0x4000 + footprint


class TestZipfIndex:
    def test_in_range(self):
        for key in range(500):
            assert 0 <= zipf_index(key, 256) < 256

    def test_skew_favours_head(self):
        head_hits = sum(1 for key in range(2000) if zipf_index(key, 1024) < 32)
        assert head_hits > 800  # heavily skewed toward small indices

    def test_higher_skew_more_concentrated(self):
        mild = sum(zipf_index(k, 1024, skew=1.05) for k in range(2000))
        strong = sum(zipf_index(k, 1024, skew=2.0) for k in range(2000))
        assert strong < mild

    def test_skew_one_special_case(self):
        for key in range(100):
            assert 0 <= zipf_index(key, 64, skew=1.0) < 64

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_index(0, 0)
        with pytest.raises(ValueError):
            zipf_index(0, 8, skew=0)

    def test_n_one_always_zero(self):
        assert all(zipf_index(k, 1) == 0 for k in range(50))


class TestStencil:
    def test_radius_zero(self):
        assert stencil_offsets_2d(0, 64) == [0]

    def test_radius_one(self):
        assert stencil_offsets_2d(1, 64) == [0, -1, 1, -64, 64]

    def test_radius_two_count(self):
        assert len(stencil_offsets_2d(2, 100)) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil_offsets_2d(-1, 8)


class TestTriangular:
    def test_known_values(self):
        assert [triangular_row_start(r) for r in range(5)] == [0, 1, 3, 6, 10]

    def test_validation(self):
        with pytest.raises(ValueError):
            triangular_row_start(-1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_row_lengths(self, row):
        assert (
            triangular_row_start(row + 1) - triangular_row_start(row) == row + 1
        )
