"""Tests for proxy miniaturization and scale-up."""

from __future__ import annotations

import pytest

from repro.core.generator import ProxyGenerator
from repro.core.miniaturize import miniaturize_profile, scale_up_threads


class TestMiniaturize:
    def test_factor_validation(self, kmeans_profile):
        with pytest.raises(ValueError):
            miniaturize_profile(kmeans_profile, 0)
        with pytest.raises(ValueError):
            miniaturize_profile(kmeans_profile, -2)

    def test_sequences_truncated(self, kmeans_profile):
        scaled = miniaturize_profile(kmeans_profile, 4)
        for original, small in zip(kmeans_profile.pi_profiles, scaled.pi_profiles):
            assert len(small.sequence) == max(1, len(original.sequence) // 4)
            assert small.sequence == original.sequence[: len(small.sequence)]

    def test_total_transactions_scaled(self, kmeans_profile):
        scaled = miniaturize_profile(kmeans_profile, 8)
        assert scaled.total_transactions == kmeans_profile.total_transactions // 8

    def test_scale_factor_recorded_and_composes(self, kmeans_profile):
        scaled = miniaturize_profile(miniaturize_profile(kmeans_profile, 2), 2)
        assert scaled.scale_factor == pytest.approx(4.0)

    def test_original_untouched(self, kmeans_profile):
        before = len(kmeans_profile.pi_profiles[0].sequence)
        miniaturize_profile(kmeans_profile, 8)
        assert len(kmeans_profile.pi_profiles[0].sequence) == before

    def test_reuse_lookbacks_capped_to_sequence(self, kmeans_profile):
        scaled = miniaturize_profile(kmeans_profile, 8)
        for pi in scaled.pi_profiles:
            if not pi.reuse.empty:
                assert max(pi.reuse.support()) <= max(1, len(pi.sequence))

    def test_thin_statistics_optional(self, kmeans_profile):
        kept = miniaturize_profile(kmeans_profile, 4, thin_statistics=False)
        instr = kept.instructions[0xE8]
        assert instr.intra_stride == kmeans_profile.instructions[0xE8].intra_stride

    def test_generated_clone_is_smaller(self, kmeans_profile):
        full = ProxyGenerator(kmeans_profile, seed=1).generate_warp_traces()
        small_profile = miniaturize_profile(kmeans_profile, 4)
        small = ProxyGenerator(small_profile, seed=1).generate_warp_traces()
        full_txns = sum(len(t) for t in full)
        small_txns = sum(len(t) for t in small)
        assert small_txns <= full_txns / 3

    def test_extreme_factor_keeps_one_instruction(self, kmeans_profile):
        scaled = miniaturize_profile(kmeans_profile, 10_000)
        assert all(len(p.sequence) == 1 for p in scaled.pi_profiles)
        assert scaled.total_transactions >= 1


class TestScaleUp:
    def test_fractional_factor_tiles_sequence(self, kmeans_profile):
        scaled = miniaturize_profile(kmeans_profile, 0.5)
        for original, big in zip(kmeans_profile.pi_profiles, scaled.pi_profiles):
            assert len(big.sequence) == len(original.sequence) * 2
            n = len(original.sequence)
            assert big.sequence[:n] == original.sequence
            assert big.sequence[n:] == original.sequence

    def test_scale_up_threads(self, kmeans_profile):
        bigger = scale_up_threads(kmeans_profile, 4)
        assert bigger.grid_dim == (kmeans_profile.grid_dim[0] * 4,
                                   *kmeans_profile.grid_dim[1:])
        assert bigger.total_transactions == kmeans_profile.total_transactions * 4

    def test_scale_up_threads_generates_more_warps(self, kmeans_profile):
        bigger = scale_up_threads(kmeans_profile, 2)
        traces = ProxyGenerator(bigger, seed=1).generate_warp_traces()
        base = ProxyGenerator(kmeans_profile, seed=1).generate_warp_traces()
        assert len(traces) == 2 * len(base)

    def test_scale_up_validation(self, kmeans_profile):
        with pytest.raises(ValueError):
            scale_up_threads(kmeans_profile, 0)
