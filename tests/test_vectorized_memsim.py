"""Cross-validation of the array-resident memsim against the scalar oracle.

The vectorized flat-replay engine (:mod:`repro.memsim.vectorized`) claims
bit-exactness for every supported configuration — not statistical
closeness.  These tests hold it to that: randomized traces and cache
geometries (hypothesis), the associativity specializations, the
sector-split and MSHR-merge regressions the scalar window exists for, the
one-pass multi-config path, and every entry of the hybrid fallback matrix.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.instructions import pack
from repro.gpu.memspace import CONSTANT_BASE, TEXTURE_BASE
from repro.memsim import vectorized
from repro.memsim.config import (
    PAPER_BASELINE,
    CacheConfig,
    PrefetcherConfig,
    SimConfig,
)
from repro.memsim.simulator import simulate_flat_trace
from repro.memsim.vectorized import (
    FlatTraceArrays,
    UnsupportedConfigError,
    memsim_fallback_reasons,
    simulate_flat_multi,
    simulate_flat_numpy,
)
from repro.validation import sweeps

pytestmark = pytest.mark.skipif(
    vectorized.np is None, reason="numpy unavailable"
)

GLOBAL_BASE = 0x1000_0000


def small_config(
    l1_sets: int = 4,
    l1_assoc: int = 2,
    l1_line: int = 64,
    num_cores: int = 2,
) -> SimConfig:
    """A deliberately tiny hierarchy so short traces still evict."""
    return PAPER_BASELINE.with_(
        num_cores=num_cores,
        l1=CacheConfig(
            size=l1_sets * l1_assoc * l1_line,
            assoc=l1_assoc,
            line_size=l1_line,
            mshrs=8,
        ),
        l2=CacheConfig(
            size=16 * 4 * 128, assoc=4, line_size=128,
            hit_latency=30, banks=2, mshrs=16,
        ),
    )


def assert_bit_identical(traces, config):
    oracle = simulate_flat_trace(traces, config, backend="python")
    array = simulate_flat_numpy(traces, config)
    assert array.to_dict() == oracle.to_dict()
    return oracle


# -- randomized cross-validation ---------------------------------------------

access_lists = st.lists(
    st.tuples(
        st.sampled_from([80, 88, 96]),                    # pc
        st.integers(min_value=0, max_value=(1 << 14) - 1),  # offset words
        st.sampled_from([4, 32, 128, 256]),                # size
        st.booleans(),                                     # is_store
    ),
    min_size=0,
    max_size=120,
)


class TestRandomizedCrossValidation:
    @settings(max_examples=30, deadline=None)
    @given(
        access_lists,
        access_lists,
        st.sampled_from([1, 2, 4]),
        st.sampled_from([32, 64, 128]),
    )
    def test_batched_matches_scalar(self, trace_a, trace_b, assoc, line):
        traces = [
            [
                pack(pc, GLOBAL_BASE + offset * 16, size, store)
                for pc, offset, size, store in trace
            ]
            for trace in (trace_a, trace_b)
        ]
        config = small_config(l1_assoc=assoc, l1_line=line)
        assert_bit_identical(traces, config)

    @settings(max_examples=15, deadline=None)
    @given(access_lists)
    def test_repeat_runs_are_deterministic(self, trace):
        traces = [[
            pack(pc, GLOBAL_BASE + offset * 16, size, store)
            for pc, offset, size, store in trace
        ]]
        config = small_config(num_cores=1)
        first = simulate_flat_numpy(traces, config)
        second = simulate_flat_numpy(traces, config)
        assert first.to_dict() == second.to_dict()


# -- targeted regressions ----------------------------------------------------

def reuse_heavy_traces(num_cores: int = 3, length: int = 60):
    """Strided streams with deliberate cross-core same-line collisions."""
    traces = []
    for core in range(num_cores):
        trace = []
        for i in range(length):
            trace.append(
                pack(80, GLOBAL_BASE + (i % 10) * 128, 128, False))
            trace.append(
                pack(88, GLOBAL_BASE + 0x8000 + i * 64, 32, i % 4 == 0))
        traces.append(trace)
    return traces


class TestRegressions:
    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    def test_assoc_specializations(self, assoc):
        """assoc==1 and assoc==2 take specialised array paths; all of
        them must agree with the dict-based LRU cache."""
        traces = reuse_heavy_traces()
        config = small_config(l1_assoc=assoc, num_cores=len(traces))
        assert_bit_identical(traces, config)

    def test_sector_split_wider_than_line(self):
        """srad-style: one access wider than the L1 line fans out into
        several same-clock sector events whose kill/insert ordering the
        scalar loops resolve with a per-loop sequence counter."""
        traces = [
            [pack(80, GLOBAL_BASE + i * 64, 256, False) for i in range(40)],
            [pack(88, GLOBAL_BASE + i * 128, 256, True) for i in range(40)],
        ]
        config = small_config(l1_line=32, num_cores=2)
        result = assert_bit_identical(traces, config)
        # Each 256B access must have split into 256/32 sector accesses.
        assert result.l1.accesses == 80 * (256 // 32)

    def test_merge_heavy_trace_exercises_scalar_window(self):
        """Cross-core same-line misses in flight force L1 MSHR merges —
        the case where the optimistic no-merge array pass must abort and
        the bounded scalar window must reproduce the oracle exactly."""
        line = GLOBAL_BASE + 0x40000
        traces = [
            [pack(80, line + (i % 2) * 128, 128, False) for i in range(30)]
            for _ in range(4)
        ]
        config = small_config(num_cores=4, l1_sets=2, l1_assoc=1)
        result = assert_bit_identical(traces, config)
        assert result.l1.mshr_merges > 0

    def test_all_hits_empty_downstream_window(self):
        """Boundary: a fully cache-resident trace leaves the scalar
        window nothing to replay."""
        traces = [[pack(80, GLOBAL_BASE, 4, False) for _ in range(50)]]
        config = small_config(num_cores=1)
        result = assert_bit_identical(traces, config)
        assert result.l1.misses == 1  # the compulsory fill only
        assert result.l2.accesses == 1

    def test_empty_trace(self):
        config = small_config(num_cores=2)
        result = assert_bit_identical([[], []], config)
        assert result.l1.accesses == 0


# -- one-pass multi-config ---------------------------------------------------

class TestMultiConfig:
    def test_one_pass_matches_per_config_oracle(self):
        traces = reuse_heavy_traces()
        configs = [
            c.with_(num_cores=len(traces))
            for c in sweeps.l1_sweep(reduced=True)
        ]
        multi = simulate_flat_multi(traces, configs, backend="numpy")
        assert len(multi) == len(configs)
        for config, result in zip(configs, multi):
            oracle = simulate_flat_trace(traces, config, backend="python")
            assert result.to_dict() == oracle.to_dict()

    def test_trace_invariants_across_configs(self):
        """requests_issued and cycles are properties of the trace; the
        verifier's multiconfig-trace-mismatch rule relies on this."""
        traces = reuse_heavy_traces()
        configs = [
            c.with_(num_cores=len(traces))
            for c in sweeps.l1_sweep(reduced=True)
        ]
        multi = simulate_flat_multi(traces, configs, backend="numpy")
        assert len({r.requests_issued for r in multi}) == 1
        assert len({r.cycles for r in multi}) == 1

    def test_unsupported_config_falls_back_per_config(self):
        """A mixed grid: out-of-matrix configs silently take the oracle
        while supported ones stay on the array path — results identical
        either way."""
        traces = reuse_heavy_traces(num_cores=2)
        supported = small_config(num_cores=2)
        unsupported = supported.with_(
            l1_prefetcher=PrefetcherConfig(kind="stride"))
        multi = simulate_flat_multi(
            traces, [supported, unsupported], backend="numpy")
        for config, result in zip([supported, unsupported], multi):
            oracle = simulate_flat_trace(traces, config, backend="python")
            assert result.to_dict() == oracle.to_dict()

    def test_python_backend_is_reference(self):
        traces = reuse_heavy_traces(num_cores=2)
        configs = [small_config(num_cores=2)]
        via_python = simulate_flat_multi(traces, configs, backend="python")
        oracle = simulate_flat_trace(traces, configs[0], backend="python")
        assert via_python[0].to_dict() == oracle.to_dict()


# -- hybrid fallback matrix --------------------------------------------------

class TestFallbackMatrix:
    @pytest.mark.parametrize(
        "changes, needle",
        [
            ({"l1_prefetcher": PrefetcherConfig(kind="stride")},
             "prefetchers"),
            ({"l2_prefetcher": PrefetcherConfig(kind="stream")},
             "prefetchers"),
            ({"l2_inclusion": "inclusive"}, "inclusive L2"),
        ],
    )
    def test_config_level_reasons(self, changes, needle):
        config = small_config().with_(**changes)
        reasons = memsim_fallback_reasons(config)
        assert any(needle in reason for reason in reasons)

    @pytest.mark.parametrize("level", ["l1", "l2"])
    @pytest.mark.parametrize(
        "cache_changes, needle",
        [
            ({"replacement": "fifo"}, "replacement"),
            ({"replacement": "random"}, "replacement"),
            ({"write_policy": "write-through", "write_allocate": False},
             "write policy"),
            ({"write_allocate": False}, "write policy"),
        ],
    )
    def test_cache_policy_reasons(self, level, cache_changes, needle):
        base = small_config()
        cache = dataclasses.replace(getattr(base, level), **cache_changes)
        reasons = memsim_fallback_reasons(base.with_(**{level: cache}))
        assert any(
            reason.startswith(level) and needle in reason
            for reason in reasons
        )

    def test_supported_baseline_has_no_reasons(self):
        assert memsim_fallback_reasons(small_config()) == []
        assert memsim_fallback_reasons(PAPER_BASELINE) == []

    @pytest.mark.parametrize(
        "base_addr, needle",
        [(TEXTURE_BASE, "texture"), (CONSTANT_BASE, "constant")],
    )
    def test_trace_level_reasons(self, base_addr, needle):
        """Traffic into a configured texture/constant cache is a property
        of the trace, detected at decode time, not of the SimConfig."""
        traces = [[pack(80, base_addr + 64, 4, False)]]
        arrays = FlatTraceArrays(traces)
        reasons = arrays.fallback_reasons(small_config(num_cores=1))
        assert any(needle in reason for reason in reasons)

    def test_unsupported_raises_and_silently_degrades(self):
        traces = reuse_heavy_traces(num_cores=2)
        config = small_config(num_cores=2).with_(
            l1_prefetcher=PrefetcherConfig(kind="stride"))
        with pytest.raises(UnsupportedConfigError) as excinfo:
            simulate_flat_numpy(traces, config)
        assert excinfo.value.reasons
        # The public entry point degrades to the oracle instead.
        degraded = simulate_flat_trace(traces, config, backend="numpy")
        oracle = simulate_flat_trace(traces, config, backend="python")
        assert degraded.to_dict() == oracle.to_dict()
