"""Tests for exact LRU stack distance computation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reuse import (
    COLD_MISS,
    StackDistanceTracker,
    _FenwickTree,
    miss_rate_from_distances,
    naive_stack_distances,
    stack_distances,
)


class TestFenwickTree:
    def test_empty_prefix_sum(self):
        tree = _FenwickTree(8)
        assert tree.prefix_sum(7) == 0

    def test_point_updates_accumulate(self):
        tree = _FenwickTree(8)
        tree.add(0, 1)
        tree.add(3, 2)
        tree.add(7, 5)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(7) == 8

    def test_range_sum(self):
        tree = _FenwickTree(16)
        for i in range(10):
            tree.add(i, 1)
        assert tree.range_sum(2, 5) == 4
        assert tree.range_sum(0, 9) == 10
        assert tree.range_sum(5, 2) == 0

    def test_negative_delta(self):
        tree = _FenwickTree(4)
        tree.add(1, 3)
        tree.add(1, -2)
        assert tree.range_sum(1, 1) == 1

    def test_growth_beyond_initial_capacity(self):
        tree = _FenwickTree(2)
        tree.add(100, 7)
        assert tree.prefix_sum(100) == 7
        assert tree.range_sum(100, 100) == 7
        assert tree.prefix_sum(99) == 0

    def test_prefix_sum_negative_position(self):
        tree = _FenwickTree(4)
        tree.add(0, 1)
        assert tree.prefix_sum(-1) == 0

    def test_growth_across_several_doublings(self):
        """The O(n) rebuild preserves every point value through 2->256."""
        tree = _FenwickTree(2)
        reference = {}
        rng = random.Random(42)
        # Interleave updates with growth triggers at ever-larger positions.
        for pos in (0, 1, 3, 5, 9, 17, 40, 77, 130, 255):
            for _ in range(3):
                p = rng.randrange(pos + 1)
                delta = rng.randrange(-2, 5)
                tree.add(p, delta)
                reference[p] = reference.get(p, 0) + delta
        prefix = 0
        for i in range(256):
            prefix += reference.get(i, 0)
            assert tree.prefix_sum(i) == prefix
            assert tree.range_sum(i, i) == reference.get(i, 0)

    def test_growth_rebuild_matches_fresh_tree(self):
        grown = _FenwickTree(1)
        fresh = _FenwickTree(1024)
        for i in range(0, 600, 7):
            grown.add(i, i % 5 + 1)
            fresh.add(i, i % 5 + 1)
        for lo, hi in ((0, 599), (3, 3), (100, 400), (590, 599)):
            assert grown.range_sum(lo, hi) == fresh.range_sum(lo, hi)


class TestStackDistanceTracker:
    def test_first_touch_is_cold(self):
        tracker = StackDistanceTracker()
        assert tracker.access("x") == COLD_MISS

    def test_immediate_reuse_is_zero(self):
        tracker = StackDistanceTracker()
        tracker.access("x")
        assert tracker.access("x") == 0

    def test_paper_figure5_example(self):
        """The reuse-distance example of the paper's Figure 5 (cachelines)."""
        # Accesses X[0] X[1] X[2] X[3] X[1] X[2] X[3] X[0] at line
        # granularity 0 0 1 1 0 1 1 0 give distances inf 0 inf 0 1 1 0 1.
        lines = [0, 0, 1, 1, 0, 1, 1, 0]
        expected = [COLD_MISS, 0, COLD_MISS, 0, 1, 1, 0, 1]
        assert list(stack_distances(lines)) == expected

    def test_distance_counts_distinct_not_total(self):
        tracker = StackDistanceTracker()
        for x in ["a", "b", "b", "b", "a"]:
            last = tracker.access(x)
        assert last == 1  # only "b" intervened, despite 3 accesses

    def test_unique_and_access_counters(self):
        tracker = StackDistanceTracker()
        for x in ["a", "b", "a"]:
            tracker.access(x)
        assert tracker.unique_elements == 2
        assert tracker.accesses == 3

    def test_matches_naive_on_fixed_trace(self):
        trace = [0, 1, 2, 0, 3, 1, 1, 2, 4, 0, 5, 3]
        assert list(stack_distances(trace)) == naive_stack_distances(trace)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=150))
    def test_matches_naive_oracle(self, trace):
        assert list(stack_distances(trace)) == naive_stack_distances(trace)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=120))
    def test_distances_bounded_by_unique_count(self, trace):
        tracker = StackDistanceTracker()
        for element in trace:
            distance = tracker.access(element)
            if distance != COLD_MISS:
                assert 0 <= distance < tracker.unique_elements

    def test_large_trace_performance_smoke(self):
        rng = random.Random(7)
        tracker = StackDistanceTracker()
        for _ in range(20_000):
            tracker.access(rng.randrange(1000))
        assert tracker.accesses == 20_000


class TestMissRateFromDistances:
    def test_empty_stream(self):
        assert miss_rate_from_distances([], capacity=4) == 0.0

    def test_all_cold_misses(self):
        assert miss_rate_from_distances([COLD_MISS] * 5, capacity=4) == 1.0

    def test_hits_below_capacity(self):
        distances = [COLD_MISS, 0, 1, 3, 4]
        # capacity 4: distances 0,1,3 hit; cold and 4 miss.
        assert miss_rate_from_distances(distances, capacity=4) == pytest.approx(2 / 5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_fully_associative_lru_cache(self, trace, capacity):
        """Stack distance theory: FA-LRU hit iff distance < capacity."""
        distances = list(stack_distances(trace))
        expected_rate = miss_rate_from_distances(distances, capacity)

        # Simulate an explicit fully-associative LRU cache.
        cache = []
        misses = 0
        for element in trace:
            if element in cache:
                cache.remove(element)
            else:
                misses += 1
                if len(cache) >= capacity:
                    cache.pop()
            cache.insert(0, element)
        assert expected_rate == pytest.approx(misses / len(trace))
