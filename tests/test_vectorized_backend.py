"""Python-vs-numpy backend equivalence and the binary trace container.

The numpy array core must be *invisible* where the pipeline is
deterministic — profiles bit-identical to the scalar reference on every
workload — and *statistically equivalent* where it is not (generation uses
a different RNG stream per backend, so proxies are held to the same
validation-metric tolerances the harness itself uses).  The ``.npz``
columnar trace format must round-trip exactly and fail loudly when
damaged.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_BACKEND,
    resolve_backend,
)
from repro.core.generator import ProxyGenerator
from repro.core.integrity import CorruptArtifactError
from repro.core.profiler import GmapProfiler
from repro.gpu.executor import (
    assign_warps_to_cores,
    build_warp_traces,
    collect_thread_traces,
)
from repro.io.thread_trace_io import (
    load_thread_traces,
    save_thread_traces,
    warp_traces_from_thread_file,
)
from repro.io.trace_io import load_warp_traces, save_warp_traces
from repro.memsim.simulator import SimtSimulator
from repro.validation.parallel import SweepRunner
from repro.workloads import suite

WORKLOADS = ("vectoradd", "kmeans", "bfs")
SEEDS = (1234, 77, 2026)


@pytest.fixture(scope="module", params=WORKLOADS)
def kernel(request):
    return suite.make(request.param, scale="tiny")


def _trace_tuples(traces):
    return [
        (t.warp_id, t.block, tuple(t.transactions), tuple(t.instructions))
        for t in traces
    ]


class TestProfileBitExact:
    """Deterministic stages must not depend on the backend at all."""

    def test_profiles_identical(self, kernel):
        py = GmapProfiler(backend="python").profile(kernel)
        vec = GmapProfiler(backend="numpy").profile(kernel)
        assert vec.to_dict() == py.to_dict()

    def test_thread_granularity_profiles_identical(self, kernel):
        py = GmapProfiler(coalescing=False, backend="python").profile(kernel)
        vec = GmapProfiler(coalescing=False, backend="numpy").profile(kernel)
        assert vec.to_dict() == py.to_dict()

    def test_stack_reuse_profiles_identical(self, kernel):
        py = GmapProfiler(reuse_semantics="stack",
                          backend="python").profile(kernel)
        vec = GmapProfiler(reuse_semantics="stack",
                           backend="numpy").profile(kernel)
        assert vec.to_dict() == py.to_dict()

    def test_front_end_identical(self, kernel, tmp_path):
        """Vectorized warp assembly == scalar lockstep walk, transaction
        for transaction, through the trace-file entry point."""
        path = tmp_path / "k.ttrace.npz"
        save_thread_traces(collect_thread_traces(kernel), kernel.launch, path)
        scalar, _ = warp_traces_from_thread_file(path, backend="python")
        fast, _ = warp_traces_from_thread_file(path, backend="numpy",
                                               mmap=True)
        assert _trace_tuples(fast) == _trace_tuples(scalar)


class TestProxyStatisticalEquivalence:
    """Generation draws different RNG streams per backend; the proxies must
    still agree on the validation metric within harness tolerance."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_l1_miss_rate_close(self, kernel, seed, small_config):
        profile = GmapProfiler().profile(kernel)
        rates = {}
        for backend in BACKENDS:
            generator = ProxyGenerator(profile, seed=seed, backend=backend)
            traces = generator.generate_warp_traces()
            assignments = assign_warps_to_cores(
                generator.launch_config(), traces, small_config.num_cores)
            rates[backend] = (
                SimtSimulator(small_config).run(assignments)
                .metric("l1_miss_rate")
            )
        assert rates["numpy"] == pytest.approx(rates["python"], abs=0.05)

    def test_generation_deterministic_per_seed(self, kernel):
        profile = GmapProfiler().profile(kernel)
        a = ProxyGenerator(profile, seed=42,
                           backend="numpy").generate_warp_traces()
        b = ProxyGenerator(profile, seed=42,
                           backend="numpy").generate_warp_traces()
        assert _trace_tuples(a) == _trace_tuples(b)


class TestBinaryTraceFormat:
    def test_warp_trace_roundtrip(self, kernel, tmp_path):
        traces = build_warp_traces(kernel)
        path = tmp_path / "k.trace.npz"
        save_warp_traces(traces, path)
        for mmap in (False, True):
            loaded = load_warp_traces(path, mmap=mmap)
            assert _trace_tuples(loaded) == _trace_tuples(traces)

    def test_thread_trace_roundtrip(self, kernel, tmp_path):
        traces = collect_thread_traces(kernel)
        path = tmp_path / "k.ttrace.npz"
        save_thread_traces(traces, kernel.launch, path)
        loaded, launch = load_thread_traces(path)
        assert loaded == traces
        assert launch == kernel.launch

    def test_binary_matches_text(self, kernel, tmp_path):
        """Both serializations are views of the same trace."""
        traces = collect_thread_traces(kernel)
        text = tmp_path / "k.ttrace"
        binary = tmp_path / "k.ttrace.npz"
        save_thread_traces(traces, kernel.launch, text)
        save_thread_traces(traces, kernel.launch, binary)
        assert load_thread_traces(text)[0] == load_thread_traces(binary)[0]

    def test_corruption_raises(self, kernel, tmp_path):
        traces = build_warp_traces(kernel)
        path = tmp_path / "k.trace.npz"
        save_warp_traces(traces, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises((CorruptArtifactError, OSError, ValueError)):
            load_warp_traces(path)

    def test_verifier_clean_and_tampered(self, kernel, tmp_path):
        from repro.analysis import verify_trace_file

        path = tmp_path / "k.trace.npz"
        save_warp_traces(build_warp_traces(kernel), path)
        assert verify_trace_file(path) == []

        # Rewrite one column without refreshing the checksum.
        with np.load(path) as payload:
            columns = {name: payload[name] for name in payload.files}
        meta = columns.pop("_meta")
        columns["txn_address"] = columns["txn_address"] + 128
        import zipfile

        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
            for name, column in columns.items():
                with zf.open(f"{name}.npy", "w") as fh:
                    np.lib.format.write_array(fh, column)
            with zf.open("_meta.npy", "w") as fh:
                np.lib.format.write_array(fh, meta)
        findings = verify_trace_file(path)
        assert any(f.rule == "corrupt-artifact" for f in findings)


class TestBackendResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND

    def test_env_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        assert resolve_backend(None) == "numpy"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr("repro.core.backend._HAVE_NUMPY", False)
        with pytest.raises(ValueError):
            resolve_backend("numpy")

    def test_env_numpy_without_numpy_degrades(self, monkeypatch):
        monkeypatch.setattr("repro.core.backend._HAVE_NUMPY", False)
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        assert resolve_backend(None) == "python"


class TestChunkSizing:
    """Cold-parallel fix: never split one benchmark's configs across more
    workers than the job count actually requires."""

    @pytest.mark.parametrize(
        "jobs,num_kernels,num_configs,expected",
        [
            (1, 4, 12, 12),   # sequential: one chunk per benchmark
            (4, 4, 12, 12),   # one chunk per kernel saturates the pool
            (4, 2, 12, 6),    # two chunks per kernel -> 4 tasks total
            (4, 1, 12, 3),    # single benchmark: split 4 ways
            (8, 4, 12, 6),    # ceil(8/4)=2 chunks per kernel
            (4, 4, 1, 1),
        ],
    )
    def test_effective_chunk_size(self, jobs, num_kernels, num_configs,
                                  expected):
        runner = SweepRunner(jobs=jobs, use_cache=False)
        assert runner._effective_chunk_size(
            num_kernels, num_configs) == expected

    def test_pipeline_built_once_per_benchmark_when_saturated(self):
        """With one chunk per kernel, each worker builds each pipeline at
        most once even with caching off — the regression that made cold
        parallel runs slower than sequential."""
        runner = SweepRunner(jobs=4, use_cache=False)
        size = runner._effective_chunk_size(4, 12)
        chunks_per_kernel = -(-12 // size)
        assert chunks_per_kernel == 1
