"""The ``gmap serve`` service layer: admission, supervision, drain/resume.

Each mechanism is tested at its own seam — the queue and breaker as plain
objects with injected clocks, the protocol as pure functions, the whole
service through :class:`~repro.service.server.GmapService` without HTTP —
so failures localise.  Chaos-style end-to-end runs (real processes, real
faults, real listener) live in ``test_service_chaos.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.config import ENV_PREFIX, ServiceConfig
from repro.service.degradation import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    DegradationPolicy,
)
from repro.service.protocol import (
    JobOutcome,
    JobRequest,
    RequestValidationError,
    parse_json_body,
    validate_submission,
)
from repro.service.queue import (
    AdmissionQueue,
    QueueClosedError,
    QueueFullError,
    job_kind,
)
from repro.service.server import GmapService


def _wait_terminal(service, job_id, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = service.job_status(job_id)
        if state and state["status"] in ("completed", "failed"):
            return state
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not terminate in {timeout}s")


def _sim_payload(**extra):
    payload = {
        "kind": "simulate",
        "params": {"target": "vectoradd", "scale": "tiny", "cores": 2},
    }
    payload.update(extra)
    return payload


# -- config -----------------------------------------------------------------

class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.workers >= 1
        assert config.queue_capacity >= 1
        assert config.isolation == "process"

    @pytest.mark.parametrize("field_name,bad", [
        ("workers", 0), ("queue_capacity", 0),
        ("job_timeout", 0.0), ("retries", -1), ("isolation", "vm"),
    ])
    def test_rejects_bad_values(self, field_name, bad):
        with pytest.raises(ValueError):
            ServiceConfig(**{field_name: bad})

    def test_from_env_reads_prefixed_variables(self, monkeypatch):
        monkeypatch.setenv(ENV_PREFIX + "WORKERS", "5")
        monkeypatch.setenv(ENV_PREFIX + "JOB_TIMEOUT", "7.5")
        monkeypatch.setenv(ENV_PREFIX + "JOURNAL", "no")
        config = ServiceConfig.from_env()
        assert config.workers == 5
        assert config.job_timeout == 7.5
        assert config.journal is False

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_PREFIX + "WORKERS", "5")
        assert ServiceConfig.from_env(workers=3).workers == 3


# -- protocol ---------------------------------------------------------------

class TestProtocol:
    def test_request_roundtrip(self):
        request = JobRequest(job_id="j1", kind="simulate",
                             params={"target": "vectoradd"}, seq=7,
                             backend="python",
                             fault={"spec": "crash:*:*"})
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_outcome_to_dict_omits_empty_fields(self):
        payload = JobOutcome(status="queued").to_dict()
        assert payload == {"status": "queued", "degraded": False,
                           "attempts": 0}

    def test_malformed_json_is_typed(self):
        with pytest.raises(RequestValidationError):
            parse_json_body(b"{nope")
        with pytest.raises(RequestValidationError):
            parse_json_body(b"\xff\xfe")

    @pytest.mark.parametrize("payload", [
        [],  # not an object
        {"kind": "launch_missiles"},
        {"kind": "simulate", "params": []},
        {"kind": "simulate", "params": {}},  # missing target
        {"kind": "profile", "params": {}},  # missing benchmark
        {"kind": "generate", "params": {}},  # missing profile
        {"kind": "validate", "params": {"experiment": "fig99"}},
        {"kind": "simulate", "params": {"target": "x"}, "backend": 3},
    ])
    def test_invalid_submissions_rejected(self, payload):
        with pytest.raises(RequestValidationError):
            validate_submission(payload, max_input_bytes=1 << 20)

    def test_fault_directive_needs_opt_in(self):
        payload = _sim_payload(fault={"spec": "crash:*:*"})
        with pytest.raises(RequestValidationError):
            validate_submission(payload, max_input_bytes=1 << 20)
        kind, params, backend, fault, priority = validate_submission(
            payload, max_input_bytes=1 << 20, allow_fault_injection=True)
        assert fault == {"spec": "crash:*:*"}
        assert priority == "interactive"

    def test_oversized_input_file_rejected_413(self, tmp_path):
        big = tmp_path / "big.trace"
        big.write_bytes(b"x" * 2048)
        payload = {"kind": "simulate", "params": {"target": str(big)}}
        with pytest.raises(RequestValidationError) as excinfo:
            validate_submission(payload, max_input_bytes=1024)
        assert excinfo.value.http_status == 413


# -- admission queue --------------------------------------------------------

class TestAdmissionQueue:
    def _request(self, seq=0):
        return JobRequest(job_id=f"j{seq}", kind="simulate", params={},
                          seq=seq)

    def test_fifo_order(self):
        queue = AdmissionQueue(capacity=4)
        for seq in range(3):
            queue.submit(self._request(seq))
        assert [queue.get(0.1).seq for _ in range(3)] == [0, 1, 2]

    def test_sheds_at_capacity_with_retry_hint(self):
        queue = AdmissionQueue(capacity=2, workers=1)
        queue.submit(self._request(0))
        queue.submit(self._request(1))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(self._request(2))
        assert excinfo.value.retry_after >= 1.0
        assert queue.depth() == 2  # shedding never grows the queue

    def test_retry_hint_tracks_job_duration(self):
        queue = AdmissionQueue(capacity=8, workers=1)
        for _ in range(20):
            queue.note_job_seconds(10.0)
        for seq in range(4):
            queue.submit(self._request(seq))
        assert queue.retry_after_hint() > 10.0

    def test_closed_queue_rejects_and_drains(self):
        queue = AdmissionQueue(capacity=4)
        queue.submit(self._request(0))
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(self._request(1))
        assert [r.seq for r in queue.drain_remaining()] == [0]
        assert queue.get(0.05) is None

    def test_get_times_out(self):
        assert AdmissionQueue(capacity=1).get(0.05) is None

    def test_job_kind_splits_analytic_simulate(self):
        plain = JobRequest(job_id="a", kind="simulate", params={}, seq=0)
        fast = JobRequest(job_id="b", kind="simulate",
                          params={"analytic": True}, seq=1)
        other = JobRequest(job_id="c", kind="profile", params={}, seq=2)
        assert job_kind(plain) == "simulate"
        assert job_kind(fast) == "simulate:analytic"
        assert job_kind(other) == "profile"

    def test_per_kind_ewma_prices_backlog_item_by_item(self):
        # A millisecond analytic job queued behind a replay job must not be
        # priced at the fleet average: each backlog item carries its own
        # kind's EWMA, so est_wait reflects the actual queue composition.
        queue = AdmissionQueue(capacity=8, workers=1)
        queue.note_job_seconds(10.0, kind="simulate")
        queue.note_job_seconds(0.01, kind="simulate:analytic")
        queue.submit(JobRequest(job_id="a", kind="simulate", params={},
                                seq=0))
        queue.submit(JobRequest(job_id="b", kind="simulate",
                                params={"analytic": True}, seq=1))
        snapshot = queue.snapshot()
        by_kind = snapshot["avg_job_seconds_by_kind"]
        assert by_kind["simulate"] == pytest.approx(10.0)
        assert by_kind["simulate:analytic"] == pytest.approx(0.01)
        assert snapshot["est_wait_seconds"] == pytest.approx(10.01)
        assert snapshot["queue_depth_by_kind"] == {
            "simulate": 1, "simulate:analytic": 1}

    def test_unseen_kind_falls_back_to_fleet_average(self):
        queue = AdmissionQueue(capacity=8, workers=1)
        queue.note_job_seconds(4.0)  # fleet-wide only, no kind attributed
        queue.submit(JobRequest(job_id="a", kind="profile", params={},
                                seq=0))
        snapshot = queue.snapshot()
        assert snapshot["est_wait_seconds"] == \
            pytest.approx(snapshot["avg_job_seconds"])

    def test_get_unblocks_on_close(self):
        queue = AdmissionQueue(capacity=1)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.get(5.0)))
        thread.start()
        queue.close()
        thread.join(2.0)
        assert not thread.is_alive()
        assert results == [None]


# -- priority lanes ----------------------------------------------------------

class FakeClock:
    """Settable clock for aging-based dequeue decisions."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPriorityLanes:
    def _request(self, seq, lane="interactive"):
        return JobRequest(job_id=f"p{seq}", kind="simulate", params={},
                          seq=seq, priority=lane)

    def _fill(self, queue, interactive, bulk):
        seq = 0
        for _ in range(interactive):
            queue.submit(self._request(seq, "interactive"))
            seq += 1
        for _ in range(bulk):
            queue.submit(self._request(seq, "bulk"))
            seq += 1

    def test_weighted_dequeue_serves_burst_then_bulk(self):
        queue = AdmissionQueue(capacity=16, bulk_capacity=8)
        self._fill(queue, interactive=6, bulk=2)
        lanes = [queue.get(0.1).priority for _ in range(8)]
        # INTERACTIVE_BURST interactive jobs per bulk job while both wait.
        assert lanes == ["interactive"] * 4 + ["bulk"] + \
            ["interactive"] * 2 + ["bulk"]

    def test_single_lane_passthrough_is_fifo(self):
        queue = AdmissionQueue(capacity=8, bulk_capacity=8)
        for seq in range(3):
            queue.submit(self._request(seq, "bulk"))
        assert [queue.get(0.1).seq for _ in range(3)] == [0, 1, 2]

    def test_aged_bulk_head_jumps_the_weights(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=16, bulk_capacity=8,
                               bulk_max_wait=30.0, clock=clock)
        queue.submit(self._request(0, "bulk"))
        clock.advance(31.0)  # the bulk head is now past the aging bound
        queue.submit(self._request(1, "interactive"))
        assert queue.get(0.1).priority == "bulk"
        assert queue.get(0.1).priority == "interactive"

    def test_bulk_sheds_at_its_own_capacity(self):
        queue = AdmissionQueue(capacity=10, bulk_capacity=2)
        self._fill(queue, interactive=0, bulk=2)
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(self._request(9, "bulk"))
        assert excinfo.value.lane == "bulk"
        assert excinfo.value.capacity == 2
        # Interactive still finds room: the total bound is not reached.
        queue.submit(self._request(10, "interactive"))

    def test_bulk_capacity_defaults_to_half_total(self):
        assert AdmissionQueue(capacity=10).bulk_capacity == 5
        assert AdmissionQueue(capacity=1).bulk_capacity == 1

    def test_total_capacity_sheds_interactive_too(self):
        queue = AdmissionQueue(capacity=2, bulk_capacity=1)
        self._fill(queue, interactive=2, bulk=0)
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(self._request(9, "interactive"))
        assert excinfo.value.lane == "interactive"

    def test_snapshot_reports_lane_depths(self):
        queue = AdmissionQueue(capacity=16, bulk_capacity=3)
        self._fill(queue, interactive=2, bulk=1)
        snapshot = queue.snapshot()
        assert snapshot["queue_depth_by_lane"] == {
            "interactive": 2, "bulk": 1}
        assert snapshot["bulk_capacity"] == 3

    def test_drain_returns_interactive_first(self):
        queue = AdmissionQueue(capacity=16, bulk_capacity=8)
        queue.submit(self._request(0, "bulk"))
        queue.submit(self._request(1, "interactive"))
        queue.close()
        assert [r.priority for r in queue.drain_remaining()] == \
            ["interactive", "bulk"]

    def test_validate_submission_rejects_unknown_priority(self):
        with pytest.raises(RequestValidationError, match="priority"):
            validate_submission(_sim_payload(priority="urgent"),
                                max_input_bytes=1 << 20)

    def test_request_priority_roundtrip(self):
        bulk = JobRequest.from_dict(_sim_payload(job_id="b",
                                                 priority="bulk"))
        assert bulk.priority == "bulk"
        assert JobRequest.from_dict(bulk.to_dict()).priority == "bulk"
        plain = JobRequest.from_dict(_sim_payload(job_id="p"))
        assert plain.priority == "interactive"
        assert "priority" not in plain.to_dict()


# -- circuit breaker --------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                                 clock=lambda: clock[0])
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        clock[0] = 11.0  # cooldown elapsed: exactly one probe allowed
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN

    def test_policy_default_backend_is_never_broken(self):
        policy = DegradationPolicy(backend="python", failure_threshold=1)
        for _ in range(5):
            policy.observe_job_failure("python")
        backend, reasons = policy.effective_backend()
        assert backend == "python"
        assert reasons == []

    def test_policy_demotes_with_open_circuit(self):
        pytest.importorskip("numpy")
        clock = [0.0]
        policy = DegradationPolicy(backend="numpy", failure_threshold=1,
                                   cooldown=100.0, clock=lambda: clock[0])
        assert policy.effective_backend()[0] == "numpy"
        policy.observe_job_failure("numpy")
        backend, reasons = policy.effective_backend()
        assert backend == "python"
        assert reasons == ["circuit_open:numpy"]
        assert policy.snapshot()["numpy"]["state"] == STATE_OPEN


# -- service lifecycle (no HTTP) -------------------------------------------

@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        workers=1, queue_capacity=8, job_timeout=60.0, retries=0,
        journal=True, journal_dir=str(tmp_path / "journal"),
        run_id="test", drain_timeout=2.0, allow_fault_injection=True,
    )
    svc = GmapService(config)
    svc.start()
    yield svc
    svc.queue.close()
    svc.stop()


class TestGmapService:
    def test_simulate_job_completes(self, service):
        accepted = service.submit(_sim_payload())
        state = _wait_terminal(service, accepted["job_id"])
        assert state["status"] == "completed"
        assert state["degraded"] is False
        assert state["result"]["result"]["requests_issued"] > 0

    def test_unknown_job_is_none(self, service):
        assert service.job_status("nope") is None

    def test_invalid_submission_never_enqueued(self, service):
        with pytest.raises(RequestValidationError):
            service.submit({"kind": "simulate", "params": {}})
        assert service.queue.depth() == 0

    def test_profile_and_generate_roundtrip(self, service):
        accepted = service.submit({
            "kind": "profile",
            "params": {"benchmark": "vectoradd", "scale": "tiny"},
        })
        state = _wait_terminal(service, accepted["job_id"])
        assert state["status"] == "completed"
        profile = state["result"]["profile"]
        accepted = service.submit({
            "kind": "generate",
            "params": {"profile": profile, "seed": 7},
        })
        state = _wait_terminal(service, accepted["job_id"])
        assert state["status"] == "completed"
        assert state["result"]["transactions"] > 0

    def test_invalid_input_fails_typed(self, service):
        accepted = service.submit({
            "kind": "profile",
            "params": {"benchmark": "/nonexistent/input.trace"},
        })
        state = _wait_terminal(service, accepted["job_id"])
        assert state["status"] == "failed"
        assert state["error_kind"] in ("invalid_request", "simulation_error")

    def test_healthz_counters(self, service):
        accepted = service.submit(_sim_payload())
        _wait_terminal(service, accepted["job_id"])
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["counters"]["completed"] >= 1
        assert health["queue_capacity"] == 8

    def test_draining_service_rejects_503(self, service):
        service.drain()
        with pytest.raises(RequestValidationError) as excinfo:
            service.submit(_sim_payload())
        assert excinfo.value.http_status == 503

    def test_readyz_carries_load_telemetry(self, service):
        """The /readyz body is the fleet router's ranking input: it must
        expose queue depth, capacity, workers, and the duration EWMA."""
        ready = service.readyz()
        assert ready["ready"] is True
        assert ready["replica_id"] == "r0"
        assert ready["draining"] is False
        assert ready["queue_depth"] == 0
        assert ready["queue_capacity"] == 8
        assert ready["workers"] == 1
        assert ready["avg_job_seconds"] >= 0.0
        assert ready["est_wait_seconds"] >= 0.0

    def test_readyz_est_wait_prices_the_backlog(self, service):
        accepted = service.submit(_sim_payload())
        _wait_terminal(service, accepted["job_id"])
        for _ in range(10):
            service.queue.note_job_seconds(2.0)
        ready = service.readyz()
        assert ready["avg_job_seconds"] > 0.0
        # The snapshot must be internally consistent: est_wait is the
        # backlog priced at the EWMA spread across the workers.
        expected = (ready["queue_depth"] * ready["avg_job_seconds"]
                    / ready["workers"])
        assert ready["est_wait_seconds"] == pytest.approx(expected)

    def test_readyz_false_while_draining(self, service):
        service.drain()
        ready = service.readyz()
        assert ready["ready"] is False
        assert ready["draining"] is True


class TestDrainResume:
    def test_checkpointed_jobs_resume_under_original_ids(self, tmp_path):
        config = ServiceConfig(
            workers=1, queue_capacity=16, job_timeout=60.0,
            journal=True, journal_dir=str(tmp_path / "journal"),
            run_id="resume-test", drain_timeout=1.0,
        )
        first = GmapService(config)
        first.start()
        ids = [first.submit(_sim_payload())["job_id"] for _ in range(4)]
        summary = first.drain()
        first.stop()
        assert summary["checkpointed"] >= 1
        pending = [
            job_id for job_id in ids
            if first.job_status(job_id)["status"] == "checkpointed"
        ]
        assert len(pending) == summary["checkpointed"]

        second = GmapService(config)
        resumed = second.start()
        try:
            assert resumed == summary["checkpointed"]
            for job_id in pending:
                state = _wait_terminal(second, job_id)
                assert state["status"] == "completed"
            # Terminal checkpoints are discarded: a third boot is clean.
            second.drain()
        finally:
            second.stop()
        third = GmapService(config)
        try:
            assert third.start() == 0
        finally:
            third.queue.close()
            third.stop()

    def test_concurrent_server_on_same_journal_fails_fast(self, tmp_path):
        from repro.validation.resilience import JournalLockedError

        config = ServiceConfig(
            workers=1, journal=True,
            journal_dir=str(tmp_path / "journal"), run_id="locked",
        )
        first = GmapService(config)
        first.start()
        try:
            second = GmapService(config)
            with pytest.raises(JournalLockedError):
                second.start()
        finally:
            first.queue.close()
            first.stop()


class TestThreadIsolationFallback:
    def test_thread_mode_still_types_crashes(self, tmp_path):
        config = ServiceConfig(
            workers=1, isolation="thread", journal=False,
            retries=0, allow_fault_injection=True,
        )
        service = GmapService(config)
        service.start()
        try:
            state_file = tmp_path / "state"
            accepted = service.submit(_sim_payload(
                fault={"spec": "raise:*:*:always",
                       "state": str(state_file)}))
            state = _wait_terminal(service, accepted["job_id"])
            assert state["status"] == "failed"
            assert state["error_kind"] == "simulation_error"
            accepted = service.submit(_sim_payload())
            state = _wait_terminal(service, accepted["job_id"])
            assert state["status"] == "completed"
        finally:
            service.queue.close()
            service.stop()


# -- counter lock discipline (regression: interprocedural analyzer) ---------

class _TrackingLock:
    """Context-managed lock that records which thread currently holds it."""

    def __init__(self):
        self._inner = threading.Lock()
        self.holder = None

    def __enter__(self):
        self._inner.acquire()
        self.holder = threading.get_ident()
        return self

    def __exit__(self, *exc):
        self.holder = None
        self._inner.release()
        return False


class _GuardedCounters(dict):
    """Counter dict that records writes made without the jobs lock held."""

    def __init__(self, lock, seed):
        super().__init__(seed)
        self._lock = lock
        self.unlocked_writes = []

    def __setitem__(self, key, value):
        if self._lock.holder != threading.get_ident():
            self.unlocked_writes.append(key)
        super().__setitem__(key, value)


class TestCounterLockDiscipline:
    """``shared-state-race`` findings the analyzer surfaced were real:
    counter read-modify-writes raced the jobs lock.  These pin the fix —
    every counter mutation must happen while ``_jobs_lock`` is held."""

    def _instrument(self, service):
        lock = _TrackingLock()
        service._jobs_lock = lock
        service._counters = _GuardedCounters(lock, service._counters)
        return service._counters

    def test_submit_and_outcome_counters_under_lock(self, service):
        counters = self._instrument(service)
        accepted = service.submit(_sim_payload())
        state = _wait_terminal(service, accepted["job_id"])
        assert state["status"] == "completed"
        assert counters["submitted"] == 1
        assert counters["completed"] == 1
        assert counters.unlocked_writes == []

    def test_shed_counter_under_lock(self, service, monkeypatch):
        counters = self._instrument(service)

        def full(request):
            raise QueueFullError(8, 1.0)

        monkeypatch.setattr(service.queue, "submit", full)
        with pytest.raises(QueueFullError):
            service.submit(_sim_payload())
        assert counters["shed"] == 1
        assert counters.unlocked_writes == []

    def test_restart_counter_mutates_under_running_lock(self):
        from repro.service.supervisor import Supervisor

        config = ServiceConfig(workers=1, queue_capacity=1)
        sup = Supervisor(config, None, None, lambda request, outcome: None)
        sup._running_lock = _TrackingLock()
        sup._note_restart()
        assert sup.worker_restarts == 1

        threads = [threading.Thread(target=lambda: [sup._note_restart()
                                                    for _ in range(200)])
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sup.worker_restarts == 1 + 8 * 200
