"""Tests for the determinism linter (``gmap check``'s lint pass)."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis import lint_paths
from repro.analysis.engine import EngineConfig, lint_file, lint_source
from repro.analysis.rules import get_rules, rule_ids
from repro.analysis.selftest import run_self_test
from repro.cli import main


def rules_fired(source: str, rel_path: str = "core/mod.py") -> set:
    return {f.rule for f in lint_source(source, rel_path)}


class TestUnseededRandom:
    def test_global_random_calls(self):
        source = "import random\nrandom.seed(1)\nx = random.random()\n"
        assert "unseeded-random" in rules_fired(source)

    def test_from_import_alias(self):
        source = "from random import shuffle as shf\nshf([1, 2])\n"
        assert "unseeded-random" in rules_fired(source)

    def test_numpy_global_and_alias(self):
        source = "import numpy as np\nnp.random.rand(3)\n"
        assert "unseeded-random" in rules_fired(source)

    def test_default_rng_without_seed(self):
        assert "unseeded-random" in rules_fired(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )

    def test_seeded_instances_are_clean(self):
        source = (
            "import random\nimport numpy as np\n"
            "rng = random.Random(1234)\nx = rng.random()\n"
            "gen = np.random.default_rng(7)\n"
        )
        assert "unseeded-random" not in rules_fired(source)

    def test_system_random_flagged(self):
        assert "unseeded-random" in rules_fired(
            "import random\nr = random.SystemRandom()\n"
        )

    def test_unrelated_attribute_chain_is_clean(self):
        # `self.random()` / local objects must not resolve to the module.
        assert rules_fired("class A:\n    def f(self):\n        self.random()\n") == set()


class TestWallClock:
    def test_flagged_inside_sim_paths(self):
        source = "import time\nt = time.time()\n"
        for rel in ("core/x.py", "memsim/x.py", "gpu/deep/x.py"):
            assert "wallclock-in-sim" in rules_fired(source, rel)

    def test_allowed_outside_sim_paths(self):
        source = "import time\nt = time.perf_counter()\n"
        assert "wallclock-in-sim" not in rules_fired(source, "validation/h.py")

    def test_datetime_now(self):
        source = "from datetime import datetime\nd = datetime.now()\n"
        assert "wallclock-in-sim" in rules_fired(source, "core/x.py")


class TestUnorderedIteration:
    def test_set_call(self):
        assert "unordered-iteration" in rules_fired(
            "for x in set([3, 1]):\n    pass\n"
        )

    def test_set_literal_and_union(self):
        assert "unordered-iteration" in rules_fired(
            "for x in {1, 2} | set([3]):\n    pass\n"
        )

    def test_comprehension_iterable(self):
        assert "unordered-iteration" in rules_fired(
            "xs = [v for v in set([1, 2])]\n"
        )

    def test_dict_keys(self):
        assert "unordered-iteration" in rules_fired(
            "d = {}\nfor k in d.keys():\n    pass\n"
        )

    def test_sorted_wrapper_is_clean(self):
        assert "unordered-iteration" not in rules_fired(
            "for x in sorted(set([3, 1])):\n    pass\n"
        )

    def test_plain_dict_iteration_is_clean(self):
        assert "unordered-iteration" not in rules_fired(
            "d = {}\nfor k in d:\n    pass\n"
        )


class TestFloatEq:
    def test_non_integral_literal(self):
        assert "float-eq" in rules_fired("def f(x):\n    return x == 0.1\n")

    def test_not_equal(self):
        assert "float-eq" in rules_fired("def f(x):\n    return x != 2.5\n")

    def test_integral_sentinel_is_clean(self):
        assert "float-eq" not in rules_fired(
            "def f(x):\n    return x != 1.0 or x == 0.0\n"
        )

    def test_ordering_comparisons_are_clean(self):
        assert "float-eq" not in rules_fired("def f(x):\n    return x < 0.1\n")


class TestMutableDefault:
    def test_list_literal(self):
        assert "mutable-default" in rules_fired("def f(a=[]):\n    pass\n")

    def test_dict_call_and_kwonly(self):
        assert "mutable-default" in rules_fired(
            "def f(*, a=dict()):\n    pass\n"
        )

    def test_histogram_constructor(self):
        assert "mutable-default" in rules_fired(
            "from repro.core.distributions import Histogram\n"
            "def f(h=Histogram()):\n    pass\n"
        )

    def test_none_default_is_clean(self):
        assert "mutable-default" not in rules_fired("def f(a=None):\n    pass\n")


class TestBareExcept:
    def test_flagged(self):
        assert "bare-except" in rules_fired("try:\n    pass\nexcept:\n    pass\n")

    def test_typed_handler_is_clean(self):
        assert "bare-except" not in rules_fired(
            "try:\n    pass\nexcept ValueError:\n    pass\n"
        )


class TestEnvRead:
    def test_flagged_outside_config_modules(self):
        for source in (
            "import os\nx = os.environ.get('A')\n",
            "import os\nx = os.getenv('A')\n",
            "import os\nx = os.environ['A']\n",
        ):
            assert "env-read" in rules_fired(source, "core/mod.py")

    def test_allowed_in_cli_and_config(self):
        source = "import os\nx = os.environ.get('A')\n"
        for rel in ("cli.py", "memsim/config.py", "core/cache.py",
                    "validation/resilience.py", "conftest.py"):
            assert "env-read" not in rules_fired(source, rel)


class TestSuppressions:
    def test_same_line(self):
        source = (
            "import random\n"
            "x = random.random()  # gmap: allow(unseeded-random)\n"
        )
        assert rules_fired(source) == set()

    def test_line_above(self):
        source = (
            "import random\n"
            "# gmap: allow(unseeded-random)\n"
            "x = random.random()\n"
        )
        assert rules_fired(source) == set()

    def test_multiple_rules_one_comment(self):
        source = (
            "import random\n"
            "def f(a=[]):  # gmap: allow(mutable-default, unseeded-random)\n"
            "    return random.random()\n"
        )
        assert rules_fired(source) == set()

    def test_wrong_rule_id_does_not_suppress(self):
        source = (
            "import random\n"
            "x = random.random()  # gmap: allow(bare-except)\n"
        )
        assert "unseeded-random" in rules_fired(source)


class TestEngine:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", "core/x.py")
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_findings_carry_location(self):
        findings = lint_source(
            "import random\n\nx = random.random()\n", "core/x.py"
        )
        assert findings[0].line == 3
        assert findings[0].path == "core/x.py"

    def test_lint_file_and_directory(self, tmp_path):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\nrandom.seed(0)\n", encoding="utf-8")
        by_file = lint_file(bad, root=tmp_path)
        by_dir = lint_paths([tmp_path])
        assert {f.rule for f in by_file} == {"unseeded-random"}
        assert [f.rule for f in by_dir] == [f.rule for f in by_file]

    def test_rule_registry_has_unique_ids(self):
        ids = [rule.id for rule in get_rules()]
        assert len(ids) == len(set(ids))
        assert set(rule_ids()) == set(ids)


class TestRepoIsClean:
    """The acceptance bar: zero unsuppressed findings on our own sources.

    This is the regression lock for the hazards audit — new hazards anywhere
    in the package fail here before they fail in CI.
    """

    def test_package_sources_lint_clean(self):
        package_root = Path(repro.__file__).parent
        findings = lint_paths([package_root])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_scripts_and_examples_lint_clean(self):
        repo_root = Path(repro.__file__).resolve().parents[2]
        targets = [
            repo_root / name
            for name in ("scripts", "examples", "benchmarks")
            if (repo_root / name).is_dir()
        ]
        findings = lint_paths(targets)
        assert findings == [], "\n".join(f.format() for f in findings)


class TestSelfTest:
    def test_every_rule_fires(self):
        ok, lines = run_self_test()
        assert ok, "\n".join(lines)

    def test_every_registered_rule_has_a_fixture(self):
        from repro.analysis.selftest import LINT_FIXTURES

        assert set(rule_ids()) <= set(LINT_FIXTURES)


class TestCheckCommand:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_seeded_rng_violation_json(self, tmp_path, capsys):
        # The acceptance scenario: a scratch module with a seeded-RNG
        # violation produces a nonzero exit and a JSON finding carrying
        # rule id, file, and line.
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            "import random\n\nvalue = random.random()\n", encoding="utf-8"
        )
        assert main(["check", str(scratch), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "unseeded-random"
        assert finding["path"] == str(scratch)
        assert finding["line"] == 3

    def test_self_test_flag(self, capsys):
        assert main(["check", "--self-test"]) == 0
        assert "all rules fire" in capsys.readouterr().out

    def test_lint_only_skips_verifier(self, tmp_path, capsys):
        bad_profile = tmp_path / "bad.json"
        bad_profile.write_text("{}", encoding="utf-8")
        assert main(["check", "--lint-only", str(bad_profile)]) == 0

    def test_verify_only_skips_linter(self, tmp_path):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("import random\nrandom.random()\n", encoding="utf-8")
        assert main(["check", "--verify-only", str(scratch)]) == 0


class TestEngineConfigScoping:
    def test_custom_sim_prefixes(self):
        config = EngineConfig(sim_path_prefixes=("",))
        findings = lint_source(
            "import time\nt = time.time()\n", "anywhere.py", config=config
        )
        assert {f.rule for f in findings} == {"wallclock-in-sim"}
