"""Property-based tests over the whole profile→generate pipeline.

Hypothesis builds randomized (but well-formed) affine kernels and checks the
invariants G-MAP must hold for *any* workload: clone size preservation,
π-sequence fidelity, address-space confinement, determinism, and
miniaturization monotonicity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import ProxyGenerator
from repro.core.miniaturize import miniaturize_profile
from repro.core.profiler import GmapProfiler
from repro.gpu.executor import build_warp_traces
from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import SYNC_PC
from repro.workloads.base import Layout, RegularKernel, StridedInstr


@st.composite
def regular_kernels(draw):
    """A random small RegularKernel with 1-3 instructions."""
    n_instr = draw(st.integers(1, 3))
    iters = draw(st.integers(2, 10))
    blocks = draw(st.integers(1, 2))
    block_size = draw(st.sampled_from([32, 64, 128]))
    sync_every = draw(st.sampled_from([0, 0, 2]))
    layout = Layout()
    instrs = []
    for i in range(n_instr):
        inter = draw(st.sampled_from([4, 8, 64, 512]))
        intra = draw(st.sampled_from([-1024, 0, 4, 128, 4096]))
        period = draw(st.sampled_from([1 << 30, 4, 8]))
        every = draw(st.sampled_from([1, 1, 2]))
        name = f"a{i}"
        span = (blocks * block_size * inter
                + (iters + 2) * (abs(intra) + 1) + 8192)
        layout.alloc(name, span)
        phase = (iters + 1) * abs(intra) if intra < 0 else 0
        instrs.append(
            StridedInstr(pc=0x100 + 8 * i, array=name, inter_stride=inter,
                         intra_stride=intra, reuse_period=period,
                         every=every, phase=phase,
                         is_store=draw(st.booleans()))
        )
    return RegularKernel(
        LaunchConfig(blocks, block_size), layout, instrs, iters=iters,
        sync_every=sync_every,
    )


@settings(max_examples=25, deadline=None)
@given(regular_kernels(), st.integers(0, 2**31))
def test_clone_matches_original_size_and_structure(kernel, seed):
    """For any affine kernel: same warp count, same π skeleton, and a
    transaction count within 10%."""
    profile = GmapProfiler().profile(kernel)
    original = build_warp_traces(kernel)
    clone = ProxyGenerator(profile, seed=seed).generate_warp_traces()

    assert len(clone) == len(original)
    orig_txns = sum(len(t.transactions) for t in original)
    clone_txns = sum(len(t.transactions) for t in clone)
    assert abs(clone_txns - orig_txns) <= max(4, 0.1 * orig_txns)

    # Single dominant π profile for divergence-free kernels: the clone's
    # instruction PC sequence equals the original's, warp for warp.
    assert profile.num_profiles == 1
    orig_pcs = [pc for pc, _ in original[0].instructions]
    for trace in clone:
        assert [pc for pc, _ in trace.instructions] == orig_pcs


@settings(max_examples=25, deadline=None)
@given(regular_kernels(), st.integers(0, 2**31))
def test_clone_addresses_confined_to_global_space(kernel, seed):
    from repro.gpu.memspace import MemorySpace, space_of

    profile = GmapProfiler().profile(kernel)
    clone = ProxyGenerator(profile, seed=seed).generate_warp_traces()
    for trace in clone:
        for pc, address, _, _ in trace.transactions:
            if pc == SYNC_PC:
                continue
            assert address >= 0
            assert space_of(address) is MemorySpace.GLOBAL


@settings(max_examples=15, deadline=None)
@given(regular_kernels(), st.integers(0, 2**31))
def test_generation_is_deterministic(kernel, seed):
    profile = GmapProfiler().profile(kernel)
    a = ProxyGenerator(profile, seed=seed).generate_warp_traces()
    b = ProxyGenerator(profile, seed=seed).generate_warp_traces()
    assert [t.transactions for t in a] == [t.transactions for t in b]


@settings(max_examples=15, deadline=None)
@given(regular_kernels(), st.sampled_from([2.0, 4.0, 8.0]))
def test_miniaturization_monotone(kernel, factor):
    """A larger reduction factor never yields a larger clone."""
    profile = GmapProfiler().profile(kernel)
    full = sum(
        len(t.transactions)
        for t in ProxyGenerator(profile, seed=1).generate_warp_traces()
    )
    small_profile = miniaturize_profile(profile, factor)
    small = sum(
        len(t.transactions)
        for t in ProxyGenerator(small_profile, seed=1).generate_warp_traces()
    )
    assert small <= full


@settings(max_examples=15, deadline=None)
@given(regular_kernels())
def test_profile_serialisation_round_trip(kernel):
    from repro.core.profile import GmapProfile

    profile = GmapProfiler().profile(kernel)
    assert GmapProfile.from_dict(profile.to_dict()).to_dict() == profile.to_dict()


@settings(max_examples=15, deadline=None)
@given(regular_kernels(), st.integers(0, 2**31))
def test_store_flags_preserved(kernel, seed):
    """PCs profiled as stores generate store transactions, and vice versa."""
    profile = GmapProfiler().profile(kernel)
    clone = ProxyGenerator(profile, seed=seed).generate_warp_traces()
    store_pcs = {
        pc for pc, stats in profile.instructions.items() if stats.is_store
    }
    for trace in clone:
        for pc, _, _, is_store in trace.transactions:
            if pc == SYNC_PC:
                continue
            assert bool(is_store) == (pc in store_pcs)
