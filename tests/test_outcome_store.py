"""Durable router state: outcome-store persistence and RouterCore recovery.

These tests exercise the disk format directly (checksummed log lines,
snapshot compaction, peer visibility) and the router behaviours built on
it: crash recovery, terminal-record eviction with store-backed recall,
and the ``--join`` epoch handshake.
"""

from __future__ import annotations

import json

import pytest

from repro.core.integrity import integrity_events
from repro.service.outcome_store import EVENT_CORRUPT_RECORD, OutcomeStore
from repro.service.router import ReplicaEndpoint, RouterCore


class FakeClock:
    """Settable monotonic clock for TTL-driven tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- the store itself --------------------------------------------------------

class TestOutcomeStore:
    def test_roundtrip_across_restart(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_assignment("j1", {"kind": "simulate"}, "r0")
        store.record_terminal("j1", {"status": "completed", "result": 7})
        store.record_assignment("j2", {"kind": "profile"}, "r1")
        store.close()

        reborn = OutcomeStore(tmp_path)
        jobs = reborn.jobs()
        assert set(jobs) == {"j1", "j2"}
        assert jobs["j1"].terminal == {"status": "completed", "result": 7}
        assert jobs["j1"].replica_id == "r0"
        assert jobs["j2"].terminal is None
        assert jobs["j2"].replica_id == "r1"

    def test_assignment_is_latest_wins(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_assignment("j1", {"kind": "simulate"}, "r0")
        store.record_assignment("j1", {"kind": "simulate"}, "r2")
        assert store.jobs()["j1"].replica_id == "r2"
        store.close()
        assert OutcomeStore(tmp_path).jobs()["j1"].replica_id == "r2"

    def test_terminal_is_first_wins(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_terminal("j1", {"status": "completed", "result": 1})
        store.record_terminal("j1", {"status": "failed", "result": None})
        assert store.jobs()["j1"].terminal["status"] == "completed"
        store.close()
        reborn = OutcomeStore(tmp_path)
        assert reborn.jobs()["j1"].terminal["status"] == "completed"

    def test_corrupt_log_lines_skipped_and_counted(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_terminal("good", {"status": "completed"})
        log_path = store._own_log_path()
        store.close()

        # A torn tail (not JSON) and a bit-flipped checksummed line.
        good_line = log_path.read_text(encoding="utf-8").splitlines()[0]
        tampered = json.loads(good_line)
        tampered["record"]["job_id"] = "evil"  # checksum no longer matches
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(tampered) + "\n")
            fh.write('{"schema": 1, "rec')  # torn mid-write

        before = integrity_events.snapshot()
        reborn = OutcomeStore(tmp_path)
        delta = integrity_events.delta(before)
        assert reborn.corrupt_lines == 2
        assert delta.get(EVENT_CORRUPT_RECORD) == 2
        jobs = reborn.jobs()
        assert "good" in jobs and "evil" not in jobs

    def test_corrupt_snapshot_rejected_not_trusted(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_terminal("j1", {"status": "completed"})
        assert store.compact(force=True)
        store.close()
        snap = tmp_path / "router" / "outcomes.snap"
        doc = json.loads(snap.read_text(encoding="utf-8"))
        doc["jobs"] = [{"job_id": "forged", "payload": {},
                        "replica_id": None, "terminal": None}]
        snap.write_text(json.dumps(doc), encoding="utf-8")  # stale checksum

        reborn = OutcomeStore(tmp_path)
        assert reborn.corrupt_lines >= 1
        assert "forged" not in reborn.jobs()

    def test_forced_compaction_folds_and_retires_own_log(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_assignment("j1", {"kind": "simulate"}, "r0")
        store.record_terminal("j1", {"status": "completed"})
        own_log = store._own_log_path()
        assert own_log.exists()
        assert store.compact(force=True)
        assert store.compactions == 1
        assert not own_log.exists()
        assert (tmp_path / "router" / "outcomes.snap").exists()
        # Nothing pending: a threshold-gated compact is a no-op now.
        assert store.compact() is False
        store.close()

        reborn = OutcomeStore(tmp_path)
        assert reborn.jobs()["j1"].terminal == {"status": "completed"}

    def test_compaction_triggers_at_threshold(self, tmp_path):
        store = OutcomeStore(tmp_path, compact_threshold=3)
        for n in range(3):
            store.record_assignment(f"j{n}", {"n": n}, "r0")
        assert store.compactions == 1
        store.close()

    def test_live_peer_log_survives_compaction(self, tmp_path):
        peer = OutcomeStore(tmp_path)
        peer.record_terminal("peer-job", {"status": "completed"})
        me = OutcomeStore(tmp_path)
        me.record_terminal("my-job", {"status": "completed"})
        assert me.compact(force=True)
        # The peer's log was appended moments ago: not stale, not deleted.
        assert peer._own_log_path().exists()
        # But its records are folded into the snapshot all the same.
        reborn = OutcomeStore(tmp_path)
        assert {"peer-job", "my-job"} <= set(reborn.jobs())
        for store in (peer, me, reborn):
            store.close()

    def test_stale_peer_log_retired_by_compaction(self, tmp_path):
        import os as _os
        import time as _time

        peer = OutcomeStore(tmp_path)
        peer.record_terminal("peer-job", {"status": "completed"})
        peer_log = peer._own_log_path()
        peer.close()
        # Backdate the peer's log past stale_log_seconds (no append since).
        ancient = _time.time() - 10_000.0
        _os.utime(peer_log, (ancient, ancient))
        me = OutcomeStore(tmp_path)
        assert me.compact(force=True)
        assert not peer_log.exists()
        assert OutcomeStore(tmp_path).jobs()["peer-job"].terminal is not None
        me.close()

    def test_lookup_refresh_sees_peer_writes(self, tmp_path):
        me = OutcomeStore(tmp_path)
        assert me.lookup("late") is None
        peer = OutcomeStore(tmp_path)
        peer.record_terminal("late", {"status": "completed", "result": 3})
        assert me.lookup("late") is None  # in-memory table is per-process
        found = me.lookup("late", refresh=True)
        assert found is not None
        assert found.terminal == {"status": "completed", "result": 3}
        me.close()
        peer.close()


# -- RouterCore on top of the store ------------------------------------------

def _terminal(result: int = 7) -> dict:
    return {"status": "completed", "result": result}


class TestRouterRecovery:
    def test_recovers_terminal_and_pending_counters(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.record_assignment("done", {"kind": "simulate"}, "r0")
        store.record_terminal("done", _terminal())
        store.record_assignment("inflight", {"kind": "simulate"}, "r0")
        store.close()

        core = RouterCore([], store=OutcomeStore(tmp_path))
        counters = core.fleet_snapshot()["counters"]
        assert counters["recovered_terminal"] == 1
        assert counters["recovered_pending"] == 1

        status, body = core.lookup("done")
        assert status == 200 and body == _terminal()
        # The pending job has no routable replica yet: the handle stays
        # valid and reports queued, not 404.
        status, body = core.lookup("inflight")
        assert status == 200
        assert body["status"] == "queued" and body["reassigned"] is False

    def test_recall_serves_peer_recorded_outcome(self, tmp_path):
        core = RouterCore([], store=OutcomeStore(tmp_path))
        assert core.lookup("ghost")[0] == 404
        peer = OutcomeStore(tmp_path)
        peer.record_terminal("peer-job", _terminal(9))
        peer.close()
        status, body = core.lookup("peer-job")
        assert status == 200 and body == _terminal(9)


class TestTerminalEviction:
    def _core(self, tmp_path, clock, **kwargs):
        return RouterCore([], store=OutcomeStore(tmp_path, clock=clock),
                          clock=clock, **kwargs)

    def _settle(self, core, job_id, result=7):
        from repro.service.router import _JobRecord

        record = _JobRecord({"kind": "simulate"}, -1, "r0")
        with core._jobs_lock:
            core._jobs[job_id] = record
        core._settle(job_id, record, _terminal(result))

    def test_ttl_eviction_keeps_outcome_servable_from_store(self, tmp_path):
        clock = FakeClock()
        core = self._core(tmp_path, clock, terminal_ttl=100.0)
        self._settle(core, "old", result=1)
        clock.advance(150.0)
        self._settle(core, "fresh", result=2)  # settling runs eviction

        snap = core.fleet_snapshot()
        assert snap["counters"]["evicted_terminal"] == 1
        assert snap["jobs_tracked"] == 1  # "old" left the in-memory table
        # ...but its outcome is still servable, recalled from the store.
        status, body = core.lookup("old")
        assert status == 200 and body == _terminal(1)

    def test_max_terminal_evicts_oldest_first(self, tmp_path):
        clock = FakeClock()
        core = self._core(tmp_path, clock, terminal_ttl=1e9, max_terminal=2)
        for n, job_id in enumerate(["a", "b", "c"]):
            clock.advance(1.0)
            self._settle(core, job_id, result=n)

        snap = core.fleet_snapshot()
        assert snap["counters"]["evicted_terminal"] == 1
        assert snap["jobs_tracked"] == 2
        with core._jobs_lock:
            assert set(core._jobs) == {"b", "c"}  # oldest ("a") evicted
        assert core.lookup("a") == (200, _terminal(0))  # via the store

    def test_pending_records_are_never_evicted(self, tmp_path):
        clock = FakeClock()
        core = self._core(tmp_path, clock, terminal_ttl=10.0, max_terminal=1)
        from repro.service.router import _JobRecord

        with core._jobs_lock:
            core._jobs["pending"] = _JobRecord({"kind": "simulate"}, -1, "r0")
        clock.advance(1_000.0)
        self._settle(core, "done")
        with core._jobs_lock:
            assert "pending" in core._jobs


class TestRegisterEpochs:
    def test_new_replica_registers_and_becomes_routable(self):
        core = RouterCore([])
        status, body = core.register_replica("r1", "http://h:1", 10)
        assert status == 200
        assert body == {"registered": True, "replica_id": "r1",
                        "epoch": 10, "rejoined": False}
        assert core.ready()
        assert core.fleet_snapshot()["counters"]["registered"] == 1

    def test_same_epoch_heartbeat_is_idempotent(self):
        core = RouterCore([])
        core.register_replica("r1", "http://h:1", 10)
        status, body = core.register_replica("r1", "http://h:1", 10)
        assert status == 200 and body["rejoined"] is False
        assert len(core.endpoints()) == 1

    def test_higher_epoch_is_a_rejoin(self):
        core = RouterCore([])
        core.register_replica("r1", "http://h:1", 10)
        status, body = core.register_replica("r1", "http://h:2", 11)
        assert status == 200 and body["rejoined"] is True
        (endpoint,) = core.endpoints()
        assert endpoint.base_url == "http://h:2"
        assert endpoint.snapshot()["restarts"] == 1

    def test_lower_epoch_straggler_is_refused(self):
        core = RouterCore([])
        core.register_replica("r1", "http://h:2", 11)
        status, body = core.register_replica("r1", "http://h:1", 10)
        assert status == 409
        assert "stale epoch" in body["error"]
        (endpoint,) = core.endpoints()
        assert endpoint.base_url == "http://h:2"  # URL did not roll back

    def test_empty_fields_rejected(self):
        core = RouterCore([])
        assert core.register_replica("", "http://h:1", 1)[0] == 400
        assert core.register_replica("r1", "", 1)[0] == 400

    def test_rejoin_requeues_previous_assignments(self, tmp_path):
        """A restarted replica kept no queue: its jobs must requeue.

        With no *other* routable replica the requeue lands back on the
        rejoined one — the counter is what this test pins down."""
        store = OutcomeStore(tmp_path)
        store.record_assignment("lost", {"kind": "simulate"}, "r1")
        store.close()
        endpoint = ReplicaEndpoint(0, "r1")
        core = RouterCore([endpoint], store=OutcomeStore(tmp_path))
        assert core.fleet_snapshot()["counters"]["recovered_pending"] == 1
        # Rejoin with a higher epoch; the requeue attempt runs (it will
        # fail to place: the base_url is a black hole) and the job stays
        # pending rather than silently vanishing.
        core.register_replica("r1", "http://127.0.0.1:9", 2)
        core.register_replica("r1", "http://127.0.0.1:9", 3)
        with core._jobs_lock:
            assert core._jobs["lost"].terminal is None
