"""Repository quality gates: documentation and API hygiene."""

from __future__ import annotations

import ast
import importlib
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

MODULES = sorted(
    str(p.relative_to(SRC.parent)).replace("/", ".").removesuffix(".py")
    for p in SRC.rglob("*.py")
    if p.name != "__init__.py"
)


@pytest.mark.parametrize("module_path", sorted(SRC.rglob("*.py"),
                                               key=lambda p: str(p)))
def test_every_module_has_a_docstring(module_path):
    tree = ast.parse(module_path.read_text())
    assert ast.get_docstring(tree), f"{module_path} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_imports_cleanly(module_name):
    try:
        importlib.import_module(module_name)
    except ImportError as exc:
        if "numpy" in str(exc).lower():
            pytest.skip(f"optional dependency unavailable: {exc}")
        raise


def test_public_classes_and_functions_documented():
    """Every public (non-underscore) top-level class/function in the
    package has a docstring."""
    undocumented = []
    for module_path in SRC.rglob("*.py"):
        tree = ast.parse(module_path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(f"{module_path.name}:{node.name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_all_exports_resolve():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_no_print_in_library_code():
    """The library proper is silent; printing belongs to the CLI, the
    validation report helpers, the service front ends (serve/fleet,
    the chaos harness, the load generator, and the serve benchmark are
    command-line entry points), and the bench/example layers."""
    allowed = {"cli.py", "report.py", "server.py", "chaos.py",
               "fleet.py", "loadgen.py", "bench.py", "router.py"}
    offenders = []
    for module_path in SRC.rglob("*.py"):
        if module_path.name in allowed:
            continue
        tree = ast.parse(module_path.read_text())
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                offenders.append(f"{module_path.name}:{node.lineno}")
    assert not offenders, f"print() in library code: {offenders}"