"""Tests for the CUDA-like kernel DSL."""

from __future__ import annotations

import pytest

from repro.core.profiler import GmapProfiler
from repro.core.generator import ProxyGenerator
from repro.gpu.dsl import KernelBuilder
from repro.gpu.executor import execute_kernel
from repro.gpu.instructions import SYNC_PC, is_sync
from repro.gpu.memspace import MemorySpace, space_of
from repro.memsim.config import PAPER_BASELINE
from repro.memsim.simulator import simulate
from repro.workloads import suite


def make_saxpy(grid=2, block=64, iters=4):
    k = KernelBuilder("saxpy", grid=grid, block=block)
    n = grid * block * iters
    x = k.array("x", elems=n)
    y = k.array("y", elems=n)

    @k.program
    def saxpy(ctx):
        for j in range(ctx.params["iters"]):
            i = ctx.global_tid + j * ctx.total_threads
            ctx.load(x[i])
            ctx.load(y[i])
            ctx.store(y[i])

    return k.build(iters=iters)


class TestBuilder:
    def test_requires_program(self):
        k = KernelBuilder("empty", grid=1, block=32)
        with pytest.raises(ValueError, match="no program"):
            k.build()

    def test_array_validation(self):
        k = KernelBuilder("k", grid=1, block=32)
        with pytest.raises(ValueError):
            k.array("a", elems=0)

    def test_array_spaces(self):
        k = KernelBuilder("k", grid=1, block=32)
        s = k.array("tile", elems=64, space="shared")
        assert space_of(s.base) is MemorySpace.SHARED

    def test_params_reach_program(self):
        kernel = make_saxpy(iters=7)
        assert len(kernel.trace_thread(0)) == 21  # 3 accesses x 7 iters


class TestThreadContext:
    def test_indices(self):
        collected = {}
        k = KernelBuilder("probe", grid=2, block=64)
        a = k.array("a", elems=1024)

        @k.program
        def probe(ctx):
            collected[ctx.global_tid] = (
                ctx.block_idx, ctx.thread_idx, ctx.warp, ctx.lane
            )
            ctx.load(a[ctx.global_tid])

        probe_kernel = k.build()
        probe_kernel.trace_thread(0)
        probe_kernel.trace_thread(65)
        assert collected[0] == (0, 0, 0, 0)
        assert collected[65] == (1, 1, 2, 1)

    def test_element_ref_wraps(self):
        k = KernelBuilder("k", grid=1, block=32)
        a = k.array("a", elems=8)
        assert a[9].address == a[1].address

    def test_syncthreads_marker(self):
        k = KernelBuilder("k", grid=1, block=32)
        a = k.array("a", elems=64)

        @k.program
        def body(ctx):
            ctx.load(a[ctx.global_tid])
            ctx.syncthreads()
            ctx.store(a[ctx.global_tid])

        trace = k.build().trace_thread(3)
        assert is_sync(trace[1])


class TestPcAssignment:
    def test_distinct_sites_distinct_pcs(self):
        kernel = make_saxpy()
        pcs = {pc for pc, *_ in kernel.trace_thread(0) if pc != SYNC_PC}
        assert len(pcs) == 3  # load x, load y, store y

    def test_sites_stable_across_threads(self):
        kernel = make_saxpy()
        pcs0 = [pc for pc, *_ in kernel.trace_thread(0)]
        pcs9 = [pc for pc, *_ in kernel.trace_thread(9)]
        assert pcs0 == pcs9

    def test_site_table(self):
        kernel = make_saxpy()
        table = kernel.site_table()
        assert len(table) == 3
        assert all(pc >= 0x1000 for pc in table.values())

    def test_explicit_site_labels(self):
        k = KernelBuilder("k", grid=1, block=32)
        a = k.array("a", elems=64)

        @k.program
        def body(ctx):
            ctx.load(a[ctx.global_tid], site="hot-load")
            ctx.load(a[ctx.global_tid + 1], site="hot-load")  # same PC

        kernel = k.build()
        pcs = {pc for pc, *_ in kernel.trace_thread(0)}
        assert len(pcs) == 1


class TestDslPipeline:
    def test_profiles_like_handwritten_equivalent(self):
        """The DSL saxpy and the handwritten vectoradd model have the same
        access structure, so their profiles agree on the key statistics."""
        dsl_kernel = make_saxpy(grid=2, block=256, iters=16)
        hand_kernel = suite.make("vectoradd", "tiny")
        dsl_profile = GmapProfiler().profile(dsl_kernel)
        hand_profile = GmapProfiler().profile(hand_kernel)
        assert dsl_profile.num_profiles == hand_profile.num_profiles == 1
        dsl_inter = {
            s.inter_stride.dominant()[0]
            for s in dsl_profile.instructions.values()
        }
        assert dsl_inter == {128}  # unit-stride warps, like Figure 4

    def test_clone_accuracy(self):
        kernel = make_saxpy(grid=2, block=256, iters=16)
        profile = GmapProfiler().profile(kernel)
        original = simulate(execute_kernel(kernel, 15), PAPER_BASELINE)
        clone = simulate(
            ProxyGenerator(profile, seed=5).generate(15), PAPER_BASELINE
        )
        assert abs(original.l1_miss_rate - clone.l1_miss_rate) < 0.03

    def test_registerable_in_suite(self):
        name = "saxpy"  # matches the DSL kernel's own name, as the suite
        # registry invariant (make(name).name == name) requires
        if name not in suite.available():
            suite.register(name, lambda scale: make_saxpy())
        kernel = suite.make(name, "tiny")
        assert kernel.name == "saxpy"