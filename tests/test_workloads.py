"""Tests for the synthetic GPGPU workload suite."""

from __future__ import annotations

import pytest

from repro.core.coalescing import CoalescingModel
from repro.gpu.executor import build_warp_traces
from repro.gpu.hierarchy import LaunchConfig
from repro.workloads import suite
from repro.workloads.base import (
    KernelModel,
    Layout,
    RegularKernel,
    StridedInstr,
    WorkloadScale,
)


class TestLayout:
    def test_disjoint_regions(self):
        layout = Layout()
        a = layout.alloc("a", 1000)
        b = layout.alloc("b", 1000)
        assert b >= a + 1000
        assert layout.base("a") == a
        assert layout.region("b") == (b, 1000)

    def test_alignment(self):
        layout = Layout()
        layout.alloc("a", 17)
        b = layout.alloc("b", 1)
        assert b % 4096 == 0

    def test_double_alloc_rejected(self):
        layout = Layout()
        layout.alloc("a", 8)
        with pytest.raises(ValueError, match="allocated twice"):
            layout.alloc("a", 8)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Layout().alloc("x", 0)

    def test_footprint(self):
        layout = Layout()
        layout.alloc("a", 4096)
        layout.alloc("b", 1)
        assert layout.footprint == 2 * 4096


class TestStridedInstr:
    def test_address_formula(self):
        instr = StridedInstr(pc=0x10, array="a", inter_stride=4,
                             intra_stride=128, reuse_period=4, phase=8)
        # tid 3, iteration 5: base + 3*4 + (5%4)*128 + 8
        assert instr.address(0x1000, 3, 5) == 0x1000 + 12 + 128 + 8

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedInstr(pc=0, array="a", inter_stride=4, every=0)
        with pytest.raises(ValueError):
            StridedInstr(pc=0, array="a", inter_stride=4, reuse_period=0)


class TestRegularKernel:
    def _make(self, divergent=False):
        layout = Layout()
        layout.alloc("a", 1 << 20)
        layout.alloc("d", 1 << 20)
        instrs = [StridedInstr(pc=0x10, array="a", inter_stride=4, intra_stride=128)]
        div = [StridedInstr(pc=0x20, array="d", inter_stride=4)] if divergent else []
        return RegularKernel(
            LaunchConfig(1, 64), layout, instrs, iters=4,
            divergent_instrs=div, divergent_modulo=2 if divergent else 0,
        )

    def test_trace_length(self):
        kernel = self._make()
        assert len(kernel.trace_thread(0)) == 4

    def test_every_gates_frequency(self):
        layout = Layout()
        layout.alloc("a", 1 << 20)
        kernel = RegularKernel(
            LaunchConfig(1, 32), layout,
            [StridedInstr(pc=1, array="a", inter_stride=4),
             StridedInstr(pc=2, array="a", inter_stride=4, every=4)],
            iters=8,
        )
        pcs = [pc for pc, *_ in kernel.trace_thread(0)]
        assert pcs.count(1) == 8
        assert pcs.count(2) == 2

    def test_divergent_threads_have_extra_pcs(self):
        kernel = self._make(divergent=True)
        pcs_even = {pc for pc, *_ in kernel.trace_thread(0)}
        pcs_odd = {pc for pc, *_ in kernel.trace_thread(1)}
        assert 0x20 in pcs_even
        assert 0x20 not in pcs_odd

    def test_static_pcs(self):
        assert self._make(divergent=True).static_pcs() == [0x10, 0x20]

    def test_validation(self):
        layout = Layout()
        layout.alloc("a", 64)
        instr = StridedInstr(pc=1, array="a", inter_stride=4)
        with pytest.raises(ValueError):
            RegularKernel(LaunchConfig(1, 32), layout, [instr], iters=0)
        with pytest.raises(ValueError):
            RegularKernel(LaunchConfig(1, 32), layout, [], iters=1)
        with pytest.raises(ValueError):
            RegularKernel(LaunchConfig(1, 32), layout, [instr], iters=1,
                          divergent_instrs=[instr], divergent_modulo=1)


class TestWorkloadScale:
    def test_presets(self):
        assert WorkloadScale.preset("tiny").blocks == 2
        assert WorkloadScale.preset("default").blocks == 8

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown scale"):
            WorkloadScale.preset("huge")

    def test_iters_scaling(self):
        assert WorkloadScale.preset("small").iters(64) == 32
        assert WorkloadScale(blocks=1, iters_factor=0.001).iters(10) == 1


class TestSuiteRegistry:
    def test_paper_suite_has_18(self):
        assert len(suite.PAPER_SUITE) == 18
        assert len(set(suite.PAPER_SUITE)) == 18

    def test_table1_suite_row_order(self):
        assert list(suite.TABLE1_SUITE) == [
            "heartwall", "backprop", "kmeans", "srad", "scalarprod", "cp",
            "blackscholes", "lud", "lib", "fwt",
        ]

    def test_all_models_instantiate(self):
        for name in suite.available():
            kernel = suite.make(name, scale="tiny")
            assert isinstance(kernel, KernelModel)
            assert kernel.name == name

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            suite.make("doom")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            suite.register("kmeans", lambda s: None)

    def test_register_new(self):
        name = "test_custom_kernel"

        def factory(scale):
            kernel = suite.make("vectoradd", scale)
            kernel.name = name  # keep the registry invariant make(n).name == n
            return kernel

        if name not in suite.available():
            suite.register(name, factory)
        kernel = suite.make(name, "tiny")
        assert kernel.name == name

    def test_explicit_scale_object(self):
        kernel = suite.make("kmeans", WorkloadScale(blocks=1, iters_factor=0.2))
        assert kernel.launch.num_blocks == 1


class TestWorkloadBehaviour:
    """Structural claims each model must satisfy (Table 1 semantics)."""

    def test_traces_deterministic(self):
        for name in ("kmeans", "hotspot", "bfs", "aes"):
            k1 = suite.make(name, "tiny")
            k2 = suite.make(name, "tiny")
            assert k1.trace_thread(5) == k2.trace_thread(5)

    def test_every_thread_yields_accesses(self):
        for name in suite.PAPER_SUITE:
            kernel = suite.make(name, "tiny")
            assert kernel.trace_thread(0)
            assert kernel.trace_thread(kernel.total_threads - 1)

    def test_kmeans_inter_thread_stride(self):
        """Table 1: kmeans point reads stride 136B/thread (4352B/warp)."""
        kernel = suite.make("kmeans", "tiny")
        a0 = next(a for pc, a, *_ in kernel.thread_program(0) if pc == 0xE8)
        a1 = next(a for pc, a, *_ in kernel.thread_program(1) if pc == 0xE8)
        assert a1 - a0 == 136

    def test_kmeans_single_dominant_pc(self):
        kernel = suite.make("kmeans", "tiny")
        pcs = [pc for pc, *_ in kernel.thread_program(3)]
        assert pcs.count(0xE8) / len(pcs) > 0.95  # "~100%" in Table 1

    def test_srad_strides(self):
        """Table 1: srad threads stride 512B apart, walk ~-8K per iter
        (65 lines — line-coprime with the lane spacing, see the model)."""
        kernel = suite.make("srad", "tiny")
        t0 = [a for pc, a, *_ in kernel.thread_program(0) if pc == 0x250]
        t1 = [a for pc, a, *_ in kernel.thread_program(1) if pc == 0x250]
        assert t1[0] - t0[0] == 512
        assert t0[1] - t0[0] == -8320

    def test_heartwall_dominant_frequencies(self):
        kernel = suite.make("heartwall", "small")
        pcs = [pc for pc, *_ in kernel.thread_program(0)]
        freq_0x900 = pcs.count(0x900) / len(pcs)
        assert freq_0x900 > 0.75  # Table 1: 81%

    def test_bfs_divergent_profiles(self):
        """Non-expanding threads (tid%4==0) run a shorter path."""
        kernel = suite.make("bfs", "tiny")
        short = kernel.trace_thread(0)
        long = kernel.trace_thread(1)
        assert len(long) > len(short)

    def test_blackscholes_store_instructions(self):
        kernel = suite.make("blackscholes", "tiny")
        stores = {pc for pc, _, _, st in kernel.thread_program(0) if st}
        assert stores == {0x108, 0x110}

    def test_vectoradd_coalesces_perfectly(self):
        """Figure 4: unit-stride warps produce one transaction per instr."""
        kernel = suite.make("vectoradd", "tiny")
        traces = build_warp_traces(kernel)
        w0 = traces[0]
        assert all(n == 1 for _, n in w0.instructions)

    def test_hotspot_has_no_dominant_stride(self):
        """Paper section 5: hotspot lacks dominant stride patterns."""
        kernel = suite.make("hotspot", "small")
        addrs = [a for pc, a, *_ in kernel.thread_program(9) if pc == 0x610]
        strides = [b - a for a, b in zip(addrs, addrs[1:])]
        from collections import Counter
        top = Counter(strides).most_common(1)[0][1]
        assert top / len(strides) < 0.5

    def test_aes_ttable_footprint_small(self):
        """AES T-table reads stay within the 4KB table region."""
        kernel = suite.make("aes", "tiny")
        table_pcs = {0x818, 0x820, 0x828, 0x830}
        addrs = [a for pc, a, *_ in kernel.thread_program(2) if pc in table_pcs]
        assert addrs
        assert max(addrs) - min(addrs) < 4096

    def test_sortingnetworks_power_of_two_strides(self):
        kernel = suite.make("sortingnetworks", "tiny")
        partner = [a for pc, a, *_ in kernel.thread_program(0) if pc == 0x338]
        own = [a for pc, a, *_ in kernel.thread_program(0) if pc == 0x330]
        diffs = {abs(p - o) for p, o in zip(partner, own)}
        assert all(d & (d - 1) == 0 for d in diffs)  # powers of two

    def test_reduction_tree_levels_diverge(self):
        """Each reduction level halves the active threads."""
        kernel = suite.make("reduction", "tiny")
        t0 = kernel.trace_thread(0)      # active at every level
        t1 = kernel.trace_thread(1)      # only the leaf loads
        assert len(t0) > len(t1)

    def test_reduction_warp_level_pi_divergence(self):
        """Whole warps drop out at upper levels: multiple warp π profiles."""
        from repro.core.profiler import GmapProfiler
        profile = GmapProfiler().profile(suite.make("reduction", "tiny"))
        assert profile.num_profiles >= 2

    def test_spmv_row_lengths_powerlaw(self):
        kernel = suite.make("spmv_csr", "tiny")
        lengths = [kernel.row_length(tid) for tid in range(512)]
        assert min(lengths) >= 1
        assert max(lengths) > min(lengths)
        # Head-heavy: most rows short.
        assert sum(1 for n in lengths if n <= 2) > len(lengths) / 3

    def test_transpose_store_anticoalesced(self):
        """The transposed store scatters its lanes a column apart."""
        from repro.gpu.executor import build_warp_traces
        kernel = suite.make("transpose", "tiny")
        trace = build_warp_traces(kernel)[0]
        store_degrees = [n for pc, n in trace.instructions if pc == 0xF18]
        load_degrees = [n for pc, n in trace.instructions if pc == 0xF10]
        assert all(n == 32 for n in store_degrees)
        assert all(n == 1 for n in load_degrees)

    def test_gaussian_divergence_grows(self):
        """Eliminated rows drop out: later steps have fewer active lanes."""
        kernel = suite.make("gaussian", "tiny")
        profile_occupancy = __import__("repro.core.profiler",
                                       fromlist=["GmapProfiler"])
        profile = profile_occupancy.GmapProfiler().profile(kernel)
        assert profile.avg_warp_occupancy < 0.95

    def test_pointer_chase_is_dependent_chain(self):
        """Each hop's address is a function of the previous node."""
        kernel = suite.make("pointer_chase", "tiny")
        addrs = [a for pc, a, *_ in kernel.thread_program(3) if pc == 0xA50]
        strides = {b - a for a, b in zip(addrs, addrs[1:])}
        assert len(strides) > len(addrs) // 2  # no dominant stride at all
        # Deterministic: the same chain reproduces.
        addrs2 = [a for pc, a, *_ in kernel.thread_program(3) if pc == 0xA50]
        assert addrs == addrs2

    def test_stencil3d_three_stride_scales(self):
        kernel = suite.make("stencil3d", "tiny")
        trace = kernel.trace_thread(0)
        centre = trace[0][1]
        offsets = {a - centre for pc, a, *_ in trace[:7]}
        assert {0, -4, 4, -256, 256, -16384, 16384} == offsets

    def test_lib_frequencies(self):
        """Table 1: LIB's two hot PCs carry ~46% each, third ~4%."""
        kernel = suite.make("lib", "small")
        pcs = [pc for pc, *_ in kernel.thread_program(0)]
        total = len(pcs)
        assert pcs.count(0x1C68) / total == pytest.approx(0.48, abs=0.05)
        assert pcs.count(0x1B40) / total == pytest.approx(0.04, abs=0.03)
