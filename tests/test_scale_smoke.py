"""Scale smoke tests: the pipeline at larger-than-test sizes.

One default-scale benchmark runs the complete pipeline to guard against
size cliffs (quadratic blowups, recursion limits, overflow) that tiny-scale
tests cannot see.  Kept to a single representative app so the suite stays
fast.
"""

from __future__ import annotations

import pytest

from repro.memsim.config import PAPER_BASELINE
from repro.validation.harness import build_pipeline, simulate_pair
from repro.workloads import suite


@pytest.mark.parametrize("name,tolerance", [
    ("cp", 0.02),
    ("srad", 0.02),
    # kmeans' +4B/instance sub-segment drift is invisible to the
    # post-coalescing statistics until it crosses a segment, so at long
    # iteration counts the clone misses the original's slow set-pressure
    # evolution (DESIGN.md §7, known limitations) — the error stays within
    # the paper's per-app worst-case band.
    ("kmeans", 0.15),
])
def test_default_scale_end_to_end(name, tolerance):
    kernel = suite.make(name, "default")  # 8 blocks x 256 threads
    pipeline = build_pipeline(kernel, num_cores=PAPER_BASELINE.num_cores,
                              seed=99)
    assert pipeline.profile.total_transactions > 100_000
    pair = simulate_pair(pipeline, PAPER_BASELINE)
    assert pair.original.requests_issued == pipeline.profile.total_transactions
    err = abs(pair.original.l1_miss_rate - pair.proxy.l1_miss_rate)
    assert err < tolerance


def test_scale_up_clone_runs():
    """A 4x-scaled-up clone (futuristic workload) simulates cleanly."""
    from repro import ProxyGenerator, scale_up_threads, simulate

    kernel = suite.make("cp", "small")
    pipeline = build_pipeline(kernel, num_cores=15, seed=3)
    big = scale_up_threads(pipeline.profile, block_multiplier=4)
    result = simulate(
        ProxyGenerator(big, seed=3).generate(15), PAPER_BASELINE
    )
    assert result.requests_issued > 3 * pipeline.profile.total_transactions
