"""End-to-end chaos scenarios against a live ``gmap serve`` instance.

Thin pytest bindings over :mod:`repro.service.chaos` — each scenario boots
a real service (HTTP listener, process-isolated workers), injects its
fault, and reports violations of the acceptance invariants (no crash,
typed outcomes, bounded queue, labeled degradation, lossless
drain/resume).  The CI ``service`` job additionally runs the harness as a
standalone binary under a hard wall-clock timeout.
"""

from __future__ import annotations

import random

import pytest

from repro.service import chaos


@pytest.fixture(scope="module")
def rng():
    return random.Random(20170618)  # DAC'17 vintage


@pytest.mark.parametrize("scenario", chaos.SCENARIOS,
                         ids=lambda s: s.__name__)
def test_chaos_scenario(scenario, rng, tmp_path):
    result = scenario(tmp_path, rng, smoke=True)
    assert result.ok, "; ".join(result.violations)


def test_harness_main_smoke_report(tmp_path):
    """The standalone entry point: exit 0 and a JSON report on success.

    Runs a single scenario via ``--only`` — the parametrized test above
    already covers the full matrix; this checks the binary surface.
    """
    out = tmp_path / "report.json"
    code = chaos.main(["--smoke", "--seed", "99", "--out", str(out),
                       "--only", "queue_flood"])
    assert code == 0
    import json

    report = json.loads(out.read_text())
    assert report["smoke"] is True
    assert [s["name"] for s in report["scenarios"]] == ["queue_flood"]
    assert all(s["ok"] for s in report["scenarios"])
