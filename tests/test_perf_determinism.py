"""Determinism guarantees of the performance subsystem.

The event-heap simulator hot path and the parallel sweep engine are pure
optimisations: this module pins them to the behaviour of the straightforward
implementations they replaced.

* ``SimtSimulator.run`` must match the pre-heap ``min(active, key=now)``
  linear scan bit-for-bit (the reference loop is preserved here);
* ``simulate_flat_trace`` must match the linear-scan merge with the same
  tie-break (and the documented SYNC clock-advance semantics);
* ``SweepRunner(jobs=4)`` must return results equal to ``jobs=1``.
"""

from __future__ import annotations

import pytest

from repro.gpu.executor import execute_kernel
from repro.gpu.instructions import pack, sync_marker
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.simulator import (
    SimtSimulator,
    _CoreState,
    simulate_flat_trace,
)
from repro.memsim.stats import SimResult
from repro.gpu.scheduler import make_scheduler
from repro.validation import sweeps
from repro.validation.parallel import SweepRunner
from repro.workloads import suite

WORKLOADS = ("vectoradd", "kmeans", "bfs")
SCHEDULERS = ("lrr", "gto")


def reference_run(config, assignments, max_requests=None) -> SimResult:
    """The pre-heap simulation loop: O(num_cores) min() scan per issue."""
    scheduler_proto = make_scheduler(
        config.scheduler, config.sched_p_self, config.scheduler_seed
    )
    hierarchy = MemoryHierarchy(config)
    cores = [
        _CoreState(a.core_id, a.waves, scheduler_proto.clone())
        for a in assignments
    ]
    active = [c for c in cores if c.active]
    issued_total = 0
    budget = max_requests if max_requests is not None else float("inf")
    while active and issued_total < budget:
        core = min(active, key=lambda c: c.now)
        before = core.issued
        alive = core.step(hierarchy)
        issued_total += core.issued - before
        if not alive or not core.active:
            active = [c for c in active if c.active]
    result = SimResult(
        l1=hierarchy.l1_stats(),
        l2=hierarchy.l2_stats(),
        dram=hierarchy.dram_stats(),
        texture=hierarchy.texture_stats(),
        constant=hierarchy.constant_stats(),
        shared_accesses=hierarchy.shared_accesses,
        requests_issued=issued_total,
        cycles=max((c.now for c in cores), default=0.0),
        barriers_crossed=sum(c.syncs_crossed for c in cores),
        per_core_l1=[l1.stats for l1 in hierarchy.l1s],
    )
    total_issues = sum(c.issued for c in cores)
    same = sum(c.same_issues for c in cores)
    result.measured_p_self = same / total_issues if total_issues else 0.0
    return result


def reference_flat(per_core_traces, config) -> SimResult:
    """Linear-scan flat-trace merge with SYNC advancing the clock."""
    hierarchy = MemoryHierarchy(config)
    clocks = [0.0] * len(per_core_traces)
    cursors = [0] * len(per_core_traces)
    issued = 0
    remaining = sum(len(t) for t in per_core_traces)
    while remaining:
        core = min(
            (c for c in range(len(per_core_traces))
             if cursors[c] < len(per_core_traces[c])),
            key=lambda c: clocks[c],
        )
        pc, address, size, is_store = per_core_traces[core][cursors[core]]
        cursors[core] += 1
        remaining -= 1
        if pc >= 0:
            hierarchy.access(core, clocks[core], pc, address, size,
                             bool(is_store))
            issued += 1
        clocks[core] += 1.0
    return SimResult(
        l1=hierarchy.l1_stats(),
        l2=hierarchy.l2_stats(),
        dram=hierarchy.dram_stats(),
        requests_issued=issued,
        cycles=max(clocks, default=0.0),
    )


def assert_results_identical(a: SimResult, b: SimResult) -> None:
    """Bit-exact equality over every field the harness compares."""
    assert a.l1 == b.l1
    assert a.l2 == b.l2
    assert a.dram == b.dram
    assert a.texture == b.texture
    assert a.constant == b.constant
    assert a.shared_accesses == b.shared_accesses
    assert a.requests_issued == b.requests_issued
    assert a.cycles == b.cycles
    assert a.measured_p_self == b.measured_p_self
    assert a.barriers_crossed == b.barriers_crossed
    assert a.per_core_l1 == b.per_core_l1


class TestHeapSimulatorMatchesReference:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_matrix(self, small_config, workload, scheduler):
        config = small_config.with_(scheduler=scheduler)
        kernel = suite.make(workload, "tiny")
        heap_result = SimtSimulator(config).run(
            execute_kernel(kernel, config.num_cores))
        ref_result = reference_run(
            config, execute_kernel(kernel, config.num_cores))
        assert_results_identical(heap_result, ref_result)

    def test_max_requests_budget(self, small_config):
        kernel = suite.make("kmeans", "tiny")
        heap_result = SimtSimulator(small_config).run(
            execute_kernel(kernel, small_config.num_cores), max_requests=37)
        ref_result = reference_run(
            small_config, execute_kernel(kernel, small_config.num_cores),
            max_requests=37)
        assert_results_identical(heap_result, ref_result)

    def test_barrier_workload(self, small_config):
        """A sync-heavy kernel exercises barrier parking inside bursts."""
        kernel = suite.make("matmul_shared", "tiny")
        heap_result = SimtSimulator(small_config).run(
            execute_kernel(kernel, small_config.num_cores))
        ref_result = reference_run(
            small_config, execute_kernel(kernel, small_config.num_cores))
        assert heap_result.barriers_crossed > 0
        assert_results_identical(heap_result, ref_result)


class TestFlatTraceMatchesReference:
    def test_mixed_lengths_and_ties(self, small_config):
        per_core = [
            [pack(1, 128 * i) for i in range(40)],
            [pack(2, (1 << 20) + 128 * i) for i in range(25)],
            [pack(3, 64 * i) for i in range(60)],
            [],
        ]
        assert_results_identical(
            simulate_flat_trace(per_core, small_config),
            reference_flat(per_core, small_config),
        )

    def test_with_sync_records(self, small_config):
        sync = sync_marker()
        per_core = [
            [sync, sync, pack(1, 0), sync, pack(1, 128)],
            [pack(2, 1 << 20), pack(2, (1 << 20) + 128), pack(2, 0)],
        ]
        assert_results_identical(
            simulate_flat_trace(per_core, small_config),
            reference_flat(per_core, small_config),
        )

    def test_sync_advances_clock(self, small_config):
        """SYNC records consume an issue slot (documented semantics)."""
        sync = sync_marker()
        result = simulate_flat_trace([[sync, sync, pack(1, 0)]], small_config)
        assert result.requests_issued == 1
        assert result.cycles == 3.0


class TestSweepRunnerDeterminism:
    def _configs(self):
        base = sweeps.l1_sweep(reduced=True, keep=3)
        return base + [base[0].with_(scheduler="gto")]

    def test_jobs4_equals_jobs1(self):
        kernels = [suite.make(n, "tiny") for n in ("vectoradd", "kmeans")]
        configs = self._configs()
        serial = SweepRunner(jobs=1).run(kernels, configs, num_cores=4)
        parallel = SweepRunner(jobs=4).run(kernels, configs, num_cores=4)
        assert len(serial) == len(parallel) == len(kernels)
        for s, p in zip(serial, parallel):
            assert s.benchmark == p.benchmark
            assert len(s.pairs) == len(p.pairs) == len(configs)
            for sp, pp in zip(s.pairs, p.pairs):
                assert sp.config == pp.config
                assert_results_identical(sp.original, pp.original)
                assert_results_identical(sp.proxy, pp.proxy)

    def test_chunking_preserves_config_order(self):
        kernels = [suite.make("vectoradd", "tiny")]
        configs = self._configs()
        runner = SweepRunner(jobs=2, chunk_size=1)
        result = runner.run(kernels, configs, num_cores=4)[0]
        assert [p.config for p in result.pairs] == list(configs)

    def test_run_experiment_matches_harness_entry_point(self):
        from repro.validation.harness import run_experiment

        kernels = [suite.make("vectoradd", "tiny")]
        configs = sweeps.l1_sweep(reduced=True, keep=2)
        via_harness = run_experiment(kernels, configs, "l1_miss_rate",
                                     num_cores=4, jobs=2)
        via_runner = SweepRunner(jobs=1).run_experiment(
            kernels, configs, "l1_miss_rate", num_cores=4)
        for a, b in zip(via_harness.comparisons, via_runner.comparisons):
            assert a.benchmark == b.benchmark
            assert a.originals == b.originals
            assert a.proxies == b.proxies
