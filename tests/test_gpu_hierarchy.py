"""Tests for the CUDA thread hierarchy (grid/TB/warp, G.1 rules)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.hierarchy import (
    WARP_SIZE,
    Dim3,
    LaunchConfig,
    ThreadCoord,
    assign_blocks_to_cores,
    resident_waves,
)


class TestDim3:
    def test_defaults(self):
        d = Dim3()
        assert (d.x, d.y, d.z) == (1, 1, 1)
        assert d.count == 1

    def test_count(self):
        assert Dim3(4, 3, 2).count == 24

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Dim3(0)
        with pytest.raises(ValueError):
            Dim3(1, -1)

    def test_linearize_x_major(self):
        """CUDA G.1: tid = x + y*Dx + z*Dx*Dy."""
        d = Dim3(4, 3, 2)
        assert d.linearize(0, 0, 0) == 0
        assert d.linearize(3, 0, 0) == 3
        assert d.linearize(0, 1, 0) == 4
        assert d.linearize(0, 0, 1) == 12
        assert d.linearize(3, 2, 1) == 23

    def test_linearize_bounds(self):
        with pytest.raises(ValueError):
            Dim3(2, 2).linearize(2, 0)

    def test_delinearize_inverse(self):
        d = Dim3(5, 4, 3)
        for linear in range(d.count):
            assert d.linearize(*d.delinearize(linear)) == linear

    def test_delinearize_bounds(self):
        with pytest.raises(ValueError):
            Dim3(2).delinearize(2)

    def test_of_coercions(self):
        assert Dim3.of(7) == Dim3(7)
        assert Dim3.of((2, 3)) == Dim3(2, 3)
        assert Dim3.of(Dim3(1, 2, 3)) == Dim3(1, 2, 3)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 16), st.integers(1, 8), st.integers(1, 4))
    def test_linearize_bijective(self, x, y, z):
        d = Dim3(x, y, z)
        seen = {d.linearize(*d.delinearize(i)) for i in range(d.count)}
        assert seen == set(range(d.count))


class TestThreadCoord:
    def test_global_tid(self):
        coord = ThreadCoord(block=2, tid_in_block=5)
        assert coord.global_tid(Dim3(64)) == 133

    def test_warp_and_lane(self):
        coord = ThreadCoord(block=0, tid_in_block=70)
        assert coord.warp_in_block() == 2
        assert coord.lane() == 6


class TestLaunchConfig:
    def test_basic_counts(self):
        launch = LaunchConfig(grid_dim=4, block_dim=256)
        assert launch.total_threads == 1024
        assert launch.warps_per_block == 8
        assert launch.total_warps == 32

    def test_partial_warp_rounding(self):
        """A 48-thread block still occupies 2 warps (G.1)."""
        launch = LaunchConfig(grid_dim=1, block_dim=48)
        assert launch.warps_per_block == 2
        assert len(launch.threads_in_warp(0)) == WARP_SIZE
        assert len(launch.threads_in_warp(1)) == 16

    def test_warp_of_thread(self):
        launch = LaunchConfig(grid_dim=2, block_dim=64)
        assert launch.warp_of_thread(0) == 0
        assert launch.warp_of_thread(32) == 1
        assert launch.warp_of_thread(64) == 2  # first thread of block 1
        assert launch.warp_of_thread(127) == 3

    def test_lane_and_block_of_thread(self):
        launch = LaunchConfig(grid_dim=2, block_dim=64)
        assert launch.lane_of_thread(33) == 1
        assert launch.block_of_thread(64) == 1

    def test_threads_in_warp_consistent(self):
        launch = LaunchConfig(grid_dim=3, block_dim=96)
        for warp in launch.iter_warps():
            for tid in launch.threads_in_warp(warp):
                assert launch.warp_of_thread(tid) == warp

    def test_warps_in_block(self):
        launch = LaunchConfig(grid_dim=2, block_dim=96)
        assert launch.warps_in_block(1) == [3, 4, 5]

    def test_block_of_warp(self):
        launch = LaunchConfig(grid_dim=2, block_dim=96)
        assert launch.block_of_warp(2) == 0
        assert launch.block_of_warp(3) == 1

    def test_out_of_range_rejected(self):
        launch = LaunchConfig(grid_dim=1, block_dim=32)
        with pytest.raises(ValueError):
            launch.warp_of_thread(32)
        with pytest.raises(ValueError):
            launch.threads_in_warp(1)
        with pytest.raises(ValueError):
            launch.warps_in_block(1)

    def test_multidimensional_dims(self):
        launch = LaunchConfig(grid_dim=(2, 2), block_dim=(16, 8))
        assert launch.num_blocks == 4
        assert launch.threads_per_block == 128
        assert launch.warps_per_block == 4

    def test_equality(self):
        assert LaunchConfig(2, 64) == LaunchConfig(2, 64)
        assert LaunchConfig(2, 64) != LaunchConfig(2, 32)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 300))
    def test_warp_partition_covers_all_threads(self, blocks, block_size):
        launch = LaunchConfig(grid_dim=blocks, block_dim=block_size)
        seen = []
        for warp in launch.iter_warps():
            seen.extend(launch.threads_in_warp(warp))
        assert sorted(seen) == list(range(launch.total_threads))


class TestBlockPlacement:
    def test_round_robin(self):
        cores = assign_blocks_to_cores(num_blocks=7, num_cores=3)
        assert cores == [[0, 3, 6], [1, 4], [2, 5]]

    def test_every_block_placed_once(self):
        cores = assign_blocks_to_cores(20, 6)
        placed = sorted(b for core in cores for b in core)
        assert placed == list(range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_blocks_to_cores(4, 0)
        with pytest.raises(ValueError):
            assign_blocks_to_cores(-1, 2)
        with pytest.raises(ValueError):
            assign_blocks_to_cores(4, 2, max_blocks_per_core=0)

    def test_resident_waves(self):
        waves = resident_waves([0, 3, 6, 9, 12], max_blocks_per_core=2)
        assert waves == [[0, 3], [6, 9], [12]]

    def test_resident_waves_validation(self):
        with pytest.raises(ValueError):
            resident_waves([1], max_blocks_per_core=0)

    def test_empty_core(self):
        cores = assign_blocks_to_cores(2, 4)
        assert cores[2] == [] and cores[3] == []
