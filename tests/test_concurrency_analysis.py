"""Tests for the interprocedural concurrency analyzer.

Covers the three layers separately: the interprocedural core (summaries,
call graph, transitive facts), the rule checks (each known-bad fixture
fires, each known-good stays silent — mirroring ``--self-test``), and the
delivery machinery around them (baseline add/expire, suppression edge
cases, SARIF output, CLI wiring).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.concurrency import (
    CONCURRENCY_RULE_IDS,
    analyze_sources,
    apply_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import collect_suppressions, lint_source
from repro.analysis.interproc import build_project
from repro.analysis.sarif import findings_to_sarif
from repro.cli import main


def _rules(findings):
    return {item.finding.rule for item in findings}


# -- interprocedural core ---------------------------------------------------


class TestInterprocCore:
    def test_summaries_and_lock_events(self):
        project = build_project({
            "app/mod.py": (
                "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._value = 0\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self._value += 1\n"
            ),
        })
        summary = project.functions["app.mod:Box.bump"]
        (event,) = summary.lock_events
        assert event.lock == "app.mod:Box._lock"
        assert event.structured
        mutates = [a for a in summary.attr_accesses if a.mode == "mutate"]
        assert mutates and mutates[0].held == ("app.mod:Box._lock",)

    def test_transitive_blocking_through_call_graph(self):
        project = build_project({
            "app/a.py": (
                "from app.b import middle\n"
                "def top():\n"
                "    middle()\n"
            ),
            "app/b.py": (
                "import time\n"
                "def middle():\n"
                "    bottom()\n"
                "def bottom():\n"
                "    time.sleep(1)\n"
            ),
        })
        blocking = project.transitive_blocking("app.a:top")
        assert blocking  # sleep two hops down is visible from the top

    def test_resolve_module_bridges_import_prefix(self):
        project = build_project({"service/backoff.py": "x = 1\n"})
        assert (project.resolve_module("repro.service.backoff")
                == "service.backoff")
        assert project.resolve_module("service.backoff") == "service.backoff"
        assert project.resolve_module("other.pkg") is None

    def test_imported_lock_identity_unifies(self):
        project = build_project({
            "app/locks.py": "import threading\nlock = threading.Lock()\n",
            "app/user.py": (
                "from app.locks import lock\n"
                "def f():\n"
                "    with lock:\n"
                "        pass\n"
            ),
        })
        (event,) = project.functions["app.user:f"].lock_events
        assert event.lock == "app.locks:lock"


# -- rule checks ------------------------------------------------------------


class TestConcurrencyRules:
    def test_every_rule_has_selftest_coverage(self):
        from repro.analysis.selftest import (
            CONCURRENCY_BAD_FIXTURES,
            CONCURRENCY_GOOD_FIXTURES,
        )

        bad = {name.split(":", 1)[0] for name in CONCURRENCY_BAD_FIXTURES}
        good = {name.split(":", 1)[0] for name in CONCURRENCY_GOOD_FIXTURES}
        assert bad == set(CONCURRENCY_RULE_IDS)
        assert good == set(CONCURRENCY_RULE_IDS)

    @pytest.mark.parametrize("name", sorted(
        __import__("repro.analysis.selftest", fromlist=["x"])
        .CONCURRENCY_BAD_FIXTURES))
    def test_bad_fixture_fires(self, name):
        from repro.analysis.selftest import CONCURRENCY_BAD_FIXTURES

        rule = name.split(":", 1)[0]
        findings = analyze_sources(CONCURRENCY_BAD_FIXTURES[name])
        assert rule in _rules(findings), f"{name} did not fire {rule}"

    @pytest.mark.parametrize("name", sorted(
        __import__("repro.analysis.selftest", fromlist=["x"])
        .CONCURRENCY_GOOD_FIXTURES))
    def test_good_fixture_silent(self, name):
        from repro.analysis.selftest import CONCURRENCY_GOOD_FIXTURES

        rule = name.split(":", 1)[0]
        findings = analyze_sources(CONCURRENCY_GOOD_FIXTURES[name])
        assert rule not in _rules(findings), f"{name} falsely fired {rule}"

    def test_condition_wait_not_blocking_under_lock(self):
        findings = analyze_sources({
            "app/q.py": (
                "import threading\n"
                "class Q:\n"
                "    def __init__(self):\n"
                "        self._cond = threading.Condition()\n"
                "    def get(self):\n"
                "        with self._cond:\n"
                "            self._cond.wait(0.1)\n"
            ),
        })
        assert "blocking-under-lock" not in _rules(findings)

    def test_finding_keys_are_line_independent(self):
        src = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def leak(self):\n"
            "        self._lock.acquire()\n"
        )
        first = analyze_sources({"app/box.py": src})
        shifted = analyze_sources({"app/box.py": "# comment\n" + src})
        assert [i.key for i in first] == [i.key for i in shifted]
        assert first[0].finding.line != shifted[0].finding.line

    def test_allow_comment_suppresses_concurrency_finding(self):
        findings = analyze_sources({
            "app/box.py": (
                "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def leak(self):\n"
                "        self._lock.acquire()  "
                "# gmap: allow(lock-discipline)\n"
            ),
        })
        assert "lock-discipline" not in _rules(findings)


# -- baseline lifecycle -----------------------------------------------------


def _leak_findings(attr="_lock"):
    return analyze_sources({
        "app/box.py": (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            f"        self.{attr} = threading.Lock()\n"
            "    def leak(self):\n"
            f"        self.{attr}.acquire()\n"
        ),
    })


class TestBaseline:
    def test_add_semantics_unbaselined_is_new(self):
        findings = _leak_findings()
        result = apply_baseline(findings, {})
        assert len(result.new) == 1
        assert result.accepted == []
        assert result.stale_keys == []

    def test_accepted_finding_not_reported(self, tmp_path):
        findings = _leak_findings()
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        baseline = load_baseline(path)
        result = apply_baseline(findings, baseline)
        assert result.new == []
        assert len(result.accepted) == 1

    def test_expire_semantics_stale_key_reported(self):
        findings = _leak_findings()
        baseline = {"lock-discipline|gone.mod:f|app.gone:lock": "old"}
        result = apply_baseline(findings, baseline)
        assert len(result.new) == 1
        assert result.stale_keys == [
            "lock-discipline|gone.mod:f|app.gone:lock"]

    def test_write_baseline_carries_reasons_and_drops_stale(self, tmp_path):
        first = _leak_findings()
        path = tmp_path / "baseline.json"
        write_baseline(first, path)
        # Document the acceptance, as a human editing the file would.
        raw = json.loads(path.read_text(encoding="utf-8"))
        raw["entries"][0]["reason"] = "deliberate: paired API"
        raw["entries"].append({"key": "lock-discipline|gone:f|x",
                               "reason": "stale"})
        path.write_text(json.dumps(raw), encoding="utf-8")
        previous = load_baseline(path)
        write_baseline(first, path, previous=previous)
        rewritten = load_baseline(path)
        key = first[0].key
        assert rewritten == {key: "deliberate: paired API"}

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema_version": 99, "entries": []}',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_checked_in_baseline_loads(self):
        baseline = load_baseline(default_baseline_path())
        assert baseline  # non-empty: every entry documents a deliberate one
        for key, reason in baseline.items():
            rule = key.split("|", 1)[0]
            assert rule in CONCURRENCY_RULE_IDS
            assert reason != "accepted"  # every acceptance has a rationale


# -- suppression edge cases -------------------------------------------------


class TestSuppressionEdgeCases:
    def test_multiline_statement_span_covered(self):
        text = (
            "value = call(\n"
            "    1,\n"
            "    2,  # gmap: allow(some-rule)\n"
            "    3,\n"
            ")\n"
        )
        suppressed = collect_suppressions(text)
        # The allow on an argument line covers the whole statement span,
        # including line 1 where findings anchor.
        for line in range(1, 6):
            assert "some-rule" in suppressed.get(line, set()), line

    def test_compound_statement_body_not_covered(self):
        text = (
            "def f():  # gmap: allow(some-rule)\n"
            "    a = 1\n"
            "    b = 2\n"
            "    c = 3\n"
        )
        suppressed = collect_suppressions(text)
        assert "some-rule" in suppressed.get(1, set())
        assert "some-rule" in suppressed.get(2, set())  # line below
        assert 4 not in suppressed  # not the whole function body

    def test_unknown_rule_name_flagged(self):
        findings = lint_source(
            "x = 1  # gmap: allow(no-such-rule)\n", "scratch.py")
        assert [f.rule for f in findings] == ["unknown-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_known_rule_names_not_flagged(self):
        findings = lint_source(
            "x = 1  # gmap: allow(unseeded-random, lock-discipline)\n",
            "scratch.py")
        assert "unknown-suppression" not in {f.rule for f in findings}

    def test_allow_in_string_literal_inert(self):
        # Docstrings and fixture strings mention allow() syntax without
        # meaning it; only real comments count.
        findings = lint_source(
            'text = "x = 1  # gmap: allow(no-such-rule)"\n', "scratch.py")
        assert "unknown-suppression" not in {f.rule for f in findings}
        suppressed = collect_suppressions(
            'text = "# gmap: allow(unseeded-random)"\n')
        assert suppressed == {}

    def test_unknown_suppression_is_itself_suppressible(self):
        findings = lint_source(
            "x = 1  # gmap: allow(no-such-rule, unknown-suppression)\n",
            "scratch.py")
        assert "unknown-suppression" not in {f.rule for f in findings}


# -- SARIF ------------------------------------------------------------------


class TestSarif:
    def test_minimal_shape_and_fingerprint(self):
        findings = [item.finding for item in _leak_findings()]
        payload = json.loads(findings_to_sarif(findings))
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "gmap-check"
        (result,) = run["results"]
        assert result["ruleId"] == "lock-discipline"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "app/box.py"
        assert location["region"]["startLine"] == 6
        fingerprint = result["partialFingerprints"]["gmapFindingKey/v1"]
        assert len(fingerprint) == 32

    def test_fingerprint_stable_across_line_shift(self):
        first = [item.finding for item in _leak_findings()]
        # Same defect, shifted — SARIF fingerprints must match so GitHub
        # tracks the finding across commits.
        sarif_a = json.loads(findings_to_sarif(first))
        shifted = analyze_sources({
            "app/box.py": (
                "# header comment\n"
                "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def leak(self):\n"
                "        self._lock.acquire()\n"
            ),
        })
        sarif_b = json.loads(findings_to_sarif(
            [item.finding for item in shifted]))
        keyfun = (lambda p: p["runs"][0]["results"][0]
                  ["partialFingerprints"]["gmapFindingKey/v1"])
        assert keyfun(sarif_a) == keyfun(sarif_b)

    def test_empty_findings_valid_sarif(self):
        payload = json.loads(findings_to_sarif([]))
        assert payload["runs"][0]["results"] == []


# -- CLI wiring -------------------------------------------------------------


_LEAK_SRC = (
    "import threading\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "    def leak(self):\n"
    "        self._lock.acquire()\n"
)


class TestCli:
    def test_concurrency_finds_leak(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(_LEAK_SRC, encoding="utf-8")
        assert main(["check", str(scratch), "--concurrency"]) == 1
        assert "lock-discipline" in capsys.readouterr().out

    def test_repo_scan_clean_against_baseline(self, capsys):
        # The acceptance gate: the checked-in baseline accepts every
        # deliberate pattern and the tree introduces nothing new.
        assert main(["check", "--lint-only", "--concurrency"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_write_and_enforce_baseline(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(_LEAK_SRC, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["check", str(scratch), "--concurrency",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["check", str(scratch), "--concurrency",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # A second defect is *new* relative to the baseline and fails.
        scratch.write_text(
            _LEAK_SRC + "    def leak2(self):\n        self._lock.acquire()\n",
            encoding="utf-8")
        assert main(["check", str(scratch), "--concurrency",
                     "--baseline", str(baseline)]) == 1

    def test_stale_baseline_keys_warn_not_fail(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text("x = 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema_version": 1, "tool": "gmap-concurrency",
            "entries": [{"key": "lock-discipline|gone:f|x",
                         "reason": "old"}],
        }), encoding="utf-8")
        assert main(["check", str(scratch), "--concurrency",
                     "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.err

    def test_no_baseline_reports_accepted_findings(self, capsys):
        # Ignoring the baseline must re-surface the documented deliberate
        # patterns — proves the clean run is baseline-driven, not blind.
        assert main(["check", "--lint-only", "--concurrency",
                     "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "lock-discipline" in out

    def test_sarif_format_end_to_end(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(_LEAK_SRC, encoding="utf-8")
        assert main(["check", str(scratch), "--concurrency",
                     "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {r["ruleId"] for r in payload["runs"][0]["results"]}
        assert "lock-discipline" in rules

    def test_write_baseline_needs_explicit_path_in_default_scope(
            self, capsys):
        # Never silently rewrite the checked-in package baseline.
        assert main(["check", "--lint-only", "--concurrency",
                     "--no-baseline", "--write-baseline"]) == 2
        assert "needs a path" in capsys.readouterr().err
