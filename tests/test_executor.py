"""Tests for the kernel execution front end (lockstep + placement)."""

from __future__ import annotations

import pytest

from repro.core.coalescing import CoalescingModel
from repro.gpu.executor import (
    WarpTrace,
    assign_warps_to_cores,
    build_warp_traces,
    collect_thread_traces,
    execute_kernel,
    lockstep_warp_trace,
)
from repro.gpu.hierarchy import LaunchConfig
from repro.gpu.instructions import pack
from repro.workloads import suite


class TestLockstepWarpTrace:
    def test_uniform_lanes_single_instruction(self):
        lanes = [[pack(0x10, 4 * lane)] for lane in range(32)]
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        assert trace.instructions == [(0x10, 1)]
        assert len(trace.transactions) == 1

    def test_instruction_order_preserved(self):
        lanes = [[pack(0x10, 0), pack(0x20, 128), pack(0x10, 256)]] * 4
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        assert [pc for pc, _ in trace.instructions] == [0x10, 0x20, 0x10]

    def test_structured_divergence_serialises(self):
        """Lanes on different paths issue as separate instructions."""
        taken = [pack(0xA, 0), pack(0xC, 512)]
        not_taken = [pack(0xB, 256), pack(0xC, 512)]
        lanes = [taken if lane % 2 == 0 else not_taken for lane in range(4)]
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        pcs = [pc for pc, _ in trace.instructions]
        # Path A (0xA) then path B (0xB), reconverging at 0xC.
        assert pcs == [0xA, 0xB, 0xC]
        reconverged = trace.instructions[2]
        assert reconverged == (0xC, 1)

    def test_unequal_length_lanes(self):
        lanes = [[pack(1, 0), pack(2, 128)], [pack(1, 4)]]
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        assert [pc for pc, _ in trace.instructions] == [1, 2]

    def test_empty_lanes(self):
        trace = lockstep_warp_trace([[], []], CoalescingModel())
        assert trace.transactions == []
        assert trace.instructions == []

    def test_store_flag_merged(self):
        lanes = [[pack(1, 0, 4, True)], [pack(1, 4, 4, False)]]
        trace = lockstep_warp_trace(lanes, CoalescingModel())
        assert trace.transactions[0][3] == 1

    def test_transaction_counts_match_instructions(self):
        kernel = suite.make("kmeans", "tiny")
        for trace in build_warp_traces(kernel)[:4]:
            assert sum(n for _, n in trace.instructions) == len(trace.transactions)


class TestBuildWarpTraces:
    def test_one_trace_per_warp(self, tiny_vectoradd):
        traces = build_warp_traces(tiny_vectoradd)
        assert len(traces) == tiny_vectoradd.launch.total_warps
        assert [t.warp_id for t in traces] == list(range(len(traces)))

    def test_blocks_annotated(self, tiny_vectoradd):
        launch = tiny_vectoradd.launch
        traces = build_warp_traces(tiny_vectoradd)
        for trace in traces:
            assert trace.block == launch.block_of_warp(trace.warp_id)

    def test_reuses_precollected_thread_traces(self, tiny_vectoradd):
        threads = collect_thread_traces(tiny_vectoradd)
        a = build_warp_traces(tiny_vectoradd, threads)
        b = build_warp_traces(tiny_vectoradd)
        assert [t.transactions for t in a] == [t.transactions for t in b]


class TestAssignment:
    def _traces(self, launch):
        return [
            WarpTrace(warp_id=w, block=launch.block_of_warp(w),
                      transactions=[pack(1, 128 * w)], instructions=[(1, 1)])
            for w in launch.iter_warps()
        ]

    def test_round_robin_blocks(self):
        launch = LaunchConfig(grid_dim=4, block_dim=64)
        assignments = assign_warps_to_cores(launch, self._traces(launch), num_cores=2)
        blocks_core0 = {t.block for wave in assignments[0].waves for t in wave}
        blocks_core1 = {t.block for wave in assignments[1].waves for t in wave}
        assert blocks_core0 == {0, 2}
        assert blocks_core1 == {1, 3}

    def test_waves_bound_residency(self):
        launch = LaunchConfig(grid_dim=6, block_dim=32)
        assignments = assign_warps_to_cores(
            launch, self._traces(launch), num_cores=2, max_blocks_per_core=2
        )
        assert len(assignments[0].waves) == 2  # 3 blocks / 2 per wave
        assert assignments[0].warp_count == 3

    def test_every_warp_assigned_once(self):
        launch = LaunchConfig(grid_dim=5, block_dim=96)
        assignments = assign_warps_to_cores(launch, self._traces(launch), 3)
        seen = [
            t.warp_id for a in assignments for wave in a.waves for t in wave
        ]
        assert sorted(seen) == list(range(launch.total_warps))

    def test_trace_count_mismatch_rejected(self):
        launch = LaunchConfig(grid_dim=2, block_dim=64)
        with pytest.raises(ValueError, match="expected"):
            assign_warps_to_cores(launch, self._traces(launch)[:-1], 2)

    def test_transaction_count_property(self):
        launch = LaunchConfig(grid_dim=2, block_dim=64)
        assignments = assign_warps_to_cores(launch, self._traces(launch), 1)
        assert assignments[0].transaction_count == launch.total_warps


class TestExecuteKernel:
    def test_end_to_end_counts(self, tiny_kmeans):
        assignments = execute_kernel(tiny_kmeans, num_cores=4)
        assert len(assignments) == 4
        total_txns = sum(a.transaction_count for a in assignments)
        traces = build_warp_traces(tiny_kmeans)
        assert total_txns == sum(len(t) for t in traces)

    def test_more_cores_than_blocks(self, tiny_kmeans):
        assignments = execute_kernel(tiny_kmeans, num_cores=15)
        active = [a for a in assignments if a.warp_count]
        assert len(active) == tiny_kmeans.launch.num_blocks
