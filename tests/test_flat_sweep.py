"""Flat sim_mode wiring: harness, sweep runner, service, verify report.

The tentpole engine's cross-validation lives in
``test_vectorized_memsim.py``; this file covers the plumbing around it —
``sim_mode="flat"`` through :func:`simulate_pair` / :func:`run_sweep` /
:class:`SweepRunner`, the one-pass multi-config report artifact and its
``gmap check`` rules, the simulate job handler's flat/sweep modes, and the
per-stage memsim circuit breaker.
"""

from __future__ import annotations

import pytest

from repro.core.backend import numpy_available
from repro.memsim.config import CacheConfig, DramConfig, SimConfig
from repro.memsim.simulator import (
    MULTI_CONFIG_FORMAT,
    MULTI_CONFIG_SCHEMA_VERSION,
    multi_config_report,
    simulate_flat_trace,
)
from repro.service.degradation import STAGE_MEMSIM, DegradationPolicy
from repro.service.handlers import execute_job
from repro.validation.harness import (
    build_pipeline,
    replay_sweep,
    resolve_sim_mode,
    run_sweep,
    simulate_pair,
)
from repro.validation.parallel import SweepRunner
from repro.workloads import suite

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(scope="module")
def pipeline():
    kernel = suite.make("kmeans", "tiny")
    return build_pipeline(kernel, num_cores=4, seed=7)


def fast_config(**overrides) -> SimConfig:
    defaults = dict(
        num_cores=4,
        l1=CacheConfig(size=16 * 1024, assoc=4, line_size=128),
        l2=CacheConfig(size=256 * 1024, assoc=8, line_size=128,
                       hit_latency=30, banks=8),
        dram=DramConfig(channels=4),
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestSimMode:
    def test_resolve_defaults_to_simt(self):
        assert resolve_sim_mode(None) == "simt"
        assert resolve_sim_mode("SIMT") == "simt"
        assert resolve_sim_mode("flat") == "flat"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_sim_mode("turbo")

    def test_flat_pair_is_fixed_order_replay(self, pipeline):
        """A flat pair must equal a direct flat-trace replay of the
        pipeline's drained assignments — no scheduling feedback."""
        config = fast_config()
        pair = simulate_pair(pipeline, config, sim_mode="flat")
        direct = simulate_flat_trace(
            pipeline.original_flat(), config, backend="python")
        assert pair.original.to_dict() == direct.to_dict()
        assert pair.config == config

    def test_flat_differs_from_simt(self, pipeline):
        """Flat replay has no latency feedback, so it is a different
        experiment from the SIMT loop — the modes must not be conflated
        (which is also why flat pairs never enter the pair cache)."""
        config = fast_config()
        flat = simulate_pair(pipeline, config, sim_mode="flat")
        simt = simulate_pair(pipeline, config, sim_mode="simt")
        assert flat.original.cycles != simt.original.cycles

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_sweep_flat_matches_replay_sweep(self, pipeline, backend):
        configs = [fast_config(), fast_config(
            l1=CacheConfig(size=32 * 1024, assoc=4, line_size=128))]
        swept = run_sweep(pipeline, configs, sim_mode="flat",
                          backend=backend)
        replayed = replay_sweep(pipeline, configs, backend=backend)
        assert [p.original.to_dict() for p in swept.pairs] == \
            [p.original.to_dict() for p in replayed.pairs]
        assert [p.proxy.to_dict() for p in swept.pairs] == \
            [p.proxy.to_dict() for p in replayed.pairs]


class TestSweepRunnerFlat:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial_flat_matches_harness(self, backend):
        kernel = suite.make("kmeans", "tiny")
        configs = [fast_config(), fast_config(
            l1=CacheConfig(size=32 * 1024, assoc=4, line_size=128))]
        swept = SweepRunner(jobs=1, use_cache=False).run(
            [kernel], configs, num_cores=4, seed=7,
            sim_mode="flat", backend=backend)
        reference = replay_sweep(
            build_pipeline(kernel, num_cores=4, seed=7), configs,
            backend="python")
        assert len(swept) == 1
        assert [p.original.to_dict() for p in swept[0].pairs] == \
            [p.original.to_dict() for p in reference.pairs]

    def test_parallel_flat_matches_serial(self):
        kernel = suite.make("vectoradd", "tiny")
        configs = [fast_config(), fast_config(
            l1=CacheConfig(size=8 * 1024, assoc=2, line_size=128))]
        serial = SweepRunner(jobs=1, use_cache=False).run(
            [kernel], configs, num_cores=4, sim_mode="flat")
        parallel = SweepRunner(jobs=2, use_cache=False).run(
            [kernel], configs, num_cores=4, sim_mode="flat")
        assert [p.original.to_dict() for p in serial[0].pairs] == \
            [p.original.to_dict() for p in parallel[0].pairs]

    def test_rejects_unknown_sim_mode(self):
        kernel = suite.make("vectoradd", "tiny")
        with pytest.raises(ValueError):
            SweepRunner(jobs=1).run(
                [kernel], [fast_config()], num_cores=4, sim_mode="warp")


class TestMultiConfigReport:
    @pytest.fixture(scope="class")
    def report(self, request):
        from repro.gpu.executor import execute_kernel, flat_drain

        kernel = suite.make("vectoradd", "tiny")
        traces = flat_drain(execute_kernel(kernel, 4))
        configs = [fast_config(), fast_config(
            l1=CacheConfig(size=32 * 1024, assoc=4, line_size=128))]
        return multi_config_report(
            traces, configs, backend="python", target="vectoradd")

    def test_shape(self, report):
        assert report["format"] == MULTI_CONFIG_FORMAT
        assert report["schema_version"] == MULTI_CONFIG_SCHEMA_VERSION
        assert report["num_configs"] == 2
        assert len(report["results"]) == 2
        for entry in report["results"]:
            assert isinstance(entry["config"], str)
            block = entry["result"]
            for level in ("l1", "l2"):
                stats = block[level]
                assert stats["hits"] + stats["misses"] == stats["accesses"]

    def test_passes_verifier(self, report):
        from repro.analysis.verify import verify_multi_config_report

        assert verify_multi_config_report(report, "<test>") == []

    def test_verifier_rules_fire(self, report):
        import copy

        from repro.analysis.verify import verify_multi_config_report

        bad = copy.deepcopy(report)
        bad["num_configs"] = 9
        bad["results"][0]["result"]["cycles"] += 1
        bad["results"][1]["result"]["l1"]["hits"] += 1
        rules = {
            f.rule for f in verify_multi_config_report(bad, "<test>")
        }
        assert {"multiconfig-count", "multiconfig-trace-mismatch",
                "multiconfig-totals"} <= rules

    def test_check_dispatches_on_format(self, report, tmp_path):
        import json

        from repro.analysis.verify import verify_profile_file

        path = tmp_path / "report.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        assert verify_profile_file(path) == []


class TestSimulateHandler:
    def _run(self, params, backend="python"):
        request = {"kind": "simulate", "params": params}
        outcome = execute_job(request, backend)
        assert outcome["ok"], outcome.get("error")
        return outcome["result"]

    def test_default_is_simt(self):
        result = self._run({"target": "vectoradd", "scale": "tiny",
                            "cores": 4})
        assert result["sim_mode"] == "simt"

    def test_flat_mode(self):
        result = self._run({"target": "vectoradd", "scale": "tiny",
                            "cores": 4, "flat": True})
        assert result["sim_mode"] == "flat"
        assert result["result"]["requests_issued"] > 0

    def test_sweep_mode_returns_report(self):
        result = self._run({"target": "vectoradd", "scale": "tiny",
                            "cores": 4, "sweep": "l1"})
        assert result["format"] == MULTI_CONFIG_FORMAT
        assert result["num_configs"] == len(result["results"]) == 6

    def test_unknown_sweep_is_invalid_request(self):
        request = {"kind": "simulate",
                   "params": {"target": "vectoradd", "scale": "tiny",
                              "sweep": "l3"}}
        outcome = execute_job(request, "python")
        assert not outcome["ok"]
        assert outcome["error_kind"] == "invalid_request"


@pytest.mark.skipif(not numpy_available(),
                    reason="DegradationPolicy(backend='numpy') needs numpy")
class TestMemsimStageBreaker:
    def test_stage_breaker_is_independent(self):
        policy = DegradationPolicy(
            backend="numpy", failure_threshold=2, cooldown=60.0,
            clock=lambda: 0.0)
        for _ in range(2):
            policy.observe_job_failure("numpy", stage=STAGE_MEMSIM)
        backend, reasons = policy.effective_backend(STAGE_MEMSIM)
        assert backend == "python"
        assert reasons == ["circuit_open:numpy:memsim"]
        # The base breaker (profile/generate jobs) is untouched.
        backend, reasons = policy.effective_backend(None)
        assert backend == "numpy"
        assert reasons == []

    def test_base_breaker_does_not_demote_memsim(self):
        policy = DegradationPolicy(
            backend="numpy", failure_threshold=2, cooldown=60.0,
            clock=lambda: 0.0)
        for _ in range(2):
            policy.observe_job_failure("numpy")
        assert policy.effective_backend(None)[0] == "python"
        assert policy.effective_backend(STAGE_MEMSIM)[0] == "numpy"

    def test_stage_success_closes_breaker(self):
        clock = {"now": 0.0}
        policy = DegradationPolicy(
            backend="numpy", failure_threshold=1, cooldown=10.0,
            clock=lambda: clock["now"])
        policy.observe_job_failure("numpy", stage=STAGE_MEMSIM)
        assert policy.effective_backend(STAGE_MEMSIM)[0] == "python"
        clock["now"] = 11.0  # cooldown over: half-open probe allowed
        assert policy.effective_backend(STAGE_MEMSIM)[0] == "numpy"
        policy.observe("numpy", [], stage=STAGE_MEMSIM)
        assert policy.effective_backend(STAGE_MEMSIM)[0] == "numpy"
