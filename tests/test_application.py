"""Tests for multi-kernel application profiling/cloning/simulation."""

from __future__ import annotations

import pytest

from repro.core.app_pipeline import (
    ApplicationProfile,
    execute_application,
    generate_application_proxy,
    profile_application,
    simulate_application,
)
from repro.gpu.application import Application
from repro.io.profile_io import load_application_profile, save_application_profile
from repro.memsim.config import PAPER_BASELINE
from repro.workloads import suite
from repro.workloads.applications import (
    make_backprop_application,
    make_srad_application,
)


@pytest.fixture(scope="module")
def srad_app():
    return make_srad_application("tiny")


@pytest.fixture(scope="module")
def srad_profile(srad_app):
    return profile_application(srad_app)


class TestApplicationContainer:
    def test_needs_kernels(self):
        with pytest.raises(ValueError):
            Application("empty", [])

    def test_sequence_protocol(self, srad_app):
        assert len(srad_app) == 2
        assert srad_app[0].name == "srad1"
        assert [k.name for k in srad_app] == ["srad1", "srad2"]

    def test_total_threads(self, srad_app):
        assert srad_app.total_threads == 2 * srad_app[0].total_threads

    def test_repr(self, srad_app):
        assert "srad1" in repr(srad_app)

    def test_kernels_share_arrays(self, srad_app):
        """srad2 reads the coeff array srad1 writes."""
        coeff_base = srad_app[0].layout.base("coeff")
        srad2_reads = {a for pc, a, *_ in srad_app[1].thread_program(0)
                       if pc == 0x350}
        assert any(abs(a - coeff_base) < 1 << 24 for a in srad2_reads)


class TestApplicationProfile:
    def test_one_profile_per_kernel(self, srad_profile):
        assert len(srad_profile) == 2
        assert srad_profile.kernel_profiles[0].name == "srad1"

    def test_total_transactions(self, srad_profile):
        assert srad_profile.total_transactions == sum(
            p.total_transactions for p in srad_profile.kernel_profiles
        )

    def test_serialisation_round_trip(self, srad_profile, tmp_path):
        path = tmp_path / "app.json.gz"
        save_application_profile(srad_profile, path)
        restored = load_application_profile(path)
        assert restored.name == "srad_app"
        assert len(restored) == 2
        assert restored.kernel_profiles[1].to_dict() == \
            srad_profile.kernel_profiles[1].to_dict()

    def test_obfuscation_consistent_across_kernels(self, srad_profile):
        """The shared coeff array must map to ONE synthetic region in both
        kernels, or inter-kernel reuse would vanish from the clone."""
        hidden = srad_profile.obfuscated()
        store = hidden.kernel_profiles[0].instructions[0x258]   # srad1 writes
        load = hidden.kernel_profiles[1].instructions[0x350]    # srad2 reads
        original_store = srad_profile.kernel_profiles[0].instructions[0x258]
        original_load = srad_profile.kernel_profiles[1].instructions[0x350]
        # Bases moved...
        assert store.base_address != original_store.base_address
        # ...but the producer-consumer relationship is intact: the load's
        # offset from the store is exactly what it was.
        assert load.base_address - store.base_address == \
            original_load.base_address - original_store.base_address
        # Statistics untouched.
        assert store.intra_stride == original_store.intra_stride

    def test_obfuscated_application_clone_keeps_reuse(self, srad_app,
                                                      srad_profile):
        """End to end: the obfuscated clone's consumer kernel still hits."""
        hidden = srad_profile.obfuscated()
        clone = simulate_application(
            generate_application_proxy(hidden, 15, seed=3), PAPER_BASELINE
        )
        k1, k2 = clone.per_kernel
        assert k2.l2.miss_rate < k1.l2.miss_rate


class TestApplicationSimulation:
    def test_inter_kernel_reuse_visible(self, srad_app):
        """srad2 hits in L2 on the coefficients srad1 just produced."""
        result = simulate_application(
            execute_application(srad_app, 15), PAPER_BASELINE
        )
        k1, k2 = result.per_kernel
        assert k2.l2.miss_rate < k1.l2.miss_rate

    def test_clone_preserves_inter_kernel_reuse(self, srad_app, srad_profile):
        original = simulate_application(
            execute_application(srad_app, 15), PAPER_BASELINE
        )
        clone = simulate_application(
            generate_application_proxy(srad_profile, 15, seed=42),
            PAPER_BASELINE,
        )
        for orig_k, clone_k in zip(original.per_kernel, clone.per_kernel):
            assert abs(orig_k.l2.miss_rate - clone_k.l2.miss_rate) < 0.05

    def test_combined_aggregates(self, srad_app):
        result = simulate_application(
            execute_application(srad_app, 15), PAPER_BASELINE
        )
        assert result.combined.requests_issued == sum(
            k.requests_issued for k in result.per_kernel
        )
        assert result.combined.l1.accesses == sum(
            k.l1.accesses for k in result.per_kernel
        )

    def test_backprop_application_clones(self):
        app = make_backprop_application("tiny")
        profile = profile_application(app)
        original = simulate_application(
            execute_application(app, 15), PAPER_BASELINE
        )
        clone = simulate_application(
            generate_application_proxy(profile, 15, seed=42), PAPER_BASELINE
        )
        err = abs(original.combined.l1.miss_rate - clone.combined.l1.miss_rate)
        assert err < 0.05
        assert original.per_kernel[0].barriers_crossed == \
            clone.per_kernel[0].barriers_crossed

    def test_miniaturized_application(self, srad_profile):
        full = generate_application_proxy(srad_profile, 15, seed=1)
        small = generate_application_proxy(
            srad_profile, 15, seed=1, scale_factor=4.0
        )
        full_txns = sum(a.transaction_count for k in full for a in k)
        small_txns = sum(a.transaction_count for k in small for a in k)
        assert small_txns < full_txns / 3

    def test_fresh_state_when_simulated_separately(self, srad_app):
        """Kernel 2 alone (cold hierarchy) misses more than in sequence."""
        assignments = execute_application(srad_app, 15)
        seq = simulate_application(assignments, PAPER_BASELINE)
        assignments = execute_application(srad_app, 15)
        alone = simulate_application(assignments[1:], PAPER_BASELINE)
        assert alone.per_kernel[0].l2.miss_rate > \
            seq.per_kernel[1].l2.miss_rate