"""Tests for the stride and stream prefetchers."""

from __future__ import annotations

import pytest

from repro.memsim.config import PrefetcherConfig
from repro.memsim.prefetcher import StreamPrefetcher, StridePrefetcher, make_prefetcher


class TestPrefetcherConfig:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            PrefetcherConfig(kind="markov")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PrefetcherConfig(kind="stride", degree=0)
        with pytest.raises(ValueError):
            PrefetcherConfig(kind="stream", stream_window=0)
        with pytest.raises(ValueError):
            PrefetcherConfig(kind="stride", table_size=0)

    def test_factory(self):
        assert isinstance(
            make_prefetcher(PrefetcherConfig(kind="stride"), 128), StridePrefetcher
        )
        assert isinstance(
            make_prefetcher(PrefetcherConfig(kind="stream"), 128), StreamPrefetcher
        )

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StridePrefetcher(PrefetcherConfig(kind="stream"), 128)
        with pytest.raises(ValueError):
            StreamPrefetcher(PrefetcherConfig(kind="stride"), 128)


class TestStridePrefetcher:
    def _pf(self, degree=2, table_size=64, train_on_miss_only=False):
        config = PrefetcherConfig(kind="stride", degree=degree,
                                  table_size=table_size,
                                  train_on_miss_only=train_on_miss_only)
        return StridePrefetcher(config, line_size=128)

    def test_needs_two_confirmations(self):
        pf = self._pf()
        assert pf.observe(0x10, 0, hit=False) == []
        assert pf.observe(0x10, 128, hit=False) == []  # stride learned
        out = pf.observe(0x10, 256, hit=False)         # confirmed
        assert out

    def test_prefetch_addresses_follow_stride(self):
        pf = self._pf(degree=3)
        for address in (0, 128, 256):
            out = pf.observe(0x10, address, hit=False)
        assert out == [384, 512, 640]

    def test_line_granularity_dedupe(self):
        """Sub-line strides still yield distinct line prefetches only."""
        pf = self._pf(degree=4)
        for address in (0, 32, 64):
            out = pf.observe(0x10, address, hit=False)
        assert out == sorted(set(out))
        assert all(a % 128 == 0 for a in out)

    def test_stride_change_resets_confidence(self):
        pf = self._pf()
        pf.observe(1, 0, False)
        pf.observe(1, 128, False)
        pf.observe(1, 256, False)
        assert pf.observe(1, 8192, False) == []  # new stride, confidence 1

    def test_zero_stride_ignored(self):
        pf = self._pf()
        pf.observe(1, 64, False)
        assert pf.observe(1, 64, False) == []
        assert pf.observe(1, 64, False) == []

    def test_negative_stride(self):
        pf = self._pf(degree=1)
        for address in (4096, 3968, 3840):
            out = pf.observe(1, address, False)
        assert out == [3712]

    def test_per_pc_isolation(self):
        """Interleaved PCs with different strides both train (many-thread
        aware PC indexing, after Lee et al. [12])."""
        pf = self._pf(degree=1)
        seq = [(1, 0), (2, 10_000), (1, 128), (2, 12_048), (1, 256), (2, 14_096)]
        outs = {}
        for pc, address in seq:
            outs[pc] = pf.observe(pc, address, False)
        assert outs[1] == [384]
        assert outs[2] == [(14_096 + 2048) // 128 * 128]

    def test_table_eviction_fifo(self):
        pf = self._pf(table_size=2)
        pf.observe(1, 0, False)
        pf.observe(2, 0, False)
        pf.observe(3, 0, False)  # evicts PC 1
        assert pf.observe(1, 128, False) == []  # PC 1 retrains from scratch

    def test_train_on_miss_only(self):
        pf = self._pf(train_on_miss_only=True)
        for address in (0, 128, 256, 384):
            out = pf.observe(1, address, hit=True)
        assert out == []


class TestStreamPrefetcher:
    def _pf(self, degree=2, window=8, table_size=4):
        config = PrefetcherConfig(kind="stream", degree=degree,
                                  stream_window=window, table_size=table_size)
        return StreamPrefetcher(config, line_size=128)

    def test_second_nearby_miss_confirms_stream(self):
        pf = self._pf(degree=2)
        assert pf.observe(0, hit=False) == []
        out = pf.observe(256, hit=False)  # +2 lines, within window
        assert out == [3 * 128, 4 * 128]

    def test_descending_stream(self):
        pf = self._pf(degree=2)
        pf.observe(10 * 128, False)
        out = pf.observe(8 * 128, False)
        assert out == [7 * 128, 6 * 128]

    def test_outside_window_allocates_new_stream(self):
        pf = self._pf(window=4)
        pf.observe(0, False)
        assert pf.observe(100 * 128, False) == []  # too far: new stream

    def test_same_line_ignored(self):
        pf = self._pf()
        pf.observe(0, False)
        assert pf.observe(64, False) == []  # same 128B line

    def test_stream_table_bounded(self):
        pf = self._pf(table_size=2)
        for k in range(10):
            pf.observe(k * 128 * 1000, False)
        assert len(pf._streams) <= 2

    def test_window_sweep_parameters(self):
        """Windows 8/16/32 (Figure 6d) gate how far a stream can jump."""
        near_miss = 12 * 128
        small = self._pf(window=8)
        small.observe(0, False)
        assert small.observe(near_miss, False) == []
        large = self._pf(window=16)
        large.observe(0, False)
        assert large.observe(near_miss, False) != []
