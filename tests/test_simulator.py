"""Tests for the SIMT-aware simulation loop."""

from __future__ import annotations

import pytest

from repro.gpu.executor import CoreAssignment, WarpTrace, execute_kernel
from repro.gpu.instructions import pack
from repro.memsim.simulator import SimtSimulator, simulate, simulate_flat_trace
from repro.workloads import suite


def warp(wid, block, addresses, pc=0x10):
    return WarpTrace(
        warp_id=wid, block=block,
        transactions=[(pc, a, 128, 0) for a in addresses],
        instructions=[(pc, 1) for _ in addresses],
    )


def one_core(*warps) -> list:
    return [CoreAssignment(core_id=0, waves=[list(warps)])]


class TestBasicRuns:
    def test_all_requests_issue(self, small_config):
        assignment = one_core(
            warp(0, 0, [0, 128, 256]), warp(1, 0, [4096, 4224])
        )
        result = SimtSimulator(small_config).run(assignment)
        assert result.requests_issued == 5
        assert result.l1.accesses == 5

    def test_empty_assignment(self, small_config):
        result = SimtSimulator(small_config).run(
            [CoreAssignment(core_id=0, waves=[])]
        )
        assert result.requests_issued == 0
        assert result.cycles == 0.0

    def test_empty_warps_skipped(self, small_config):
        assignment = one_core(warp(0, 0, []), warp(1, 0, [0]))
        result = SimtSimulator(small_config).run(assignment)
        assert result.requests_issued == 1

    def test_max_requests_bound(self, small_config):
        assignment = one_core(warp(0, 0, [128 * i for i in range(100)]))
        result = SimtSimulator(small_config).run(assignment, max_requests=10)
        assert result.requests_issued == 10

    def test_waves_run_in_order(self, small_config):
        assignments = [CoreAssignment(core_id=0, waves=[
            [warp(0, 0, [0])], [warp(1, 2, [128])],
        ])]
        result = SimtSimulator(small_config).run(assignments)
        assert result.requests_issued == 2

    def test_cycles_advance(self, small_config):
        assignment = one_core(warp(0, 0, [i * 128 for i in range(10)]))
        result = SimtSimulator(small_config).run(assignment)
        assert result.cycles > 10

    def test_per_core_l1_stats_exposed(self, small_config):
        assignment = [
            CoreAssignment(core_id=0, waves=[[warp(0, 0, [0])]]),
            CoreAssignment(core_id=1, waves=[[warp(1, 1, [128])]]),
        ]
        result = SimtSimulator(small_config).run(assignment)
        assert len(result.per_core_l1) == small_config.num_cores
        assert result.per_core_l1[0].accesses == 1
        assert result.per_core_l1[1].accesses == 1


class TestLatencyFeedback:
    def test_missing_warp_is_delayed(self, small_config):
        """A warp's memory latency lets other warps run ahead (section 4.5)."""
        # Warp 0 misses everywhere (distinct lines); warp 1 replays one line.
        w0 = warp(0, 0, [1 << 20, 2 << 20, 3 << 20])
        w1 = warp(1, 0, [0, 0, 0])
        result = SimtSimulator(small_config).run(one_core(w0, w1))
        assert result.requests_issued == 6
        # Warp 1's replays hit after its first access.
        assert result.l1.hits >= 2

    def test_gto_has_higher_p_self_than_lrr(self, small_config):
        """GTO sticks to a warp while it keeps hitting; LRR rotates.

        Only hit-heavy workloads expose the difference: in the paper's
        model a missing warp is delayed past its next issue slot under
        *any* policy, so a 100%-miss stream schedules identically.
        """
        kernel = suite.make("aes", "tiny")  # ~3% L1 miss rate
        assignments = execute_kernel(kernel, small_config.num_cores)
        lrr = SimtSimulator(small_config.with_(scheduler="lrr")).run(assignments)
        assignments = execute_kernel(kernel, small_config.num_cores)
        gto = SimtSimulator(small_config.with_(scheduler="gto")).run(assignments)
        assert gto.measured_p_self > 0.5 > lrr.measured_p_self

    def test_schedpself_tracks_target(self, small_config):
        kernel = suite.make("aes", "tiny")
        assignments = execute_kernel(kernel, small_config.num_cores)
        config = small_config.with_(scheduler="schedpself", sched_p_self=0.9)
        result = SimtSimulator(config).run(assignments)
        assert result.measured_p_self > 0.5


class TestSharedMemorySystem:
    def test_cores_share_l2(self, small_config):
        assignments = [
            CoreAssignment(core_id=0, waves=[[warp(0, 0, [0x8000])]]),
            CoreAssignment(core_id=1, waves=[[warp(1, 1, [0x8000])]]),
        ]
        result = SimtSimulator(small_config).run(assignments)
        assert result.l2.accesses >= 2
        assert result.l2.hits >= 1 or result.l2.mshr_merges >= 1

    def test_dram_stats_populated(self, small_config, tiny_vectoradd):
        assignments = execute_kernel(tiny_vectoradd, small_config.num_cores)
        result = SimtSimulator(small_config).run(assignments)
        assert result.dram.requests > 0
        assert 0.0 <= result.dram.row_buffer_locality <= 1.0


class TestConvenienceWrappers:
    def test_simulate_equivalent_to_simulator(self, small_config, tiny_vectoradd):
        assignments = execute_kernel(tiny_vectoradd, small_config.num_cores)
        a = simulate(assignments, small_config)
        assignments = execute_kernel(tiny_vectoradd, small_config.num_cores)
        b = SimtSimulator(small_config).run(assignments)
        assert a.l1.miss_rate == pytest.approx(b.l1.miss_rate)

    def test_flat_trace_simulation(self, small_config):
        per_core = [
            [pack(1, 0), pack(1, 0), pack(1, 128)],
            [pack(2, 1 << 20)],
        ]
        result = simulate_flat_trace(per_core, small_config)
        assert result.requests_issued == 4
        assert result.l1.hits == 1

    def test_flat_trace_empty(self, small_config):
        result = simulate_flat_trace([[], []], small_config)
        assert result.requests_issued == 0


class TestResultMetrics:
    def test_metric_lookup(self, small_config, tiny_vectoradd):
        assignments = execute_kernel(tiny_vectoradd, small_config.num_cores)
        result = simulate(assignments, small_config)
        assert result.metric("l1_miss_rate") == result.l1.miss_rate
        assert result.metric("dram_rbl") == result.dram.row_buffer_locality
        with pytest.raises(ValueError, match="unknown metric"):
            result.metric("ipc")

    def test_to_dict(self, small_config, tiny_vectoradd):
        assignments = execute_kernel(tiny_vectoradd, small_config.num_cores)
        result = simulate(assignments, small_config)
        d = result.to_dict()
        assert d["l1"]["accesses"] == result.l1.accesses
        assert "row_buffer_locality" in d["dram"]
