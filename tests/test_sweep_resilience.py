"""Resilience guarantees of the sweep engine, driven by fault injection.

Every recovery path is exercised deterministically — no sleeps-and-hope:

* checkpoint/resume: a journaled run resumed after an interruption skips
  completed chunks and reassembles results bit-identical to an
  uninterrupted run;
* failure isolation: worker crashes and hangs are retried against a fresh
  pool, and a chunk that exhausts its retries is quarantined as a
  structured :class:`ChunkFailure` instead of aborting the sweep;
* integrity: a corrupted journal entry is moved to ``quarantine/`` and the
  chunk recomputed from source.

Pool-based tests stay tiny (one benchmark, three single-config chunks) so
the suite remains fast on small machines.
"""

from __future__ import annotations

import gzip
import os

import pytest

from repro.validation import sweeps
from repro.validation.parallel import SweepRunner, _run_chunk, _SweepChunk
from repro.validation.resilience import (
    ENV_FAULT_INJECT,
    ENV_FAULT_STATE,
    FAILURE_SIMULATION_ERROR,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    ChunkExecutionError,
    ChunkFailure,
    JournalMismatchError,
    RunJournal,
    derive_run_id,
    parse_fault_spec,
    summarize_failures,
)
from repro.workloads import suite
from tests.test_perf_determinism import assert_results_identical

CONFIGS = sweeps.l1_sweep(reduced=True, keep=3)
WATCHDOG = 8.0  # a healthy single-config chunk finishes in well under 1s


def _kernels():
    return [suite.make("vectoradd", "tiny")]


def assert_sweeps_identical(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.benchmark == e.benchmark
        assert not g.failures
        assert len(g.pairs) == len(e.pairs)
        for gp, ep in zip(g.pairs, e.pairs):
            assert gp.config == ep.config
            assert_results_identical(gp.original, ep.original)
            assert_results_identical(gp.proxy, ep.proxy)


@pytest.fixture(scope="module")
def reference():
    """An uninterrupted, journal-free serial run: the ground truth."""
    return SweepRunner(jobs=1).run(_kernels(), CONFIGS, num_cores=4)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(ENV_FAULT_INJECT, raising=False)
    monkeypatch.delenv(ENV_FAULT_STATE, raising=False)


class TestFaultSpec:
    def test_parse_full(self):
        spec = parse_fault_spec("hang:1:4:always:2.5")
        assert spec.kind == "hang"
        assert spec.kernel_index == 1
        assert spec.config_offset == 4
        assert spec.always
        assert spec.hang_seconds == 2.5
        assert spec.matches(1, 4) and not spec.matches(1, 5)

    def test_parse_empty_and_bad(self):
        assert parse_fault_spec(None) is None
        assert parse_fault_spec("") is None
        with pytest.raises(ValueError):
            parse_fault_spec("crash:0")
        with pytest.raises(ValueError):
            parse_fault_spec("explode:0:0")


class TestRunJournal:
    def test_manifest_round_trip_and_mismatch(self, tmp_path):
        journal = RunJournal("abc123", tmp_path)
        manifest = {"seed": 1, "configs": ["x", "y"], "chunk_size": 2}
        journal.ensure_manifest(manifest, resume=False)
        stored = journal.load_manifest()
        assert stored["seed"] == 1
        # Resuming with a different chunk size is fine (layout detail) ...
        effective = journal.ensure_manifest(dict(manifest, chunk_size=1),
                                            resume=True)
        assert effective["chunk_size"] == 2
        # ... but different inputs are not.
        with pytest.raises(JournalMismatchError):
            journal.ensure_manifest(dict(manifest, seed=2), resume=True)

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(JournalMismatchError):
            RunJournal("nothere", tmp_path).ensure_manifest(
                {"seed": 1}, resume=True)

    def test_chunk_round_trip(self, tmp_path):
        journal = RunJournal("abc123", tmp_path)
        entries = [{"config": "f0", "original": {"v": 1}, "proxy": {"v": 2}}]
        journal.record_chunk(0, 0, "vectoradd", entries)
        assert journal.load_chunk(0, 0, ["f0"]) == entries

    def test_corrupt_entry_quarantined(self, tmp_path):
        journal = RunJournal("abc123", tmp_path)
        entries = [{"config": "f0", "original": {}, "proxy": {}}]
        path = journal.record_chunk(0, 0, "vectoradd", entries)
        path.write_bytes(b"\x00not-gzip\x00")
        assert journal.load_chunk(0, 0, ["f0"]) is None
        assert journal.quarantined == 1
        assert list((journal.root / "quarantine").iterdir())

    def test_tampered_payload_quarantined(self, tmp_path):
        journal = RunJournal("abc123", tmp_path)
        path = journal.record_chunk(
            0, 0, "vectoradd",
            [{"config": "f0", "original": {"v": 1}, "proxy": {}}])
        payload = gzip.decompress(path.read_bytes())
        path.write_bytes(gzip.compress(payload.replace(b'"v": 1', b'"v": 9')))
        assert journal.load_chunk(0, 0, ["f0"]) is None
        assert journal.quarantined == 1

    def test_wrong_configs_quarantined(self, tmp_path):
        journal = RunJournal("abc123", tmp_path)
        journal.record_chunk(
            0, 0, "vectoradd",
            [{"config": "f0", "original": {}, "proxy": {}}])
        assert journal.load_chunk(0, 0, ["OTHER"]) is None
        assert journal.quarantined == 1

    def test_derive_run_id_ignores_chunk_size(self):
        base = {"seed": 1, "configs": ["a"], "chunk_size": 4}
        assert derive_run_id(base) == derive_run_id(dict(base, chunk_size=1))
        assert derive_run_id(base) != derive_run_id(dict(base, seed=2))


class TestCheckpointResume:
    def _journaled(self, tmp_path, **kwargs):
        return SweepRunner(jobs=1, chunk_size=1, journal=True,
                           journal_dir=tmp_path, **kwargs)

    def test_resume_skips_completed_chunks(self, tmp_path, reference):
        first = self._journaled(tmp_path)
        results = first.run(_kernels(), CONFIGS, num_cores=4)
        assert_sweeps_identical(results, reference)
        journal = RunJournal(first.last_run_id, tmp_path)
        assert len(journal.completed_chunks()) == len(CONFIGS)

        executed = []
        resumed = self._journaled(
            tmp_path, resume=True, run_id=first.last_run_id,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert executed == []  # nothing re-simulated
        assert_sweeps_identical(resumed, reference)

    def test_partial_journal_recomputes_only_missing(self, tmp_path,
                                                     reference):
        first = self._journaled(tmp_path)
        first.run(_kernels(), CONFIGS, num_cores=4)
        journal = RunJournal(first.last_run_id, tmp_path)
        journal.entry_path(0, 1).unlink()  # simulate a crash mid-campaign

        executed = []
        resumed = self._journaled(
            tmp_path, resume=True, run_id=first.last_run_id,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert [(c.kernel_index, c.config_offset) for c in executed] == [(0, 1)]
        assert_sweeps_identical(resumed, reference)

    def test_corrupted_entry_quarantined_and_rebuilt(self, tmp_path,
                                                     reference):
        first = self._journaled(tmp_path)
        first.run(_kernels(), CONFIGS, num_cores=4)
        journal = RunJournal(first.last_run_id, tmp_path)
        journal.entry_path(0, 2).write_bytes(b"garbage")

        executed = []
        resumed = self._journaled(
            tmp_path, resume=True, run_id=first.last_run_id,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert [(c.kernel_index, c.config_offset) for c in executed] == [(0, 2)]
        assert_sweeps_identical(resumed, reference)
        assert list((journal.root / "quarantine").iterdir())

    def test_resume_with_different_seed_raises(self, tmp_path):
        first = self._journaled(tmp_path)
        first.run(_kernels(), CONFIGS, num_cores=4, seed=1234)
        with pytest.raises(JournalMismatchError, match="seed"):
            self._journaled(
                tmp_path, resume=True, run_id=first.last_run_id,
            ).run(_kernels(), CONFIGS, num_cores=4, seed=999)

    def test_resume_adopts_recorded_chunk_size(self, tmp_path, reference):
        first = self._journaled(tmp_path)  # chunk_size=1 -> 3 entries
        first.run(_kernels(), CONFIGS, num_cores=4)
        # A resume with default chunking (one chunk per benchmark) must
        # still line up with the recorded single-config entries.
        executed = []
        resumed = SweepRunner(
            jobs=1, journal=True, journal_dir=tmp_path,
            run_id=first.last_run_id, resume=True,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert executed == []
        assert_sweeps_identical(resumed, reference)

    def test_injected_corruption_fault(self, tmp_path, monkeypatch,
                                       reference):
        """The ``corrupt`` fault poisons one entry; resume heals it."""
        monkeypatch.setenv(ENV_FAULT_INJECT, "corrupt:0:1:always")
        first = self._journaled(tmp_path)
        first.run(_kernels(), CONFIGS, num_cores=4)
        monkeypatch.delenv(ENV_FAULT_INJECT)

        executed = []
        resumed = self._journaled(
            tmp_path, resume=True, run_id=first.last_run_id,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert [(c.kernel_index, c.config_offset) for c in executed] == [(0, 1)]
        assert_sweeps_identical(resumed, reference)


class TestSerialRetries:
    def test_flaky_chunk_recovers(self, reference):
        seen = set()

        def flaky(chunk):
            key = (chunk.kernel_index, chunk.config_offset)
            if key not in seen:
                seen.add(key)
                raise RuntimeError("transient failure")

        results = SweepRunner(
            jobs=1, chunk_size=1, retries=2, retry_backoff=0.0,
            fault_injector=flaky,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert_sweeps_identical(results, reference)

    def test_exhausted_retries_quarantine(self):
        def always_fail(chunk):
            raise RuntimeError("permanent failure")

        results = SweepRunner(
            jobs=1, retries=1, retry_backoff=0.0, fault_injector=always_fail,
        ).run(_kernels(), CONFIGS, num_cores=4)
        (sweep,) = results
        assert sweep.pairs == []
        assert sweep.is_partial
        (failure,) = sweep.failures
        assert failure.kind == FAILURE_SIMULATION_ERROR
        assert failure.attempts == 2  # first try + one retry
        assert failure.benchmark == "vectoradd"
        assert "permanent failure" in failure.message

    def test_partial_report_surfaces_failures(self):
        def always_fail(chunk):
            raise RuntimeError("permanent failure")

        report = SweepRunner(
            jobs=1, retries=0, retry_backoff=0.0, fault_injector=always_fail,
        ).run_experiment(_kernels(), CONFIGS, "l1_miss_rate", num_cores=4)
        assert report.is_partial
        assert report.failures[0].kind == FAILURE_SIMULATION_ERROR
        assert "simulation_error=1" in summarize_failures(report.failures)

    def test_chunk_failure_round_trips(self):
        failure = ChunkFailure(
            benchmark="kmeans", kernel_index=1, config_offset=4,
            num_configs=2, kind=FAILURE_TIMEOUT, message="deadline",
            attempts=3, seed=1234,
        )
        assert ChunkFailure.from_dict(failure.to_dict()) == failure
        assert "kmeans" in failure.summary()
        assert "timeout" in failure.summary()

    def test_worker_error_carries_chunk_context(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:0:0:always")
        chunk = _SweepChunk(
            run_token="t", kernel_index=0, config_offset=0,
            kernel=_kernels()[0], configs=tuple(CONFIGS[:1]), seed=77,
            num_cores=4, max_blocks_per_core=8, scale_factor=1.0,
            stride_model="iid", track_scheduling=True,
            use_cache=False, cache_dir=None,
        )
        with pytest.raises(ChunkExecutionError) as excinfo:
            _run_chunk(chunk)
        err = excinfo.value
        assert err.benchmark == "vectoradd"
        assert err.config_offset == 0
        assert err.seed == 77
        for fragment in ("vectoradd", "config_offset=0", "seed=77"):
            assert fragment in str(err)

    def test_chunk_execution_error_pickles(self):
        import pickle

        err = ChunkExecutionError("bm", 1, 2, 3, "boom",
                                  failure_kind=FAILURE_TIMEOUT)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.benchmark == "bm"
        assert clone.failure_kind == FAILURE_TIMEOUT
        assert str(clone) == str(err)


class TestPoolFaults:
    """jobs=2 with three single-config chunks: real processes, real faults."""

    def _runner(self, **kwargs):
        kwargs.setdefault("retry_backoff", 0.0)
        return SweepRunner(jobs=2, chunk_size=1, **kwargs)

    def test_worker_crash_retried(self, tmp_path, monkeypatch, reference):
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash:0:0:once")
        monkeypatch.setenv(ENV_FAULT_STATE, str(tmp_path / "fired"))
        results = self._runner(retries=2).run(
            _kernels(), CONFIGS, num_cores=4)
        assert_sweeps_identical(results, reference)

    def test_worker_crash_quarantined_without_retries(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash:0:0:always")
        (sweep,) = self._runner(retries=0).run(
            _kernels(), CONFIGS, num_cores=4)
        assert sweep.is_partial
        (failure,) = sweep.failures
        assert failure.kind == FAILURE_WORKER_CRASH
        assert failure.config_offset == 0
        # The other two chunks completed despite the crashing neighbour.
        assert [p.config for p in sweep.pairs] == list(CONFIGS[1:])

    def test_hang_timeout_then_retry(self, tmp_path, monkeypatch, reference):
        monkeypatch.setenv(ENV_FAULT_INJECT, "hang:0:0:once:600")
        monkeypatch.setenv(ENV_FAULT_STATE, str(tmp_path / "fired"))
        results = self._runner(retries=2, timeout=WATCHDOG).run(
            _kernels(), CONFIGS, num_cores=4)
        assert_sweeps_identical(results, reference)

    def test_hang_quarantined_as_timeout(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "hang:0:0:always:600")
        (sweep,) = self._runner(retries=0, timeout=WATCHDOG).run(
            _kernels(), CONFIGS, num_cores=4)
        assert sweep.is_partial
        (failure,) = sweep.failures
        assert failure.kind == FAILURE_TIMEOUT
        assert [p.config for p in sweep.pairs] == list(CONFIGS[1:])

    def test_crash_then_resume_bit_identical(self, tmp_path, monkeypatch,
                                             reference):
        """The acceptance path: kill mid-campaign, resume, same bits."""
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash:0:0:always")
        first = self._runner(retries=0, journal=True,
                             journal_dir=tmp_path / "journal")
        (partial,) = first.run(_kernels(), CONFIGS, num_cores=4)
        assert partial.is_partial
        assert partial.failures[0].kind == FAILURE_WORKER_CRASH
        journal = RunJournal(first.last_run_id, tmp_path / "journal")
        assert len(journal.completed_chunks()) == len(CONFIGS) - 1

        monkeypatch.delenv(ENV_FAULT_INJECT)  # the "fixed fleet"
        executed = []
        resumed = SweepRunner(
            jobs=1, journal=True, journal_dir=tmp_path / "journal",
            run_id=first.last_run_id, resume=True,
            fault_injector=executed.append,
        ).run(_kernels(), CONFIGS, num_cores=4)
        assert [(c.kernel_index, c.config_offset) for c in executed] == [(0, 0)]
        assert_sweeps_identical(resumed, reference)


class TestCliPartial:
    def test_validate_exits_nonzero_and_prints_partial(
            self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:0:0:always")
        code = main([
            "validate", "fig6a", "--benchmarks", "vectoradd",
            "--scale", "tiny", "--retries", "0",
            "--no-cache", "--no-journal",
        ])
        out = capsys.readouterr().out
        assert code == 3
        assert "PARTIAL" in out
        assert "simulation_error" in out

    def test_no_journal_with_resume_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["validate", "fig6a", "--no-journal", "--resume"])


class TestJournalLock:
    """Single-writer locking: concurrent ``--resume`` runs fail fast."""

    def test_acquire_release_and_reacquire(self, tmp_path):
        journal = RunJournal("lock1", tmp_path)
        journal.acquire_lock()
        assert journal.lock_path.exists()
        journal.acquire_lock()  # same holder: no-op
        journal.release_lock()
        journal.release_lock()  # idempotent

    def test_second_holder_fails_fast(self, tmp_path):
        from repro.validation.resilience import JournalLockedError

        first = RunJournal("lock2", tmp_path)
        first.acquire_lock()
        try:
            with pytest.raises(JournalLockedError, match="locked"):
                RunJournal("lock2", tmp_path).acquire_lock()
        finally:
            first.release_lock()
        RunJournal("lock2", tmp_path).acquire_lock()  # free again

    def test_different_run_ids_do_not_contend(self, tmp_path):
        a = RunJournal("lock3a", tmp_path)
        b = RunJournal("lock3b", tmp_path)
        a.acquire_lock()
        b.acquire_lock()
        a.release_lock()
        b.release_lock()

    def test_lock_released_when_holder_process_dies(self, tmp_path):
        """flock is kernel-held: a dead holder never wedges the journal."""
        import subprocess
        import sys

        script = (
            "from repro.validation.resilience import RunJournal\n"
            f"j = RunJournal('lock4', {str(tmp_path)!r})\n"
            "j.acquire_lock()\n"
            "import os; os._exit(0)\n"  # die without release_lock()
        )
        subprocess.run([sys.executable, "-c", script], check=True,
                       env=dict(os.environ, PYTHONPATH="src"),
                       cwd=os.path.dirname(os.path.dirname(__file__)) or ".")
        RunJournal("lock4", tmp_path).acquire_lock()  # not wedged

    def test_journaled_sweep_refuses_locked_journal(self, tmp_path):
        """The user-facing guarantee: a second ``--resume`` of a live run
        exits with a typed error instead of corrupting the journal."""
        from repro.validation.resilience import JournalLockedError

        runner = SweepRunner(jobs=1, chunk_size=1, journal=True,
                             journal_dir=tmp_path, run_id="live")
        holder = RunJournal("live", tmp_path)
        holder.acquire_lock()
        try:
            with pytest.raises(JournalLockedError):
                runner.run(_kernels(), CONFIGS, num_cores=4)
        finally:
            holder.release_lock()
        # The journal was not disturbed: the run now proceeds normally.
        results = runner.run(_kernels(), CONFIGS, num_cores=4)
        assert not results[0].failures

    def test_sweep_releases_lock_after_run(self, tmp_path):
        runner = SweepRunner(jobs=1, chunk_size=1, journal=True,
                             journal_dir=tmp_path, run_id="released")
        runner.run(_kernels(), CONFIGS, num_cores=4)
        follower = RunJournal("released", tmp_path)
        follower.acquire_lock()  # released cleanly: no contention
        follower.release_lock()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
class TestJournalLockForkSafety:
    """Regression: a forked child inheriting the journal lock fd kept the
    flock alive after the parent died, wedging every later ``--resume``
    until the child also exited.  The ``os.register_at_fork`` hook closes
    inherited lock fds in the child, restoring kernel release-on-death."""

    def test_child_closes_inherited_lock_fd(self, tmp_path):
        from repro.validation import resilience

        journal = RunJournal("forklock", tmp_path)
        journal.acquire_lock()
        fd = journal._lock_fd
        assert fd is not None
        assert fd in resilience._LIVE_LOCK_FDS
        read_end, write_end = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: report whether the hook closed the lock fd
            os.close(read_end)
            try:
                os.fstat(fd)
                os.write(write_end, b"open")
            except OSError:
                os.write(write_end, b"closed")
            finally:
                os.close(write_end)
                os._exit(0)
        os.close(write_end)
        try:
            verdict = os.read(read_end, 16)
            _, status = os.waitpid(pid, 0)
        finally:
            os.close(read_end)
            journal.release_lock()
        assert status == 0
        assert verdict == b"closed"

    def test_release_unregisters_fd(self, tmp_path):
        from repro.validation import resilience

        journal = RunJournal("forklock2", tmp_path)
        journal.acquire_lock()
        fd = journal._lock_fd
        journal.release_lock()
        assert fd not in resilience._LIVE_LOCK_FDS
        # A later fork must not try to close the now-recycled fd number.
        RunJournal("forklock2", tmp_path).acquire_lock()
