"""Tests for profile and trace serialisation."""

from __future__ import annotations

import pytest

from repro.core.profiler import GmapProfiler
from repro.gpu.executor import WarpTrace, build_warp_traces
from repro.io.profile_io import load_profile, save_profile
from repro.io.trace_io import load_warp_traces, save_warp_traces


class TestProfileIO:
    def test_json_round_trip(self, kmeans_profile, tmp_path):
        path = tmp_path / "kmeans.json"
        save_profile(kmeans_profile, path)
        restored = load_profile(path)
        assert restored.name == kmeans_profile.name
        assert restored.to_dict() == kmeans_profile.to_dict()

    def test_gzip_round_trip(self, kmeans_profile, tmp_path):
        path = tmp_path / "kmeans.json.gz"
        save_profile(kmeans_profile, path)
        assert load_profile(path).to_dict() == kmeans_profile.to_dict()

    def test_gzip_is_smaller(self, kmeans_profile, tmp_path):
        plain = tmp_path / "p.json"
        packed = tmp_path / "p.json.gz"
        save_profile(kmeans_profile, plain)
        save_profile(kmeans_profile, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_json_is_human_auditable(self, kmeans_profile, tmp_path):
        path = tmp_path / "p.json"
        save_profile(kmeans_profile, path)
        text = path.read_text()
        assert '"inter_stride"' in text
        assert '"sched_p_self"' in text


class TestTraceIO:
    def _traces(self):
        t0 = WarpTrace(warp_id=0, block=0)
        t0.instructions = [(0x10, 2), (0x20, 1)]
        t0.transactions = [(0x10, 0, 128, 0), (0x10, 128, 128, 0),
                           (0x20, 4096, 128, 1)]
        t1 = WarpTrace(warp_id=1, block=0)
        t1.instructions = [(0x10, 1)]
        t1.transactions = [(0x10, 8192, 128, 0)]
        return [t0, t1]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.trace"
        save_warp_traces(self._traces(), path)
        restored = load_warp_traces(path)
        assert len(restored) == 2
        assert restored[0].transactions == self._traces()[0].transactions
        assert restored[0].instructions == self._traces()[0].instructions
        assert restored[1].warp_id == 1

    def test_magic_required(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="not a gmap-trace"):
            load_warp_traces(path)

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# gmap-trace v1\nW 0 0\nT oops\n")
        with pytest.raises(ValueError, match="malformed record"):
            load_warp_traces(path)

    def test_record_before_warp(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# gmap-trace v1\nT 0x10 0x0 128 R\n")
        with pytest.raises(ValueError, match="malformed record"):
            load_warp_traces(path)

    def test_missing_instructions_synthesised(self, tmp_path):
        path = tmp_path / "a.trace"
        path.write_text(
            "# gmap-trace v1\nW 0 0\nT 0x10 0x0 128 R\nT 0x20 0x80 128 W\n"
        )
        traces = load_warp_traces(path)
        assert traces[0].instructions == [(0x10, 1), (0x20, 1)]

    def test_gzip_trace_round_trip(self, tmp_path):
        path = tmp_path / "a.trace.gz"
        save_warp_traces(self._traces(), path)
        restored = load_warp_traces(path)
        assert restored[0].transactions == self._traces()[0].transactions

    def test_sync_markers_survive_trace_round_trip(self, tmp_path):
        from repro.gpu.instructions import SYNC_PC
        trace = WarpTrace(warp_id=0, block=0)
        trace.instructions = [(0x10, 1), (SYNC_PC, 1)]
        trace.transactions = [(0x10, 0, 128, 0), (SYNC_PC, 0, 0, 0)]
        path = tmp_path / "s.trace"
        save_warp_traces([trace], path)
        restored = load_warp_traces(path)
        assert restored[0].instructions == trace.instructions
        assert restored[0].transactions == trace.transactions

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "a.trace"
        path.write_text(
            "# gmap-trace v1\n\n# comment\nW 0 0\nT 0x10 0x0 128 R\n"
        )
        assert len(load_warp_traces(path)) == 1

    def test_kernel_round_trip_preserves_profile(self, tiny_kmeans, tmp_path):
        """Profiling reloaded traces gives identical statistics."""
        from repro.core.profiler import unit_streams_from_warp_traces
        traces = build_warp_traces(tiny_kmeans)
        path = tmp_path / "kmeans.trace"
        save_warp_traces(traces, path)
        reloaded = load_warp_traces(path)
        direct = GmapProfiler().profile(tiny_kmeans)
        via_file = GmapProfiler().profile_unit_streams(
            unit_streams_from_warp_traces(reloaded), "warp", name="kmeans",
            grid_dim=direct.grid_dim, block_dim=direct.block_dim,
        )
        assert via_file.instructions[0xE8].inter_stride == \
            direct.instructions[0xE8].inter_stride
        assert via_file.pi_profiles[0].reuse == direct.pi_profiles[0].reuse
