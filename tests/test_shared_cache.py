"""Tests for the fleet-shared single-flight result cache.

The cross-process tests fork real children: single-flight coalescing and
crash-released locks are kernel behaviours (``flock`` ownership dies with
the process), so in-process fakes would prove nothing.
"""

import multiprocessing
import os
import time

import pytest

from repro.core.integrity import integrity_events
from repro.core.shared_cache import (
    STATUS_BUILT,
    STATUS_COALESCED,
    STATUS_HIT,
    STATUS_UNCACHED,
    SharedResultCache,
    job_key,
)

_CTX = multiprocessing.get_context("fork")


# -- job_key ----------------------------------------------------------------

class TestJobKey:
    def test_deterministic(self):
        a = job_key("simulate", {"target": "vectoradd", "cores": 2}, None)
        b = job_key("simulate", {"cores": 2, "target": "vectoradd"}, None)
        assert a == b  # canonical JSON: param order is irrelevant

    def test_distinguishes_inputs(self):
        base = job_key("simulate", {"target": "vectoradd"}, None)
        assert job_key("profile", {"target": "vectoradd"}, None) != base
        assert job_key("simulate", {"target": "transpose"}, None) != base
        assert job_key("simulate", {"target": "vectoradd"}, "numpy") != base

    def test_none_backend_equals_empty(self):
        assert job_key("simulate", {}, None) == job_key("simulate", {}, "")


# -- store/load -------------------------------------------------------------

class TestEntryIO:
    def test_roundtrip(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 1}, None)
        assert cache.load(key) is None
        assert cache.store(key, {"result": {"cycles": 42}})
        assert cache.load(key) == {"result": {"cycles": 42}}

    def test_corrupt_entry_quarantined_not_served(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 2}, None)
        cache.store(key, {"result": 1})
        cache.entry_path(key).write_bytes(b"\x00garbage\x00")
        before = integrity_events.snapshot()
        assert cache.load(key) is None
        delta = integrity_events.delta(before)
        assert delta.get("shared_cache_poisoned") == 1
        assert delta.get("quarantine") == 1
        assert not cache.entry_path(key).exists()  # moved aside
        assert list((tmp_path / "quarantine").iterdir())

    def test_truncated_gzip_quarantined(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 3}, None)
        cache.store(key, {"result": list(range(100))})
        blob = cache.entry_path(key).read_bytes()
        cache.entry_path(key).write_bytes(blob[: len(blob) // 2])
        assert cache.load(key) is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_store_failure_is_soft(self, tmp_path):
        target = tmp_path / "cache"
        cache = SharedResultCache(target)
        key = job_key("simulate", {"n": 4}, None)
        target.mkdir()
        # A regular file where the results/ tree should be: every store
        # hits OSError on mkdir.  (chmod tricks don't bind — tests run as
        # root in CI containers.)
        (target / "results").write_text("not a directory")
        assert cache.store(key, {"result": 1}) is False


# -- single flight, one process ---------------------------------------------

class TestSingleFlight:
    def test_built_then_hit(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 5}, None)
        calls = []

        def build():
            calls.append(1)
            return {"result": 7}

        body, status = cache.single_flight(key, build)
        assert (body, status) == ({"result": 7}, STATUS_BUILT)
        body, status = cache.single_flight(key, build)
        assert (body, status) == ({"result": 7}, STATUS_HIT)
        assert len(calls) == 1

    def test_uncacheable_builds_every_time(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 6}, None)
        calls = []

        def build():
            calls.append(1)
            return {"result": 7, "partial": True}

        for _ in range(2):
            body, status = cache.single_flight(
                key, build, cacheable=lambda b: not b.get("partial"))
            assert status == STATUS_UNCACHED
        assert len(calls) == 2
        assert not cache.entry_path(key).exists()

    def test_build_exception_releases_lock(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 7}, None)
        with pytest.raises(RuntimeError):
            cache.single_flight(key, self._boom)
        # The key is not wedged: a second attempt builds fine.
        body, status = cache.single_flight(key, lambda: {"result": 1})
        assert status == STATUS_BUILT

    @staticmethod
    def _boom():
        raise RuntimeError("build died")


# -- single flight, across processes ----------------------------------------

def _coalesce_child(root, key, marker_dir, queue, backend):
    cache = SharedResultCache(root, poll_interval=0.01,
                              lock_backend=backend, lease_ttl=5.0)

    def build():
        # A unique file per executed build: the cross-process execution
        # counter (atomic via O_EXCL creation).
        path = os.path.join(marker_dir, f"build-{os.getpid()}")
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        time.sleep(0.3)  # hold the lock long enough to force overlap
        return {"result": {"value": 99}}

    body, status = cache.single_flight(key, build)
    queue.put((os.getpid(), status, body))


def _crash_holding_lock(root, key, backend, lease_ttl):
    cache = SharedResultCache(root, lock_backend=backend,
                              lease_ttl=lease_ttl)
    handle = cache._acquire(key)
    assert handle is not None
    os._exit(1)  # die without releasing: recovery is the backend's job


@pytest.mark.parametrize("backend", ["fcntl", "lease"])
class TestCrossProcess:
    """Both single-flight lock backends must satisfy the same contract:
    one build per key across processes, and no wedged keys after a
    builder dies (the kernel drops an flock; a lease expires and is
    taken over)."""

    def test_two_processes_one_build(self, tmp_path, backend):
        """Same key from two processes: one build, both get the artifact."""
        root = tmp_path / "cache"
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        key = job_key("simulate", {"herd": 1}, None)
        queue = _CTX.Queue()
        children = [
            _CTX.Process(target=_coalesce_child,
                         args=(str(root), key, str(marker_dir), queue,
                               backend))
            for _ in range(2)
        ]
        for child in children:
            child.start()
        results = [queue.get(timeout=30) for _ in children]
        for child in children:
            child.join(10)
        builds = list(marker_dir.iterdir())
        assert len(builds) == 1, "the build must execute exactly once"
        statuses = sorted(status for _pid, status, _body in results)
        assert STATUS_BUILT in statuses
        assert set(statuses) <= {STATUS_BUILT, STATUS_COALESCED, STATUS_HIT}
        bodies = [body for _pid, _status, body in results]
        assert bodies[0] == bodies[1] == {"result": {"value": 99}}

    def test_killed_builder_releases_lock(self, tmp_path, backend):
        """A builder dying mid-build must not wedge the key: an flock
        dies with the process; a lease expires (its heartbeat died too)
        and the next caller takes it over."""
        root = tmp_path / "cache"
        key = job_key("simulate", {"crash": 1}, None)
        lease_ttl = 0.5
        child = _CTX.Process(target=_crash_holding_lock,
                             args=(str(root), key, backend, lease_ttl))
        child.start()
        child.join(10)
        assert child.exitcode == 1
        before = integrity_events.snapshot()
        cache = SharedResultCache(root, lock_timeout=30.0,
                                  lock_backend=backend, lease_ttl=lease_ttl)
        started = time.monotonic()
        body, status = cache.single_flight(key, lambda: {"result": 5})
        assert status == STATUS_BUILT
        # Well under lock_timeout: the lock was recovered (kernel release
        # or lease takeover), not waited out.
        assert time.monotonic() - started < 5.0
        if backend == "lease":
            delta = integrity_events.delta(before)
            assert delta.get("shared_cache_lease_takeover") == 1


# -- degraded locking telemetry ---------------------------------------------

class TestUnlockedTelemetry:
    def test_unlocked_event_fires_once_per_process(self, tmp_path,
                                                   monkeypatch):
        """Builds that degrade to uncoalesced (no engageable lock) flag
        the condition on the integrity ledger exactly once per process,
        however many keys degrade."""
        from repro.core import shared_cache as sc

        was_set = sc._unlocked_reported.is_set()
        sc._unlocked_reported.clear()
        monkeypatch.setattr(sc, "_HAVE_FCNTL", False)
        try:
            cache = SharedResultCache(tmp_path, lock_backend="fcntl")
            before = integrity_events.snapshot()
            for n in range(3):
                key = job_key("simulate", {"unlocked": n}, None)
                body, status = cache.single_flight(key,
                                                   lambda: {"result": n})
                assert status == STATUS_BUILT
            delta = integrity_events.delta(before)
            assert delta.get("shared_cache_unlocked") == 1
        finally:
            if was_set:
                sc._unlocked_reported.set()
            else:
                sc._unlocked_reported.clear()


# -- chaos poison hook ------------------------------------------------------

class TestPoisonInjection:
    def test_fault_injected_store_quarantines_then_rebuilds(self, tmp_path):
        """The GMAP_FAULT_INJECT corrupt hook poisons a stored entry; the
        next same-key access must quarantine and rebuild, never serve it."""
        from repro.validation import resilience

        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"poison": 1}, None)
        resilience.arm_fault("corrupt:*:*", tmp_path / "fault-state")
        try:
            body, status = cache.single_flight(key, lambda: {"result": 1})
        finally:
            resilience.arm_fault(None, None)
        assert status == STATUS_BUILT
        assert body == {"result": 1}  # the submitter still gets its result

        before = integrity_events.snapshot()
        body, status = cache.single_flight(key, lambda: {"result": 1})
        delta = integrity_events.delta(before)
        assert delta.get("shared_cache_poisoned") == 1
        assert status == STATUS_BUILT  # rebuilt, not served poisoned
        assert body == {"result": 1}
        assert list((tmp_path / "quarantine").iterdir())

        # Rebuild stored a clean entry: a third access is a plain hit.
        body, status = cache.single_flight(key, lambda: {"result": 1})
        assert status == STATUS_HIT


class TestTransientReadErrors:
    """Regression: transient IO failures must not quarantine valid entries.

    ``gzip.BadGzipFile`` is an ``OSError`` subclass, so corruption has to
    be caught *before* the transient-``OSError`` arm; ordering them the
    other way round silently turned every EACCES/EMFILE blip into a
    quarantine that destroyed good shared entries under load.
    """

    def test_transient_read_error_is_miss_not_quarantine(
            self, tmp_path, monkeypatch):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 40}, None)
        assert cache.store(key, {"result": 7})

        def denied(*args, **kwargs):
            raise PermissionError(13, "permission denied")

        before = integrity_events.snapshot()
        monkeypatch.setattr("repro.core.shared_cache.gzip.open", denied)
        assert cache.load(key) is None  # miss, nothing more
        monkeypatch.undo()

        delta = integrity_events.delta(before)
        assert "shared_cache_poisoned" not in delta
        assert cache.entry_path(key).exists()  # entry survived the blip
        assert not (tmp_path / "quarantine").exists()
        assert cache.load(key) == {"result": 7}  # served once IO recovers

    def test_corruption_still_quarantines(self, tmp_path):
        cache = SharedResultCache(tmp_path)
        key = job_key("simulate", {"n": 41}, None)
        assert cache.store(key, {"result": 8})
        blob = cache.entry_path(key).read_bytes()
        cache.entry_path(key).write_bytes(blob[:-4] + b"\xff\xff\xff\xff")
        before = integrity_events.snapshot()
        assert cache.load(key) is None
        delta = integrity_events.delta(before)
        assert delta.get("shared_cache_poisoned") == 1
        assert not cache.entry_path(key).exists()
