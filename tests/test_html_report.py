"""Tests for the self-contained HTML report generator."""

from __future__ import annotations

import pytest

from repro.validation.html_report import HtmlReport, experiment_html_report
from repro.validation.metrics import SweepComparison


def comparisons():
    return [
        SweepComparison("kmeans", "l1_miss_rate", [0.10, 0.20], [0.11, 0.19]),
        SweepComparison("hotspot", "l1_miss_rate", [0.50, 0.60], [0.40, 0.75]),
    ]


class TestHtmlReport:
    def test_document_structure(self):
        report = HtmlReport("G-MAP results")
        report.add_heading("Section")
        report.add_paragraph("hello world")
        doc = report.render()
        assert doc.startswith("<!DOCTYPE html>")
        assert "<title>G-MAP results</title>" in doc
        assert "<h2>Section</h2>" in doc
        assert "hello world" in doc
        assert doc.endswith("</body></html>")

    def test_escaping(self):
        report = HtmlReport("<script>alert(1)</script>")
        report.add_paragraph("a < b & c > d")
        doc = report.render()
        assert "<script>alert" not in doc
        assert "&lt;script&gt;" in doc
        assert "a &lt; b &amp; c &gt; d" in doc

    def test_table_formatting(self):
        report = HtmlReport("t")
        report.add_table(["name", "value"], [["x", 0.123456], ["y", 7]])
        doc = report.render()
        assert "<th>name</th>" in doc
        assert "<td>0.1235</td>" in doc
        assert "<td>7</td>" in doc

    def test_grouped_bars_svg(self):
        report = HtmlReport("t")
        report.add_grouped_bars(
            ["a", "b"], {"original": [0.5, 1.0], "proxy": [0.4, 0.9]}
        )
        doc = report.render()
        assert "<svg" in doc and "</svg>" in doc
        assert doc.count("<rect") >= 4 + 2  # 4 bars + 2 legend swatches
        assert "original" in doc and "proxy" in doc

    def test_grouped_bars_length_mismatch(self):
        report = HtmlReport("t")
        with pytest.raises(ValueError, match="values for"):
            report.add_grouped_bars(["a"], {"s": [1.0, 2.0]})

    def test_comparison_section(self):
        report = HtmlReport("t")
        report.add_comparison_section(
            "Figure 6a", comparisons(), paper_note="paper: 5.1% / 0.91"
        )
        doc = report.render()
        assert "Figure 6a" in doc
        assert "paper: 5.1%" in doc
        assert "kmeans" in doc and "hotspot" in doc
        assert "AVERAGE" in doc

    def test_empty_section(self):
        report = HtmlReport("t")
        report.add_comparison_section("empty", [])
        assert "(no data)" in report.render()

    def test_save(self, tmp_path):
        path = tmp_path / "r.html"
        report = HtmlReport("t")
        report.add_paragraph("x")
        report.save(path)
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_convenience_wrapper(self, tmp_path):
        path = tmp_path / "exp.html"
        doc = experiment_html_report("Fig", comparisons(), "note", path)
        assert path.read_text() == doc


class TestCliHtml:
    def test_validate_html_output(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "fig.html"
        assert main(["validate", "fig6a", "--benchmarks", "vectoradd",
                     "--scale", "tiny", "--cores", "4",
                     "--html", str(path)]) == 0
        doc = path.read_text()
        assert "vectoradd" in doc
        assert "<svg" in doc
        assert "5.1%" in doc  # the paper note