"""Correctness of the content-addressed artifact cache.

The cache must be invisible: warm results equal cold results exactly, any
input that affects an artifact changes its key, and a damaged entry is a
miss (recompute), never an error or a wrong answer.
"""

from __future__ import annotations

import gzip

import pytest

from repro.core.cache import (
    ArtifactCache,
    CACHE_SCHEMA_VERSION,
    config_fingerprint,
    kernel_fingerprint,
    resolve_cache,
    sim_result_from_payload,
    sim_result_to_payload,
)
from repro.gpu.executor import execute_kernel
from repro.memsim.simulator import SimtSimulator
from repro.validation.harness import build_pipeline, simulate_pair
from repro.workloads import suite


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture
def kernel():
    return suite.make("kmeans", "tiny")


def _pipeline_transactions(pipeline):
    """Flatten every (warp-trace) access of both assignment sets."""
    out = []
    for assignments in (pipeline.original_assignments,
                        pipeline.proxy_assignments):
        for assignment in assignments:
            for wave in assignment.waves:
                for trace in wave:
                    out.append((assignment.core_id, trace.block,
                                trace.warp_id, tuple(trace.transactions)))
    return out


class TestPipelineCache:
    def test_warm_equals_cold(self, cache, kernel):
        cold = build_pipeline(kernel, num_cores=4, cache=cache)
        warm = build_pipeline(kernel, num_cores=4, cache=cache)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.cache_key == cold.cache_key
        assert _pipeline_transactions(warm) == _pipeline_transactions(cold)
        assert warm.profile.to_dict() == cold.profile.to_dict()
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1

    def test_warm_pipeline_simulates_identically(self, cache, kernel,
                                                 small_config):
        cold = build_pipeline(kernel, num_cores=4, cache=cache)
        warm = build_pipeline(kernel, num_cores=4, cache=cache)
        run = lambda p: SimtSimulator(small_config).run(  # noqa: E731
            p.original_assignments)
        assert run(warm).to_dict() == run(cold).to_dict()

    @pytest.mark.parametrize("change", [
        {"seed": 999},
        {"scale_factor": 0.5},
        {"stride_model": "markov"},
        {"num_cores": 8},
        {"max_blocks_per_core": 4},
    ])
    def test_key_changes_with_inputs(self, cache, kernel, change):
        base = dict(seed=1234, scale_factor=1.0, stride_model="iid",
                    num_cores=4, max_blocks_per_core=8)
        varied = dict(base, **change)
        assert (cache.pipeline_key(kernel, **base)
                != cache.pipeline_key(kernel, **varied))

    def test_key_changes_with_kernel(self, cache):
        params = dict(seed=1234, scale_factor=1.0, stride_model="iid",
                      num_cores=4, max_blocks_per_core=8)
        a = cache.pipeline_key(suite.make("kmeans", "tiny"), **params)
        b = cache.pipeline_key(suite.make("vectoradd", "tiny"), **params)
        c = cache.pipeline_key(suite.make("kmeans", "small"), **params)
        assert len({a, b, c}) == 3

    def test_key_is_stable(self, cache, kernel):
        params = dict(seed=1234, scale_factor=1.0, stride_model="iid",
                      num_cores=4, max_blocks_per_core=8)
        assert (cache.pipeline_key(kernel, **params)
                == cache.pipeline_key(suite.make("kmeans", "tiny"), **params))

    def test_corrupted_entry_recomputes(self, cache, kernel):
        cold = build_pipeline(kernel, num_cores=4, cache=cache)
        path = cache.pipeline_entry_path(cold.cache_key)
        assert path.exists()
        path.write_bytes(b"not a cache entry at all")
        again = build_pipeline(kernel, num_cores=4, cache=cache)
        assert not again.from_cache
        assert cache.counters.errors >= 1
        assert _pipeline_transactions(again) == _pipeline_transactions(cold)

    def test_truncated_entry_recomputes(self, cache, kernel):
        cold = build_pipeline(kernel, num_cores=4, cache=cache)
        path = cache.pipeline_entry_path(cold.cache_key)
        path.write_bytes(path.read_bytes()[:20])
        again = build_pipeline(kernel, num_cores=4, cache=cache)
        assert not again.from_cache
        assert _pipeline_transactions(again) == _pipeline_transactions(cold)

    def test_schema_version_mismatch_is_miss(self, cache, kernel):
        import json

        cold = build_pipeline(kernel, num_cores=4, cache=cache)
        path = cache.pipeline_entry_path(cold.cache_key)
        if path.suffix == ".npz":
            import numpy as np

            from repro.memsim import arrays as columnar

            with np.load(path) as payload:
                columns = {name: payload[name] for name in payload.files}
            meta = json.loads(
                bytes(columns.pop(columnar.META_MEMBER).tobytes()).decode()
            )
            columnar.save_columns(
                path, columns, columnar.FORMAT_PIPELINE,
                extra_meta={
                    "cache_schema": CACHE_SCHEMA_VERSION + 1,
                    "meta": meta["meta"],
                },
            )
        else:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                payload = json.load(fh)
            payload["schema"] = CACHE_SCHEMA_VERSION + 1
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                json.dump(payload, fh)
        again = build_pipeline(kernel, num_cores=4, cache=cache)
        assert not again.from_cache
        assert _pipeline_transactions(again) == _pipeline_transactions(cold)


class TestPairCache:
    def test_warm_pair_equals_cold(self, cache, kernel, small_config):
        pipeline = build_pipeline(kernel, num_cores=4, cache=cache)
        cold = simulate_pair(pipeline, small_config, cache=cache)
        warm = simulate_pair(pipeline, small_config, cache=cache)
        assert warm.original.to_dict() == cold.original.to_dict()
        assert warm.proxy.to_dict() == cold.proxy.to_dict()
        assert warm.original.measured_p_self == cold.original.measured_p_self
        assert warm.original.per_core_l1 == cold.original.per_core_l1

    def test_pair_key_varies_with_config(self, cache, kernel, small_config):
        pipeline = build_pipeline(kernel, num_cores=4, cache=cache)
        other = small_config.with_(scheduler="gto")
        assert (cache.pair_key(pipeline.cache_key, small_config)
                != cache.pair_key(pipeline.cache_key, other))

    def test_corrupted_pair_recomputes(self, cache, kernel, small_config):
        pipeline = build_pipeline(kernel, num_cores=4, cache=cache)
        cold = simulate_pair(pipeline, small_config, cache=cache)
        key = cache.pair_key(pipeline.cache_key, small_config, True)
        cache._path("pair", key).write_bytes(b"\x00garbage")
        warm = simulate_pair(pipeline, small_config, cache=cache)
        assert warm.original.to_dict() == cold.original.to_dict()

    def test_no_cache_key_means_no_pair_caching(self, cache, kernel,
                                                small_config):
        pipeline = build_pipeline(kernel, num_cores=4)  # no cache -> no key
        assert pipeline.cache_key is None
        simulate_pair(pipeline, small_config, cache=cache)
        assert cache.counters.stores == 0


class TestRoundTrip:
    def test_sim_result_payload_is_exact(self, kernel, small_config):
        pipeline = build_pipeline(kernel, num_cores=4)
        result = SimtSimulator(small_config).run(
            pipeline.original_assignments)
        restored = sim_result_from_payload(sim_result_to_payload(result))
        assert restored.to_dict() == result.to_dict()
        assert restored.measured_p_self == result.measured_p_self
        assert restored.barriers_crossed == result.barriers_crossed
        assert restored.per_core_l1 == result.per_core_l1
        assert restored.cycles == result.cycles

    def test_fingerprints_are_hex_digests(self, kernel, small_config):
        for fp in (kernel_fingerprint(kernel),
                   config_fingerprint(small_config)):
            assert len(fp) == 64
            int(fp, 16)


class TestResolveCache:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_instance_passthrough(self, cache):
        assert resolve_cache(cache) is cache

    def test_true_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GMAP_CACHE_DIR", str(tmp_path / "env-cache"))
        resolved = resolve_cache(True)
        assert resolved is not None
        assert str(resolved.root).startswith(str(tmp_path / "env-cache"))


def test_execute_kernel_unaffected_by_cache(cache, kernel):
    """The cache layer never mutates what it memoizes."""
    before = execute_kernel(kernel, 4)
    build_pipeline(kernel, num_cores=4, cache=cache)
    build_pipeline(kernel, num_cores=4, cache=cache)
    after = execute_kernel(kernel, 4)
    assert len(before) == len(after)
    for a, b in zip(before, after):
        assert a.core_id == b.core_id
        assert len(a.waves) == len(b.waves)
