"""Tests for validation metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validation.metrics import (
    SweepComparison,
    absolute_error,
    mean_error,
    pearson_correlation,
    percentage_error,
    rank_agreement,
)


class TestErrors:
    def test_percentage_error(self):
        assert percentage_error(0.5, 0.55) == pytest.approx(0.1)
        assert percentage_error(0.5, 0.45) == pytest.approx(0.1)

    def test_percentage_error_zero_base(self):
        assert percentage_error(0.0, 0.0) == 0.0
        assert percentage_error(0.0, 0.2) == 1.0

    def test_absolute_error(self):
        assert absolute_error(0.30, 0.25) == pytest.approx(0.05)

    def test_mean_error(self):
        assert mean_error([0.5, 0.2], [0.4, 0.2]) == pytest.approx(0.05)

    def test_mean_error_relative(self):
        assert mean_error([0.5, 0.2], [0.45, 0.22], relative=True) == \
            pytest.approx(0.1)

    def test_mean_error_empty(self):
        assert mean_error([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_error([1.0], [1.0, 2.0])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_small(self):
        r = pearson_correlation([1, 2, 3, 4], [1, -1, 1, -1])
        assert abs(r) < 0.5

    def test_both_constant_is_one(self):
        assert pearson_correlation([2, 2, 2], [5, 5, 5]) == 1.0

    def test_one_constant_is_zero(self):
        assert pearson_correlation([2, 2, 2], [1, 2, 3]) == 0.0

    def test_short_vectors(self):
        assert pearson_correlation([1], [9]) == 1.0
        assert pearson_correlation([], []) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_matches_scipy(self):
        pearsonr = pytest.importorskip("scipy.stats").pearsonr
        xs = [0.1, 0.5, 0.3, 0.9, 0.2, 0.6]
        ys = [0.2, 0.4, 0.35, 0.8, 0.25, 0.5]
        assert pearson_correlation(xs, ys) == pytest.approx(pearsonr(xs, ys)[0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=2, max_size=30))
    def test_bounded(self, xs):
        ys = [x * 0.7 + 0.01 for x in xs]
        r = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestRankAgreement:
    def test_identical_ranking(self):
        assert rank_agreement([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed_ranking(self):
        assert rank_agreement([1, 2, 3], [3, 2, 1]) == 0.0

    def test_partial(self):
        # Pairs: (1,2)+, (1,3)+, (2,3)-: proxy flips the last pair.
        assert rank_agreement([1, 2, 3], [1, 3, 2]) == pytest.approx(2 / 3)

    def test_ties_agree_when_tied_in_both(self):
        assert rank_agreement([1, 1], [5, 5]) == 1.0
        assert rank_agreement([1, 1], [5, 6]) == 0.0

    def test_short(self):
        assert rank_agreement([1], [2]) == 1.0


class TestWorkingSetCurve:
    def _stream(self, lines):
        return [line * 128 for line in lines]

    def test_curve_monotone_nonincreasing(self):
        from repro.validation.metrics import working_set_curve
        stream = self._stream([i % 64 for i in range(1000)])
        curve = working_set_curve(stream)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_resident_set_hits_at_capacity(self):
        from repro.validation.metrics import working_set_curve
        stream = self._stream([i % 8 for i in range(800)])
        curve = working_set_curve(stream, capacities=(4, 8, 16))
        assert curve[0] > 0.9          # 8-line set thrashes 4 lines
        assert curve[1] == pytest.approx(8 / 800)   # cold misses only
        assert curve[2] == pytest.approx(8 / 800)

    def test_empty_stream(self):
        from repro.validation.metrics import working_set_curve
        assert working_set_curve([]) == [0.0] * 6

    def test_distance_zero_for_identical(self):
        from repro.validation.metrics import working_set_distance
        stream = self._stream(list(range(50)) * 4)
        assert working_set_distance(stream, list(stream)) == 0.0

    def test_distance_detects_locality_gap(self):
        from repro.validation.metrics import working_set_distance
        resident = self._stream([i % 8 for i in range(400)])
        streaming = self._stream(range(400))
        assert working_set_distance(resident, streaming) > 0.3

    def test_clone_curve_close_on_pipeline(self, kmeans_profile, tiny_kmeans):
        from repro.core.generator import ProxyGenerator
        from repro.gpu.executor import build_warp_traces
        from repro.validation.metrics import working_set_distance
        orig = [a for t in build_warp_traces(tiny_kmeans)
                for pc, a, _, _ in t.transactions if pc >= 0]
        clone_traces = ProxyGenerator(kmeans_profile, seed=6).generate_warp_traces()
        clone = [a for t in clone_traces
                 for pc, a, _, _ in t.transactions if pc >= 0]
        assert working_set_distance(orig, clone) < 0.05


class TestSweepComparison:
    def _comparison(self):
        return SweepComparison(
            benchmark="kmeans",
            metric="l1_miss_rate",
            originals=[0.10, 0.20, 0.40],
            proxies=[0.12, 0.18, 0.43],
        )

    def test_mean_abs_error(self):
        assert self._comparison().mean_abs_error == pytest.approx(0.07 / 3)

    def test_accuracy(self):
        c = self._comparison()
        assert c.accuracy == pytest.approx(1.0 - c.mean_abs_error)

    def test_correlation_high(self):
        assert self._comparison().correlation > 0.98

    def test_rank_agreement(self):
        assert self._comparison().rank_agreement == 1.0

    def test_row(self):
        name, err, corr = self._comparison().row()
        assert name == "kmeans"
        assert err == pytest.approx(0.07 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SweepComparison("x", "m", [1.0], [])
