#!/usr/bin/env python
"""Run the complete reproduction and collect its evidence in one place.

Executes, in order: the unit/property/integration test suite, every
table/figure bench (reduced or, with --full, paper-sized sweeps), and the
examples; tees everything under ``results/<timestamp>/`` so a reviewer gets
one directory containing the whole paper-vs-measured story.

Usage:
    python scripts/reproduce_all.py [--full] [--skip-tests] [--skip-examples]
"""

from __future__ import annotations

import argparse
import datetime as _dt
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

EXAMPLES = (
    "quickstart.py",
    "proprietary_sharing.py",
    "design_space_exploration.py",
    "miniaturization_study.py",
    "scheduling_study.py",
    "multi_kernel_application.py",
    "custom_kernel_dsl.py",
    "analytical_comparison.py",
)


def run(cmd, log_path: Path, env=None) -> int:
    print(f"--> {' '.join(cmd)}")
    with log_path.open("w", encoding="utf-8") as log:
        process = subprocess.Popen(
            cmd, cwd=REPO, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, env=env,
        )
        assert process.stdout is not None
        for line in process.stdout:
            sys.stdout.write(line)
            log.write(line)
        process.wait()
    print(f"    exit {process.returncode}; log: {log_path}")
    return process.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-sized sweeps (GMAP_FULL=1); much slower")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="sweep-engine worker processes for the validate "
                             "stages (default: all CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache for validate stages")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted validate stages from their "
                             "run journals (skips completed sweep chunks)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-chunk watchdog (seconds) for the validate "
                             "stages")
    parser.add_argument("--retries", type=int, default=None,
                        help="retries per failing sweep chunk before it is "
                             "quarantined")
    parser.add_argument("--skip-tests", action="store_true")
    parser.add_argument("--skip-examples", action="store_true")
    parser.add_argument("--skip-check", action="store_true",
                        help="skip the gmap check static-analysis gate")
    args = parser.parse_args()

    stamp = _dt.datetime.now().strftime("%Y%m%d-%H%M%S")
    outdir = REPO / "results" / stamp
    outdir.mkdir(parents=True, exist_ok=True)
    failures = []

    # Static analysis first: a determinism hazard or malformed bundled
    # artifact invalidates everything downstream, so fail in milliseconds
    # before hours of sweeps start.
    if not args.skip_check:
        if run([sys.executable, "-m", "repro.cli", "check", "--self-test"],
               outdir / "check_selftest.log"):
            failures.append("check/self-test")
        if run([sys.executable, "-m", "repro.cli", "check",
                "--format", "json"],
               outdir / "check.log"):
            failures.append("check")
        if failures:
            print(f"\nstatic-analysis gate failed ({', '.join(failures)}); "
                  f"aborting before any sweep runs")
            return 1

    if not args.skip_tests:
        if run([sys.executable, "-m", "pytest", "tests/", "-q"],
               outdir / "tests.log"):
            failures.append("tests")

    env = dict(os.environ)
    if args.full:
        env["GMAP_FULL"] = "1"
    if run([sys.executable, "-m", "pytest", "benchmarks/",
            "--benchmark-only", "-q", "-s"],
           outdir / "benchmarks.log", env=env):
        failures.append("benchmarks")

    if not args.skip_examples:
        for example in EXAMPLES:
            if run([sys.executable, f"examples/{example}"],
                   outdir / f"example_{example}.log"):
                failures.append(f"examples/{example}")

    # Self-contained HTML reports, one per paper figure.  The parallel sweep
    # engine fans each figure's (benchmark, config) grid over worker
    # processes; the artifact cache makes later figures reuse the pipelines
    # profiled for earlier ones.  Each figure journals its sweep chunks, so
    # an interrupted campaign restarts with --resume instead of from zero;
    # a figure whose report is partial (quarantined chunks) exits nonzero
    # and is recorded as a failed stage.
    jobs = str(args.jobs if args.jobs else (os.cpu_count() or 2))
    for figure in ("fig6a", "fig6b", "fig6c", "fig6d", "fig7"):
        cmd = [sys.executable, "-m", "repro.cli", "validate", figure,
               "--jobs", jobs, "--html", str(outdir / f"{figure}.html"),
               "--csv", str(outdir / f"{figure}.csv")]
        if args.no_cache:
            cmd.append("--no-cache")
        if args.resume:
            cmd.append("--resume")
        if args.timeout is not None:
            cmd.extend(["--timeout", str(args.timeout)])
        if args.retries is not None:
            cmd.extend(["--retries", str(args.retries)])
        if args.full:
            cmd.append("--full")
        if run(cmd, outdir / f"validate_{figure}.log"):
            failures.append(f"validate/{figure}")

    print(f"\nartifacts in {outdir}")
    if failures:
        print(f"FAILED stages: {', '.join(failures)}")
        return 1
    print("all stages green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
