#!/usr/bin/env python
"""Fleet service benchmark: writes BENCH_serve.json.

Thin launcher around :mod:`repro.service.bench` (also reachable as
``gmap bench-serve``), kept as a script so CI and operators can run it
without installing the package:

    python scripts/bench_serve.py --smoke --out BENCH_serve.json

Phases and gates are documented in the module; the short version:
single-replica baseline, N-replica fleet throughput (``scaling_x``),
open-loop 2x overload (shed rate + tail latency), and SIGKILL recovery
time — with ``gates.zero_failed`` asserting that nothing beyond
deliberate shedding went wrong anywhere in the run.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
