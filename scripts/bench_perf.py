#!/usr/bin/env python
"""Performance benchmark for the sweep engine: writes BENCH_sweep.json.

Times a reduced Figure-6a (L1) sweep three ways and records the trajectory
so every PR can be checked against the previous one:

1. **sequential cold** — ``SweepRunner(jobs=1)``, no artifact cache: the
   historical baseline path (per-benchmark pipeline build + per-config
   original/proxy simulation, all in one process);
2. **parallel cold** — ``--jobs N`` workers with an empty cache directory:
   measures pool fan-out plus the cost of populating the cache;
3. **parallel warm** — the same run again: pipelines and result pairs come
   from the content-addressed cache.
4. **resilient sequential** — ``jobs=1`` again but with the full resilience
   machinery armed (run journal, per-chunk timeout watchdog, retry budget):
   measures the happy-path overhead of checkpointing, which the perf gate
   requires to stay under 5% of the plain sequential run (with a small
   absolute floor so sub-second runs aren't judged on timer noise).

All runs must be bit-identical (the script verifies this); the headline
number is ``sequential_cold / parallel_warm``, which the repo's perf gate
requires to be >= 3x.

Usage:
    python scripts/bench_perf.py [--jobs 4] [--smoke] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.validation import sweeps                      # noqa: E402
from repro.validation.parallel import SweepRunner        # noqa: E402
from repro.workloads import suite                        # noqa: E402

SCHEMA_VERSION = 2
TARGET_SPEEDUP = 3.0
#: Max fractional happy-path cost of journal + watchdog + retry accounting.
RESILIENCE_OVERHEAD_TARGET = 0.05
#: Absolute noise floor: overhead under this many seconds always passes.
RESILIENCE_OVERHEAD_FLOOR_S = 0.25

DEFAULT_BENCHMARKS = ("kmeans", "backprop", "srad", "blackscholes")
SMOKE_BENCHMARKS = ("vectoradd", "kmeans")


def _metric_matrix(sweeps_list, metric: str):
    """Nested metric lists [(benchmark, [original...], [proxy...])]."""
    return [
        (
            sweep.benchmark,
            [pair.original.metric(metric) for pair in sweep.pairs],
            [pair.proxy.metric(metric) for pair in sweep.pairs],
        )
        for sweep in sweeps_list
    ]


def validate_schema(payload: dict) -> None:
    """Assert the BENCH_sweep.json layout downstream tooling relies on."""
    required = {
        "schema_version": int,
        "experiment": str,
        "generated_at": str,
        "jobs": int,
        "scale": str,
        "num_cores": int,
        "benchmarks": list,
        "num_configs": int,
        "timings": dict,
        "speedup_parallel_warm": float,
        "target_speedup": float,
        "meets_target": bool,
        "results_match": bool,
        "resilience_overhead": float,
        "resilience_overhead_target": float,
        "meets_resilience_target": bool,
    }
    for key, kind in required.items():
        if key not in payload:
            raise AssertionError(f"BENCH_sweep.json missing key {key!r}")
        if not isinstance(payload[key], kind):
            raise AssertionError(
                f"BENCH_sweep.json key {key!r}: expected {kind.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    for key in ("sequential_cold_s", "parallel_cold_s", "parallel_warm_s",
                "resilient_sequential_s"):
        if not isinstance(payload["timings"].get(key), float):
            raise AssertionError(f"timings missing float key {key!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel runs")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI: checks the parallel path and "
                             "the JSON schema, skips the speedup gate")
    parser.add_argument("--out", default=str(REPO / "BENCH_sweep.json"),
                        help="output JSON path")
    parser.add_argument("--scale", default="tiny",
                        help="workload scale preset for the benchmark kernels")
    parser.add_argument("--cores", type=int, default=8,
                        help="simulated SM count")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark subset to sweep")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the speedup but never fail on it")
    args = parser.parse_args()

    names = args.benchmarks or list(
        SMOKE_BENCHMARKS if args.smoke else DEFAULT_BENCHMARKS
    )
    kernels = [suite.make(name, scale=args.scale) for name in names]
    configs = sweeps.l1_sweep(reduced=True)
    if args.smoke:
        configs = configs[:3]
    metric = "l1_miss_rate"

    cache_dir = tempfile.mkdtemp(prefix="gmap-bench-cache-")
    try:
        print(f"bench: reduced fig6a sweep, {len(names)} benchmarks x "
              f"{len(configs)} configs, scale={args.scale}, "
              f"cores={args.cores}, jobs={args.jobs}")

        t0 = time.perf_counter()
        seq = SweepRunner(jobs=1, use_cache=False).run(
            kernels, configs, num_cores=args.cores)
        t1 = time.perf_counter()
        par_cold = SweepRunner(jobs=args.jobs, use_cache=True,
                               cache_dir=cache_dir).run(
            kernels, configs, num_cores=args.cores)
        t2 = time.perf_counter()
        par_warm = SweepRunner(jobs=args.jobs, use_cache=True,
                               cache_dir=cache_dir).run(
            kernels, configs, num_cores=args.cores)
        t3 = time.perf_counter()
        journal_dir = tempfile.mkdtemp(prefix="gmap-bench-journal-")
        try:
            t4 = time.perf_counter()
            resilient = SweepRunner(
                jobs=1, use_cache=False, journal=True,
                journal_dir=journal_dir, timeout=600.0, retries=2,
            ).run(kernels, configs, num_cores=args.cores)
            t5 = time.perf_counter()
        finally:
            shutil.rmtree(journal_dir, ignore_errors=True)

        sequential_cold = t1 - t0
        parallel_cold = t2 - t1
        parallel_warm = t3 - t2
        resilient_sequential = t5 - t4
        overhead = (
            (resilient_sequential - sequential_cold) / sequential_cold
            if sequential_cold > 0 else 0.0
        )
        meets_resilience = (
            overhead <= RESILIENCE_OVERHEAD_TARGET
            or resilient_sequential - sequential_cold
            <= RESILIENCE_OVERHEAD_FLOOR_S
        )

        results_match = (
            _metric_matrix(seq, metric)
            == _metric_matrix(par_cold, metric)
            == _metric_matrix(par_warm, metric)
            == _metric_matrix(resilient, metric)
        )
        speedup = (sequential_cold / parallel_warm
                   if parallel_warm > 0 else float("inf"))
        cache_entries = sum(
            1 for p in Path(cache_dir).rglob("*.json.gz") if p.is_file()
        )

        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment": "fig6a-reduced",
            "generated_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "jobs": args.jobs,
            "scale": args.scale,
            "num_cores": args.cores,
            "benchmarks": names,
            "num_configs": len(configs),
            "timings": {
                "sequential_cold_s": round(sequential_cold, 4),
                "parallel_cold_s": round(parallel_cold, 4),
                "parallel_warm_s": round(parallel_warm, 4),
                "resilient_sequential_s": round(resilient_sequential, 4),
            },
            "speedup_parallel_warm": round(speedup, 2),
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": bool(speedup >= TARGET_SPEEDUP),
            "results_match": bool(results_match),
            "resilience_overhead": round(overhead, 4),
            "resilience_overhead_target": RESILIENCE_OVERHEAD_TARGET,
            "meets_resilience_target": bool(meets_resilience),
            "cache_entries": cache_entries,
            "smoke": bool(args.smoke),
        }
        validate_schema(payload)
        out = Path(args.out)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

        print(f"  sequential cold : {sequential_cold:8.2f}s")
        print(f"  parallel   cold : {parallel_cold:8.2f}s  (jobs={args.jobs}, "
              f"cache populated: {cache_entries} entries)")
        print(f"  parallel   warm : {parallel_warm:8.2f}s")
        print(f"  resilient  seq  : {resilient_sequential:8.2f}s  "
              f"(journal + watchdog + retries armed)")
        print(f"  speedup (warm)  : {speedup:8.2f}x  (target "
              f">= {TARGET_SPEEDUP}x)")
        print(f"  resilience cost : {overhead * 100:7.2f}%  (target "
              f"<= {RESILIENCE_OVERHEAD_TARGET * 100:.0f}% or "
              f"<= {RESILIENCE_OVERHEAD_FLOOR_S}s absolute)")
        print(f"  results match   : {results_match}")
        print(f"wrote {out}")

        if not results_match:
            print("FAIL: parallel/cached/resilient results differ from "
                  "sequential")
            return 1
        if args.smoke:
            print("smoke OK: parallel path completed, schema valid")
            return 0
        if not payload["meets_target"] and not args.no_gate:
            print(f"FAIL: speedup {speedup:.2f}x below target "
                  f"{TARGET_SPEEDUP}x")
            return 1
        if not meets_resilience and not args.no_gate:
            print(f"FAIL: resilience overhead {overhead * 100:.2f}% exceeds "
                  f"{RESILIENCE_OVERHEAD_TARGET * 100:.0f}% target")
            return 1
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
