#!/usr/bin/env python
"""Performance benchmark for the sweep engine: writes BENCH_sweep.json.

Times a reduced Figure-6a (L1) sweep and the G-MAP pipeline itself, and
records the trajectory so every PR can be checked against the previous one:

1. **sequential cold** — an instrumented serial loop (the same
   ``build_pipeline`` + ``run_sweep`` path ``SweepRunner(jobs=1)``
   takes), which also attributes wall time to the three pipeline stages
   — profile, generate, memsim — in the report's ``timings`` block;
2. **engine sequential cold** — ``SweepRunner(jobs=1)``, no artifact
   cache: the apples-to-apples baseline for the two gates below (same
   engine, so chunking bookkeeping cancels out of the comparison);
3. **parallel cold** — ``--jobs N`` workers with an empty cache directory:
   measures pool fan-out plus the cost of populating the cache.  The perf
   gate requires this to beat the engine sequential run (full mode):
   chunk sizing must not rebuild per-benchmark pipelines across workers.
   On a single-CPU machine, where no pool can beat sequential, the gate
   degrades to a bounded-overhead check (annotated in the report as
   ``parallel_cold_gate_mode``);
4. **parallel warm** — the same run again: pipelines and result pairs come
   from the content-addressed cache;
5. **resilient sequential** — ``jobs=1`` again but with the full resilience
   machinery armed (run journal, per-chunk timeout watchdog, retry budget):
   measures the happy-path overhead of checkpointing, which the perf gate
   requires to stay under 5% of the engine sequential run (with a small
   absolute floor so sub-second runs aren't judged on timer noise).

The four cold sweep runs are *interleaved* over min-of-N repetitions
(full mode; smoke runs one rep) — the bench containers drift slower as
a run heats up, so a later-vs-earlier comparison of single measurements
would gate on drift, not on the engine.  For the same reason the gated
comparisons (parallel cold and resilience vs engine sequential) pair
runs from the *same* repetition and take the best per-rep ratio, rather
than comparing minima that may come from different reps;
6. **backend comparison** — the cold end-to-end G-MAP pipeline (trace load
   → Fermi front end → profiling → proxy generation → proxy trace save)
   once per backend: the python reference from text traces, the numpy
   array core from binary ``.npz`` traces.  The gate requires numpy to be
   >= 3x faster, the two backends' profiles to be bit-identical, and
   their generated proxies to agree on the validation metric within the
   harness tolerance.  This gate runs in ``--smoke`` mode too — it is the
   CI check for the vectorized core;
7. **memsim comparison** — the flat-replay cache simulation alone (no
   profiling or generation in the timed region) over the reduced fig6a
   grid: the scalar event loop once per config vs one
   ``simulate_flat_multi`` one-pass numpy run.  Reps are interleaved and
   the headline is a ratio of minima, so scheduler noise cannot flip the
   gate.  Requires numpy >= 5x, miss counts bit-identical (the grid is
   LRU/no-prefetch, so no config falls back to the oracle), and the
   one-pass N-config run to beat two *independent* oracle single-config
   runs — the decode-once fan-out must pay for itself.  Runs in
   ``--smoke`` mode too.

8. **analytic comparison** — the O(histogram) analytic predictor
   (:mod:`repro.analytical.analytic`) over the same reduced fig6a grid
   and trace as the memsim comparison: the model build + per-geometry
   scans happen once outside the timed region (the analytic twin of the
   memsim decode warm-up), then each rep times predicting every config
   from the histograms.  The gate requires the analytic sweep to be
   >= 50x faster than the one-pass numpy memsim run, every per-point
   |Δ miss rate| vs the numpy truth to stay within the model's stated
   tolerance (L1 and L2), every grid config to be in-model, and a panel
   of deliberately out-of-scope configs (prefetcher, FIFO replacement)
   to *demonstrably* fall back with non-empty reason lists.  Runs in
   ``--smoke`` mode too.

All sweep runs must be bit-identical (the script verifies this); the
headline sweep number is ``sequential_cold / parallel_warm``, which the
repo's perf gate requires to be >= 3x.

Usage:
    python scripts/bench_perf.py [--jobs 4] [--smoke] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.backend import numpy_available                  # noqa: E402
from repro.core.generator import ProxyGenerator                 # noqa: E402
from repro.core.profiler import (                               # noqa: E402
    GmapProfiler,
    unit_streams_from_warp_traces,
)
from repro.gpu.executor import collect_thread_traces            # noqa: E402
from repro.io.thread_trace_io import (                          # noqa: E402
    save_thread_traces,
    warp_traces_from_thread_file,
)
from repro.io.trace_io import save_warp_traces                  # noqa: E402
from repro.validation import sweeps                             # noqa: E402
from repro.validation.parallel import SweepRunner               # noqa: E402
from repro.workloads import suite                               # noqa: E402

SCHEMA_VERSION = 5
TARGET_SPEEDUP = 3.0
#: Required cold-pipeline advantage of the numpy backend over python.
BACKEND_TARGET_SPEEDUP = 3.0
#: Required flat-replay advantage of the array memsim engine over the
#: scalar event loop (ratio of per-rep minima on the reduced fig6a grid).
MEMSIM_TARGET_SPEEDUP = 5.0
#: Interleaved python/numpy repetitions for the memsim gate.
MEMSIM_REPS = 5
MEMSIM_BENCHMARK = "kmeans"
#: Required advantage of the analytic O(histogram) sweep over the one-pass
#: numpy memsim run on the same grid and trace.
ANALYTIC_TARGET_SPEEDUP = 50.0
#: Prediction repetitions for the analytic gate (cheap: milliseconds each).
ANALYTIC_REPS = 5
#: Max disagreement of the two backends' proxies on the validation metric
#: (the harness integration tests hold proxies to ~0.03-0.05 absolute).
BACKEND_PROXY_TOLERANCE = 0.05
#: Allowed cold-parallel overhead on machines with a single CPU, where the
#: pool cannot physically beat the sequential run and the gate degrades to
#: "fan-out bookkeeping stays cheap".  The single-CPU bench containers
#: drift monotonically slower within a round by up to ~35%, so the bound
#: only has to catch catastrophic regressions (the PR-4 chunking bug was
#: >2x), not container weather.
SINGLE_CPU_PARALLEL_OVERHEAD = 0.50
#: Max fractional happy-path cost of journal + watchdog + retry accounting.
RESILIENCE_OVERHEAD_TARGET = 0.05
#: Absolute noise floor: overhead under this many seconds always passes.
RESILIENCE_OVERHEAD_FLOOR_S = 0.25

DEFAULT_BENCHMARKS = ("kmeans", "backprop", "srad", "blackscholes")
SMOKE_BENCHMARKS = ("vectoradd", "kmeans")
BENCH_METRIC = "l1_miss_rate"


def _metric_matrix(sweeps_list, metric: str):
    """Nested metric lists [(benchmark, [original...], [proxy...])]."""
    return [
        (
            sweep.benchmark,
            [pair.original.metric(metric) for pair in sweep.pairs],
            [pair.proxy.metric(metric) for pair in sweep.pairs],
        )
        for sweep in sweeps_list
    ]


def _proxy_metric(launch, traces, num_cores: int) -> float:
    """Simulate one backend's generated proxy under the paper baseline."""
    from repro.gpu.executor import assign_warps_to_cores
    from repro.memsim.config import PAPER_BASELINE
    from repro.memsim.simulator import SimtSimulator

    assignments = assign_warps_to_cores(launch, traces, num_cores)
    config = PAPER_BASELINE.with_(num_cores=num_cores)
    return SimtSimulator(config).run(assignments).metric(BENCH_METRIC)


def _run_backend_pipeline(name, trace_path, backend, seed, mmap):
    """One benchmark's cold pipeline under one backend; returns artifacts.

    Everything downstream of trace collection is timed by the caller:
    load + front end, profiling, generation, and the proxy-trace save all
    dispatch on ``backend`` (the save format follows the trace format the
    backend would use: text for python, ``.npz`` for numpy).
    """
    traces, launch = warp_traces_from_thread_file(
        trace_path, backend=backend, mmap=mmap
    )
    units = unit_streams_from_warp_traces(traces)
    profiler = GmapProfiler(backend=backend)
    profile = profiler.profile_unit_streams(
        units, "warp", name=name,
        grid_dim=(launch.grid_dim.x, launch.grid_dim.y, launch.grid_dim.z),
        block_dim=(launch.block_dim.x, launch.block_dim.y, launch.block_dim.z),
    )
    generator = ProxyGenerator(profile, seed=seed, backend=backend)
    proxy = generator.generate_warp_traces()
    suffix = ".trace.npz" if backend == "numpy" else ".trace"
    save_warp_traces(proxy, Path(trace_path).parent / f"{name}-{backend}{suffix}")
    return profile, proxy, generator.launch_config()


def _bench_backends(kernels, workdir: Path, seed: int, num_cores: int,
                    reps: int = 2):
    """Cold end-to-end pipeline per backend over every benchmark.

    Trace export happens once, outside the timed region — it models the
    instrumentation step that produces the trace files a cold pipeline
    starts from.  A tiny warm-up pipeline runs per backend first so lazy
    module imports don't land inside either timed loop.  The two timed
    loops are interleaved over ``reps`` repetitions and reported as
    per-backend minima (scheduler noise on the bench containers dwarfs
    the 3x gate margin on a single draw).  Returns the timing pair plus
    the equivalence evidence.
    """
    warmup = suite.make("vectoradd", scale="tiny")
    for backend, suffix in (("python", ".ttrace"), ("numpy", ".ttrace.npz")):
        path = workdir / f"warmup{suffix}"
        save_thread_traces(collect_thread_traces(warmup), warmup.launch, path)
        _run_backend_pipeline("warmup", path, backend, seed,
                              mmap=backend == "numpy")

    exports = {}
    for kernel in kernels:
        thread_traces = collect_thread_traces(kernel)
        text = workdir / f"{kernel.name}.ttrace"
        binary = workdir / f"{kernel.name}.ttrace.npz"
        save_thread_traces(thread_traces, kernel.launch, text)
        save_thread_traces(thread_traces, kernel.launch, binary)
        exports[kernel.name] = (text, binary)

    profiles = {"python": {}, "numpy": {}}
    proxies = {"python": {}, "numpy": {}}
    timings = {"python": [], "numpy": []}
    for _ in range(reps):
        for backend in ("python", "numpy"):
            t0 = time.perf_counter()
            for kernel in kernels:
                text, binary = exports[kernel.name]
                trace_path = binary if backend == "numpy" else text
                profile, proxy, launch = _run_backend_pipeline(
                    kernel.name, trace_path, backend, seed,
                    mmap=backend == "numpy",
                )
                profiles[backend][kernel.name] = profile
                proxies[backend][kernel.name] = (launch, proxy)
            timings[backend].append(time.perf_counter() - t0)
    timings = {name: min(times) for name, times in timings.items()}

    profiles_match = all(
        profiles["python"][k.name].to_dict() == profiles["numpy"][k.name].to_dict()
        for k in kernels
    )
    proxy_delta = 0.0
    for kernel in kernels:
        py = _proxy_metric(*proxies["python"][kernel.name], num_cores)
        np_ = _proxy_metric(*proxies["numpy"][kernel.name], num_cores)
        proxy_delta = max(proxy_delta, abs(py - np_))
    return timings["python"], timings["numpy"], profiles_match, proxy_delta


def _sequential_cold(kernels, configs, num_cores: int):
    """Serial cold baseline with per-stage wall-time attribution.

    Runs the exact code path ``SweepRunner(jobs=1, use_cache=False)``
    takes per benchmark — :func:`build_pipeline` then :func:`run_sweep`
    with identical defaults — so the stage breakdown costs no extra run
    and the results stay comparable with the pooled runs.  Returns
    ``(sweeps, total_seconds, stage_seconds)``.
    """
    from repro.validation.harness import build_pipeline, run_sweep

    results = []
    stages = {"profile_s": 0.0, "generate_s": 0.0, "memsim_s": 0.0}
    t0 = time.perf_counter()
    for kernel in kernels:
        pipeline = build_pipeline(kernel, num_cores=num_cores)
        stages["profile_s"] += pipeline.profiling_seconds
        stages["generate_s"] += pipeline.generation_seconds
        m0 = time.perf_counter()
        results.append(run_sweep(pipeline, configs))
        stages["memsim_s"] += time.perf_counter() - m0
    return results, time.perf_counter() - t0, stages


def _bench_memsim(configs, num_cores: int, reps: int = MEMSIM_REPS):
    """Flat-replay engine comparison on the reduced fig6a grid.

    One kmeans trace is decoded from the kernel model, then each rep times
    (a) the scalar oracle once per config, (b) one one-pass numpy
    ``simulate_flat_multi`` over all configs, and (c) two *independent*
    oracle single-config replays — interleaved, so drift hits all three
    alike, with ratios taken over per-series minima.  Returns the timing
    triple plus the bit-identity verdict of the final rep.
    """
    from repro.gpu.executor import execute_kernel, flat_drain
    from repro.memsim.simulator import simulate_flat_trace
    from repro.memsim.vectorized import simulate_flat_multi

    kernel = suite.make(MEMSIM_BENCHMARK, scale="tiny")
    traces = flat_drain(execute_kernel(kernel, num_cores))
    configs = [c.with_(num_cores=num_cores) for c in configs]

    # Warm-up outside the timed region: lazy imports and the array decode.
    simulate_flat_trace(traces, configs[0], backend="python")
    simulate_flat_multi(traces, configs[:1], backend="numpy")

    python_times, numpy_times, single_times = [], [], []
    python_results = numpy_results = None
    for _ in range(reps):
        t0 = time.perf_counter()
        python_results = [
            simulate_flat_trace(traces, c, backend="python") for c in configs
        ]
        t1 = time.perf_counter()
        numpy_results = simulate_flat_multi(traces, configs, backend="numpy")
        t2 = time.perf_counter()
        for config in configs[:2]:
            simulate_flat_trace(traces, config, backend="python")
        t3 = time.perf_counter()
        python_times.append(t1 - t0)
        numpy_times.append(t2 - t1)
        single_times.append(t3 - t2)
    results_match = all(
        py.to_dict() == np_.to_dict()
        for py, np_ in zip(python_results, numpy_results)
    )
    return (min(python_times), min(numpy_times), min(single_times),
            results_match)


def _bench_analytic(configs, num_cores: int, reps: int = ANALYTIC_REPS):
    """Analytic O(histogram) sweep vs the numpy memsim truth.

    Uses the same kernel, trace shape, and grid as :func:`_bench_memsim`
    so the reported speedup divides like-for-like.  The model build and
    the per-geometry reuse scans run once outside the timed region — the
    analytic twin of the memsim decode warm-up: both are one-time costs a
    sweep amortizes over its configs.  Returns ``(analytic_seconds,
    max_miss_rate_delta, tolerance, all_in_model, fallbacks_demonstrated)``.
    """
    import dataclasses

    from repro.analytical.analytic import (
        ANALYTIC_MISS_RATE_TOLERANCE,
        AnalyticCacheModel,
        analytic_fallback_reasons,
    )
    from repro.gpu.executor import execute_kernel, flat_drain
    from repro.memsim.vectorized import simulate_flat_multi

    kernel = suite.make(MEMSIM_BENCHMARK, scale="tiny")
    traces = flat_drain(execute_kernel(kernel, num_cores))
    configs = [c.with_(num_cores=num_cores) for c in configs]

    model = AnalyticCacheModel.from_flat(traces).prepare(configs)
    all_in_model = not any(model.applicability(c) for c in configs)

    times = []
    predictions = []
    for _ in range(reps):
        t0 = time.perf_counter()
        predictions = [model.predict(c) for c in configs]
        times.append(time.perf_counter() - t0)

    truths = simulate_flat_multi(traces, configs, backend="numpy")
    max_delta = 0.0
    for predicted, truth in zip(predictions, truths):
        max_delta = max(
            max_delta,
            abs(predicted.l1_miss_rate - truth.l1_miss_rate),
            abs(predicted.l2_miss_rate - truth.l2_miss_rate),
        )

    # Out-of-scope configs must demonstrably fall back, not mispredict:
    # every feature the model cannot capture has to produce a reason.
    from repro.memsim.config import PrefetcherConfig

    base = configs[0]
    out_of_scope = [
        base.with_(l1_prefetcher=PrefetcherConfig(kind="stride")),
        base.with_(l2_prefetcher=PrefetcherConfig(kind="stream")),
        base.with_(l1=dataclasses.replace(base.l1, replacement="fifo")),
        base.with_(l2=dataclasses.replace(base.l2, replacement="random")),
    ]
    fallbacks_demonstrated = all(
        analytic_fallback_reasons(config) and model.applicability(config)
        for config in out_of_scope
    )
    return (min(times), max_delta, ANALYTIC_MISS_RATE_TOLERANCE,
            all_in_model, fallbacks_demonstrated)


def validate_schema(payload: dict) -> None:
    """Assert the BENCH_sweep.json layout downstream tooling relies on."""
    required = {
        "schema_version": int,
        "experiment": str,
        "generated_at": str,
        "jobs": int,
        "cpu_count": int,
        "scale": str,
        "backend_scale": str,
        "num_cores": int,
        "benchmarks": list,
        "num_configs": int,
        "timings": dict,
        "speedup_parallel_warm": float,
        "target_speedup": float,
        "meets_target": bool,
        "meets_parallel_cold": bool,
        "results_match": bool,
        "resilience_overhead": float,
        "resilience_overhead_target": float,
        "meets_resilience_target": bool,
        "speedup_backend": float,
        "backend_target_speedup": float,
        "meets_backend_target": bool,
        "backend_results_match": bool,
        "backend_proxy_max_delta": float,
        "backend_proxy_tolerance": float,
        "meets_backend_proxy_tolerance": bool,
        "parallel_cold_gate_mode": str,
        "memsim_speedup": float,
        "memsim_target_speedup": float,
        "meets_memsim_target": bool,
        "memsim_results_match": bool,
        "meets_memsim_one_pass": bool,
        "memsim_reps": int,
        "bench_reps": int,
        "analytic_speedup": float,
        "analytic_target_speedup": float,
        "meets_analytic_target": bool,
        "analytic_max_miss_rate_delta": float,
        "analytic_miss_rate_tolerance": float,
        "meets_analytic_tolerance": bool,
        "analytic_all_in_model": bool,
        "analytic_fallbacks_demonstrated": bool,
        "analytic_reps": int,
    }
    for key, kind in required.items():
        if key not in payload:
            raise AssertionError(f"BENCH_sweep.json missing key {key!r}")
        if not isinstance(payload[key], kind):
            raise AssertionError(
                f"BENCH_sweep.json key {key!r}: expected {kind.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    for key in ("sequential_cold_s", "engine_sequential_cold_s",
                "parallel_cold_s", "parallel_warm_s",
                "resilient_sequential_s", "backend_python_cold_s",
                "backend_numpy_cold_s", "stage_profile_s", "stage_generate_s",
                "stage_memsim_s", "memsim_python_cold_s",
                "memsim_numpy_cold_s", "memsim_two_singles_s",
                "analytic_sweep_s"):
        if not isinstance(payload["timings"].get(key), float):
            raise AssertionError(f"timings missing float key {key!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel runs")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI: checks the parallel path, the "
                             "JSON schema, and the backend gate; skips the "
                             "sweep speedup gates")
    parser.add_argument("--out", default=str(REPO / "BENCH_sweep.json"),
                        help="output JSON path")
    parser.add_argument("--scale", default="tiny",
                        help="workload scale preset for the benchmark kernels")
    parser.add_argument("--backend-scale", default="small",
                        help="workload scale for the backend comparison (the "
                             "vectorized advantage needs non-trivial traces)")
    parser.add_argument("--cores", type=int, default=8,
                        help="simulated SM count")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark subset to sweep")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the speedups but never fail on them")
    args = parser.parse_args()

    if not numpy_available():
        print("bench: numpy is unavailable; the backend gate cannot run")
        return 1

    names = args.benchmarks or list(
        SMOKE_BENCHMARKS if args.smoke else DEFAULT_BENCHMARKS
    )
    kernels = [suite.make(name, scale=args.scale) for name in names]
    configs = sweeps.l1_sweep(reduced=True)
    if args.smoke:
        configs = configs[:3]
    metric = BENCH_METRIC

    cache_dir = tempfile.mkdtemp(prefix="gmap-bench-cache-")
    trace_dir = tempfile.mkdtemp(prefix="gmap-bench-traces-")
    try:
        print(f"bench: reduced fig6a sweep, {len(names)} benchmarks x "
              f"{len(configs)} configs, scale={args.scale}, "
              f"cores={args.cores}, jobs={args.jobs}")

        reps = 1 if args.smoke else 2
        instr_times, engine_times, cold_times, res_times = [], [], [], []
        seq = engine = par_cold = resilient = None
        stage_seconds = {}
        for _ in range(reps):
            seq, instr_s, rep_stages = _sequential_cold(
                kernels, configs, num_cores=args.cores)
            if not instr_times or instr_s < min(instr_times):
                stage_seconds = rep_stages  # attribution of the min rep
            instr_times.append(instr_s)
            t0 = time.perf_counter()
            engine = SweepRunner(jobs=1, use_cache=False).run(
                kernels, configs, num_cores=args.cores)
            engine_times.append(time.perf_counter() - t0)
            # The resilience comparison (engine vs engine+journal) runs
            # back-to-back, BEFORE the fork pool: the pool's fork storm
            # leaves the container throttled for seconds afterwards, which
            # would be billed to whatever runs next.
            journal_dir = tempfile.mkdtemp(prefix="gmap-bench-journal-")
            try:
                t0 = time.perf_counter()
                resilient = SweepRunner(
                    jobs=1, use_cache=False, journal=True,
                    journal_dir=journal_dir, timeout=600.0, retries=2,
                ).run(kernels, configs, num_cores=args.cores)
                res_times.append(time.perf_counter() - t0)
            finally:
                shutil.rmtree(journal_dir, ignore_errors=True)
            shutil.rmtree(cache_dir, ignore_errors=True)
            Path(cache_dir).mkdir(parents=True, exist_ok=True)
            t0 = time.perf_counter()
            par_cold = SweepRunner(jobs=args.jobs, use_cache=True,
                                   cache_dir=cache_dir).run(
                kernels, configs, num_cores=args.cores)
            cold_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        par_warm = SweepRunner(jobs=args.jobs, use_cache=True,
                               cache_dir=cache_dir).run(
            kernels, configs, num_cores=args.cores)
        parallel_warm = time.perf_counter() - t0

        backend_kernels = [
            suite.make(name, scale=args.backend_scale) for name in names
        ]
        (backend_python, backend_numpy,
         backend_results_match, proxy_delta) = _bench_backends(
            backend_kernels, Path(trace_dir), seed=1234,
            num_cores=args.cores)

        memsim_configs = sweeps.l1_sweep(reduced=True)
        (memsim_python, memsim_numpy, memsim_two_singles,
         memsim_results_match) = _bench_memsim(
            memsim_configs, num_cores=args.cores)

        (analytic_s, analytic_delta, analytic_tolerance,
         analytic_all_in_model, analytic_fallbacks_ok) = _bench_analytic(
            memsim_configs, num_cores=args.cores)

        sequential_cold = min(instr_times)
        engine_sequential = min(engine_times)
        parallel_cold = min(cold_times)
        resilient_sequential = min(res_times)
        # Gated comparisons pair each rep's runs and take the best rep:
        # the container drifts monotonically slower WITHIN a round, so
        # "min(resilient) vs min(engine)" can bill one rep's late-round
        # throttling to another rep's early-round baseline.  Per-rep
        # ratios keep the comparands seconds apart instead.
        overhead = min(
            (res - eng) / eng
            for eng, res in zip(engine_times, res_times) if eng > 0
        )
        meets_resilience = (
            overhead <= RESILIENCE_OVERHEAD_TARGET
            or min(res - eng for eng, res in zip(engine_times, res_times))
            <= RESILIENCE_OVERHEAD_FLOOR_S
        )

        results_match = (
            _metric_matrix(seq, metric)
            == _metric_matrix(engine, metric)
            == _metric_matrix(par_cold, metric)
            == _metric_matrix(par_warm, metric)
            == _metric_matrix(resilient, metric)
        )
        speedup = (sequential_cold / parallel_warm
                   if parallel_warm > 0 else float("inf"))
        backend_speedup = (backend_python / backend_numpy
                           if backend_numpy > 0 else float("inf"))
        memsim_speedup = (memsim_python / memsim_numpy
                          if memsim_numpy > 0 else float("inf"))
        analytic_speedup = (memsim_numpy / analytic_s
                            if analytic_s > 0 else float("inf"))
        meets_memsim_one_pass = memsim_numpy <= memsim_two_singles
        cpu_count = os.cpu_count() or 1
        parallel_cold_ratio = min(
            cold / eng
            for eng, cold in zip(engine_times, cold_times) if eng > 0
        )
        if cpu_count >= 2:
            parallel_cold_gate_mode = "beat-sequential"
            meets_parallel_cold = parallel_cold_ratio <= 1.0
        else:
            # One CPU: no pool can beat sequential, so require only that
            # fan-out bookkeeping stays cheap — and annotate the report so
            # downstream readers know the gate was degraded, not passed.
            parallel_cold_gate_mode = "single-cpu-bounded-overhead"
            meets_parallel_cold = (
                parallel_cold_ratio <= 1.0 + SINGLE_CPU_PARALLEL_OVERHEAD
            )
        meets_proxy_tolerance = proxy_delta <= BACKEND_PROXY_TOLERANCE
        cache_entries = sum(
            1
            for pattern in ("*.json.gz", "*.npz")
            for p in Path(cache_dir).rglob(pattern)
            if p.is_file()
        )

        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment": "fig6a-reduced",
            "generated_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "jobs": args.jobs,
            "cpu_count": cpu_count,
            "scale": args.scale,
            "backend_scale": args.backend_scale,
            "num_cores": args.cores,
            "benchmarks": names,
            "num_configs": len(configs),
            "bench_reps": reps,
            "timings": {
                "sequential_cold_s": round(sequential_cold, 4),
                "engine_sequential_cold_s": round(engine_sequential, 4),
                "parallel_cold_s": round(parallel_cold, 4),
                "parallel_warm_s": round(parallel_warm, 4),
                "resilient_sequential_s": round(resilient_sequential, 4),
                "backend_python_cold_s": round(backend_python, 4),
                "backend_numpy_cold_s": round(backend_numpy, 4),
                "stage_profile_s": round(stage_seconds["profile_s"], 4),
                "stage_generate_s": round(stage_seconds["generate_s"], 4),
                "stage_memsim_s": round(stage_seconds["memsim_s"], 4),
                "memsim_python_cold_s": round(memsim_python, 4),
                "memsim_numpy_cold_s": round(memsim_numpy, 4),
                "memsim_two_singles_s": round(memsim_two_singles, 4),
                "analytic_sweep_s": round(analytic_s, 6),
            },
            "speedup_parallel_warm": round(speedup, 2),
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": bool(speedup >= TARGET_SPEEDUP),
            "meets_parallel_cold": bool(meets_parallel_cold),
            "parallel_cold_gate_mode": parallel_cold_gate_mode,
            "results_match": bool(results_match),
            "resilience_overhead": round(overhead, 4),
            "resilience_overhead_target": RESILIENCE_OVERHEAD_TARGET,
            "meets_resilience_target": bool(meets_resilience),
            "speedup_backend": round(backend_speedup, 2),
            "backend_target_speedup": BACKEND_TARGET_SPEEDUP,
            "meets_backend_target": bool(
                backend_speedup >= BACKEND_TARGET_SPEEDUP),
            "backend_results_match": bool(backend_results_match),
            "backend_proxy_max_delta": round(proxy_delta, 4),
            "backend_proxy_tolerance": BACKEND_PROXY_TOLERANCE,
            "meets_backend_proxy_tolerance": bool(meets_proxy_tolerance),
            "memsim_speedup": round(memsim_speedup, 2),
            "memsim_target_speedup": MEMSIM_TARGET_SPEEDUP,
            "meets_memsim_target": bool(
                memsim_speedup >= MEMSIM_TARGET_SPEEDUP),
            "memsim_results_match": bool(memsim_results_match),
            "meets_memsim_one_pass": bool(meets_memsim_one_pass),
            "memsim_reps": MEMSIM_REPS,
            "analytic_speedup": round(analytic_speedup, 2),
            "analytic_target_speedup": ANALYTIC_TARGET_SPEEDUP,
            "meets_analytic_target": bool(
                analytic_speedup >= ANALYTIC_TARGET_SPEEDUP),
            "analytic_max_miss_rate_delta": round(analytic_delta, 4),
            "analytic_miss_rate_tolerance": analytic_tolerance,
            "meets_analytic_tolerance": bool(
                analytic_delta <= analytic_tolerance),
            "analytic_all_in_model": bool(analytic_all_in_model),
            "analytic_fallbacks_demonstrated": bool(analytic_fallbacks_ok),
            "analytic_reps": ANALYTIC_REPS,
            "cache_entries": cache_entries,
            "smoke": bool(args.smoke),
        }
        validate_schema(payload)
        out = Path(args.out)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

        print(f"  sequential cold : {sequential_cold:8.2f}s  "
              f"(profile {stage_seconds['profile_s']:.2f}s, generate "
              f"{stage_seconds['generate_s']:.2f}s, memsim "
              f"{stage_seconds['memsim_s']:.2f}s; min of {reps} rep(s))")
        print(f"  engine seq cold : {engine_sequential:8.2f}s  "
              f"(SweepRunner jobs=1, gate baseline)")
        print(f"  parallel   cold : {parallel_cold:8.2f}s  (jobs={args.jobs}, "
              f"cache populated: {cache_entries} entries)")
        print(f"  parallel   warm : {parallel_warm:8.2f}s")
        print(f"  resilient  seq  : {resilient_sequential:8.2f}s  "
              f"(journal + watchdog + retries armed)")
        print(f"  speedup (warm)  : {speedup:8.2f}x  (target "
              f">= {TARGET_SPEEDUP}x)")
        print(f"  resilience cost : {overhead * 100:7.2f}%  (target "
              f"<= {RESILIENCE_OVERHEAD_TARGET * 100:.0f}% or "
              f"<= {RESILIENCE_OVERHEAD_FLOOR_S}s absolute)")
        print(f"  results match   : {results_match}")
        print(f"  pipeline python : {backend_python:8.2f}s  "
              f"(text traces, scalar kernels, scale={args.backend_scale})")
        print(f"  pipeline numpy  : {backend_numpy:8.2f}s  "
              f"(.npz traces, array kernels, scale={args.backend_scale})")
        print(f"  speedup backend : {backend_speedup:8.2f}x  (target "
              f">= {BACKEND_TARGET_SPEEDUP}x)")
        print(f"  profiles match  : {backend_results_match}  "
              f"(bit-identical across backends)")
        print(f"  proxy max delta : {proxy_delta:8.4f}  ({metric}, "
              f"tolerance <= {BACKEND_PROXY_TOLERANCE})")
        print(f"  memsim python   : {memsim_python:8.2f}s  (scalar loop x "
              f"{len(memsim_configs)} configs, min of {MEMSIM_REPS} reps)")
        print(f"  memsim numpy    : {memsim_numpy:8.2f}s  (one-pass "
              f"{len(memsim_configs)}-config flat replay)")
        print(f"  speedup memsim  : {memsim_speedup:8.2f}x  (target "
              f">= {MEMSIM_TARGET_SPEEDUP}x)")
        print(f"  memsim match    : {memsim_results_match}  "
              f"(bit-identical miss counts across engines)")
        print(f"  one-pass gate   : {memsim_numpy:.2f}s vs "
              f"{memsim_two_singles:.2f}s for 2 oracle singles "
              f"({'OK' if meets_memsim_one_pass else 'SLOWER'})")
        print(f"  analytic sweep  : {analytic_s * 1e3:8.2f}ms  "
              f"({len(memsim_configs)}-config O(histogram) predict, min of "
              f"{ANALYTIC_REPS} reps)")
        print(f"  speedup analytic: {analytic_speedup:8.2f}x  vs one-pass "
              f"numpy memsim (target >= {ANALYTIC_TARGET_SPEEDUP:.0f}x)")
        print(f"  analytic delta  : {analytic_delta:8.4f}  max |Δ miss rate| "
              f"L1+L2 vs numpy truth (tolerance <= {analytic_tolerance})")
        print(f"  analytic scope  : in-model={analytic_all_in_model}, "
              f"out-of-scope fallbacks demonstrated={analytic_fallbacks_ok}")
        print(f"wrote {out}")

        if not results_match:
            print("FAIL: parallel/cached/resilient results differ from "
                  "sequential")
            return 1
        if not backend_results_match:
            print("FAIL: numpy-backend profiles differ from the python "
                  "reference")
            return 1
        if not meets_proxy_tolerance and not args.no_gate:
            print(f"FAIL: backend proxy disagreement {proxy_delta:.4f} "
                  f"exceeds {BACKEND_PROXY_TOLERANCE} tolerance")
            return 1
        if not payload["meets_backend_target"] and not args.no_gate:
            print(f"FAIL: numpy backend speedup {backend_speedup:.2f}x "
                  f"below target {BACKEND_TARGET_SPEEDUP}x")
            return 1
        if not memsim_results_match:
            print("FAIL: array memsim miss counts differ from the scalar "
                  "oracle")
            return 1
        if not payload["meets_memsim_target"] and not args.no_gate:
            print(f"FAIL: memsim speedup {memsim_speedup:.2f}x below "
                  f"target {MEMSIM_TARGET_SPEEDUP}x")
            return 1
        if not meets_memsim_one_pass and not args.no_gate:
            print(f"FAIL: one-pass {len(memsim_configs)}-config run "
                  f"({memsim_numpy:.2f}s) slower than 2 independent oracle "
                  f"singles ({memsim_two_singles:.2f}s)")
            return 1
        if not analytic_all_in_model:
            print("FAIL: a reduced-fig6a config fell outside the analytic "
                  "model — the gate grid must predict, not replay")
            return 1
        if not analytic_fallbacks_ok:
            print("FAIL: an out-of-scope config (prefetcher / non-LRU) did "
                  "not produce analytic fallback reasons")
            return 1
        if not payload["meets_analytic_tolerance"] and not args.no_gate:
            print(f"FAIL: analytic max |Δ miss rate| {analytic_delta:.4f} "
                  f"exceeds {analytic_tolerance} tolerance")
            return 1
        if not payload["meets_analytic_target"] and not args.no_gate:
            print(f"FAIL: analytic speedup {analytic_speedup:.2f}x below "
                  f"target {ANALYTIC_TARGET_SPEEDUP:.0f}x")
            return 1
        if args.smoke:
            print("smoke OK: parallel path completed, schema valid, "
                  "backend + memsim + analytic gates passed")
            return 0
        if not payload["meets_target"] and not args.no_gate:
            print(f"FAIL: speedup {speedup:.2f}x below target "
                  f"{TARGET_SPEEDUP}x")
            return 1
        if not meets_parallel_cold and not args.no_gate:
            bound = ("1.00x" if cpu_count >= 2 else
                     f"{1.0 + SINGLE_CPU_PARALLEL_OVERHEAD:.2f}x "
                     f"(single-CPU machine)")
            print(f"FAIL: parallel cold is {parallel_cold_ratio:.2f}x the "
                  f"engine sequential cold of the same rep, bound {bound}")
            return 1
        if not meets_resilience and not args.no_gate:
            print(f"FAIL: resilience overhead {overhead * 100:.2f}% exceeds "
                  f"{RESILIENCE_OVERHEAD_TARGET * 100:.0f}% target")
            return 1
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(trace_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
